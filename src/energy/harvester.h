// Energy-harvester models ("Ambient Batteries", paper §1 and refs [20, 21]).
//
// A harvester exposes its instantaneous output power as a deterministic
// function of simulated time (environmental cycles plus long-term
// degradation), with an optional per-device multiplicative efficiency drawn
// at construction. Deterministic profiles let the energy manager integrate
// harvested energy analytically between events instead of ticking.
//
// Two representations share one set of power/integration routines:
//
//  * The virtual `Harvester` hierarchy — convenient for tools and benches
//    that deal in heterogeneous collections of a handful of models.
//  * `HarvesterModel` — a fixed-size tagged union of the same parameter
//    structs, sized for struct-of-arrays fleet columns: no heap allocation,
//    no vtable, trivially copyable. A million-device fleet stores these
//    inline (see src/core/fleet.h).
//
// Both call the same free functions for the per-kind math, so a virtual
// SolarHarvester and a HarvesterModel::Solar with equal params produce
// bit-identical doubles.

#ifndef SRC_ENERGY_HARVESTER_H_
#define SRC_ENERGY_HARVESTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>

#include "src/sim/random.h"
#include "src/sim/time.h"

namespace centsim {

class Harvester {
 public:
  virtual ~Harvester() = default;

  // Instantaneous output power in watts at simulated time `t`.
  virtual double PowerAt(SimTime t) const = 0;

  // Energy in joules harvested over [from, to]. The default implementation
  // integrates PowerAt with an adaptive trapezoid; subclasses with closed
  // forms override it.
  virtual double EnergyOver(SimTime from, SimTime to) const;

  virtual std::string name() const = 0;

  // Long-run average power (W) over the given window; used for sizing.
  double MeanPower(SimTime from, SimTime to) const;
};

// Indoor/outdoor photovoltaic: diurnal half-sine, seasonal modulation,
// weather attenuation (slow random walk via hashed day index so the profile
// stays a pure function of time), and panel degradation per year.
class SolarHarvester : public Harvester {
 public:
  struct Params {
    double peak_power_w = 0.010;       // 10 mW peak for a cm-scale cell.
    double seasonal_swing = 0.35;      // +-35% seasonal amplitude.
    double weather_min = 0.25;         // Worst-day cloud attenuation factor.
    double degradation_per_year = 0.005;  // 0.5%/yr output fade.
    double latitude_phase = 0.0;       // Season phase offset (radians).
    uint64_t weather_seed = 1;         // Per-site weather sequence.
  };

  explicit SolarHarvester(const Params& params) : params_(params) {}

  double PowerAt(SimTime t) const override;
  double EnergyOver(SimTime from, SimTime to) const override;  // Closed form.
  std::string name() const override { return "solar"; }

  const Params& params() const { return params_; }

 private:
  Params params_;
};

// Rebar-corrosion cathodic "ambient battery" (paper §1; ref [21]): a
// near-constant few-hundred-µW source whose output decays on the timescale
// of the host structure's service life. Powers a bridge sensor for
// literally as long as the structure lasts.
class CorrosionHarvester : public Harvester {
 public:
  struct Params {
    double initial_power_w = 300e-6;   // 300 uW from a galvanic couple.
    SimTime structure_life = SimTime::Years(50);  // Host bridge service life.
    // Output at end of structure life as a fraction of initial (the anode
    // depletes roughly linearly in delivered charge).
    double end_of_life_fraction = 0.4;
  };

  explicit CorrosionHarvester(const Params& params) : params_(params) {}

  double PowerAt(SimTime t) const override;
  double EnergyOver(SimTime from, SimTime to) const override;  // Closed form.
  std::string name() const override { return "rebar-corrosion"; }

  const Params& params() const { return params_; }

 private:
  Params params_;
};

// Diurnal thermal-gradient harvester (TEG across a surface/ambient delta).
class ThermalHarvester : public Harvester {
 public:
  struct Params {
    double peak_power_w = 1e-3;
    double baseline_fraction = 0.1;  // Fraction of peak available at night.
  };

  explicit ThermalHarvester(const Params& params) : params_(params) {}

  double PowerAt(SimTime t) const override;
  double EnergyOver(SimTime from, SimTime to) const override;  // Closed form.
  std::string name() const override { return "thermal"; }

  const Params& params() const { return params_; }

 private:
  Params params_;
};

// Traffic-induced vibration harvester: weekday/weekend and rush-hour
// structure, suitable for roadway-embedded nodes.
class VibrationHarvester : public Harvester {
 public:
  struct Params {
    double peak_power_w = 2e-3;
    double night_fraction = 0.05;
    double weekend_factor = 0.6;
  };

  explicit VibrationHarvester(const Params& params) : params_(params) {}

  double PowerAt(SimTime t) const override;
  double EnergyOver(SimTime from, SimTime to) const override;  // Closed form.
  std::string name() const override { return "vibration"; }

  const Params& params() const { return params_; }

 private:
  Params params_;
};

// Constant-output source (lab supply, test rigs, "energy is not the
// bottleneck" scenarios). EnergyOver is exact: power * span.
struct ConstantHarvestParams {
  double power_w = 0.0;
};

// Closed-form energy integrals for the periodic harvester kinds, exposed as
// free functions so the virtual overrides, HarvesterModel::EnergyOverAnalytic,
// and the parity tests all share one implementation. Each walks the days
// overlapping [from, to] and integrates that day's smooth pieces exactly:
//
//  * solar — per-day daylight window of
//      e^{-lambda*s} * sin(a*s + alpha) * (1 + A*sin(b*s + beta)),
//    via product-to-sum and the standard exponential-times-sinusoid
//    antiderivatives (weather is constant within a day by construction);
//  * thermal — baseline plus the positive half-sine lobe, -cos/a;
//  * vibration — plateau plus two Gaussian rush-hour humps, via erf. The
//    min(traffic, 1) clamp in the power model only binds where the opposite
//    hump's tail (~e^{-43}) pushes the peak over 1, a relative error of
//    ~1e-19 that the closed form ignores.
double SolarEnergyOverAnalytic(const SolarHarvester::Params& params, SimTime from, SimTime to);
double ThermalEnergyOverAnalytic(const ThermalHarvester::Params& params, SimTime from,
                                 SimTime to);
double VibrationEnergyOverAnalytic(const VibrationHarvester::Params& params, SimTime from,
                                   SimTime to);

// Inline tagged-union harvester: one of the parameter structs above plus a
// kind tag, dispatched by switch instead of vtable. Trivially copyable and
// 64 bytes, so fleets store one per device in a flat column.
class HarvesterModel {
 public:
  enum class Kind : uint8_t {
    kConstant,
    kSolar,
    kCorrosion,
    kThermal,
    kVibration,
  };

  // Defaults to a dead constant source (0 W).
  HarvesterModel() : kind_(Kind::kConstant) { params_.constant = ConstantHarvestParams{}; }

  static HarvesterModel Constant(double power_w);
  static HarvesterModel Solar(const SolarHarvester::Params& params);
  static HarvesterModel Corrosion(const CorrosionHarvester::Params& params);
  static HarvesterModel Thermal(const ThermalHarvester::Params& params);
  static HarvesterModel Vibration(const VibrationHarvester::Params& params);

  double PowerAt(SimTime t) const;
  double EnergyOver(SimTime from, SimTime to) const;
  // Closed-form integral for every kind (solar/thermal/vibration get the
  // per-day analytic pieces the virtual overrides use; constant and
  // corrosion were already exact). This is the fast-forward path's
  // integrator (EnergyOps::FastForwardTo): one call covers a multi-year
  // span at fixed cost per day instead of the trapezoid's step loop.
  // EnergyOver keeps the adaptive trapezoid for the periodic kinds so the
  // serial engine's event-by-event doubles — and every golden digest
  // derived from them — stay byte-for-byte unchanged.
  double EnergyOverAnalytic(SimTime from, SimTime to) const;
  double MeanPower(SimTime from, SimTime to) const;

  Kind kind() const { return kind_; }
  const char* name() const;

 private:
  union ParamsUnion {
    ConstantHarvestParams constant;
    SolarHarvester::Params solar;
    CorrosionHarvester::Params corrosion;
    ThermalHarvester::Params thermal;
    VibrationHarvester::Params vibration;
    ParamsUnion() : constant{} {}  // Members carry default initializers.
  };

  Kind kind_;
  ParamsUnion params_;
};

static_assert(std::is_trivially_copyable_v<HarvesterModel>,
              "fleet columns memcpy HarvesterModel on growth");

}  // namespace centsim

#endif  // SRC_ENERGY_HARVESTER_H_
