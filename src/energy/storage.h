// Energy-storage models: supercapacitor and (for the baseline node)
// lithium primary cells. State advances analytically between touches —
// leakage and aging are applied for the elapsed interval in closed form, so
// storage costs O(1) per event rather than per tick.
//
// The mutable state is split out as a trivially-copyable `State` struct
// with static transition functions, so fleet columns (src/core/fleet.h) can
// store one State per device against a shared per-class Params record. The
// member API below is a thin wrapper over the same statics — both paths
// compute bit-identical doubles.

#ifndef SRC_ENERGY_STORAGE_H_
#define SRC_ENERGY_STORAGE_H_

#include <string>
#include <type_traits>

#include "src/sim/time.h"

namespace centsim {

class EnergyStorage {
 public:
  struct Params {
    double capacity_j = 10.0;            // Usable capacity when new (J).
    double initial_fraction = 0.5;       // State of charge at deploy.
    double charge_efficiency = 0.85;     // Fraction of input energy stored.
    double self_discharge_per_day = 0.02;  // Fractional leakage per day.
    double capacity_fade_per_year = 0.01;  // Usable capacity shrink per year.
    std::string name = "storage";
  };

  // Per-instance mutable state; 24 bytes, fleet-column friendly.
  struct State {
    double capacity_now_j = 0.0;
    double charge_j = 0.0;
    SimTime last_update;
  };
  static_assert(std::is_trivially_copyable_v<SimTime>);

  static State InitialState(const Params& params) {
    State s;
    s.capacity_now_j = params.capacity_j;
    s.charge_j = params.capacity_j * params.initial_fraction;
    return s;
  }

  // Advances leakage/aging to `now`. Must be called with non-decreasing
  // times; the other transitions require the state to be current.
  static void AdvanceState(const Params& params, State& state, SimTime now);

  // Adds harvested energy (before charge efficiency). Returns the amount
  // actually banked after efficiency and capacity clipping.
  static double StoreInto(const Params& params, State& state, double joules);

  // Attempts to draw `joules`; returns false (and leaves the charge
  // untouched) if insufficient.
  static bool DrawFrom(State& state, double joules);

  static double Soc(const State& state) {
    return state.capacity_now_j > 0 ? state.charge_j / state.capacity_now_j : 0.0;
  }

  explicit EnergyStorage(const Params& params)
      : params_(params), state_(InitialState(params)) {}

  void AdvanceTo(SimTime now) { AdvanceState(params_, state_, now); }
  double Store(double joules) { return StoreInto(params_, state_, joules); }
  bool Draw(double joules) { return DrawFrom(state_, joules); }

  double charge_j() const { return state_.charge_j; }
  double capacity_now_j() const { return state_.capacity_now_j; }
  double soc() const { return Soc(state_); }
  SimTime last_update() const { return state_.last_update; }
  const Params& params() const { return params_; }
  const State& state() const { return state_; }
  State& mutable_state() { return state_; }

  // Presets.
  // 15 F supercap at 3 V stores ~67 J usable; low leakage, slow fade.
  static EnergyStorage Supercap(double capacity_j = 67.0);
  // 2x AA lithium primary: ~32 kJ, negligible leakage, but the *cell*
  // lifetime bound lives in the reliability model, not here.
  static EnergyStorage LithiumPrimary(double capacity_j = 32000.0);
  // Small ceramic/tantalum bank for purely intermittent nodes (~0.1 J).
  static EnergyStorage CapBank(double capacity_j = 0.1);

 private:
  Params params_;
  State state_;
};

}  // namespace centsim

#endif  // SRC_ENERGY_STORAGE_H_
