// Energy-storage models: supercapacitor and (for the baseline node)
// lithium primary cells. State advances analytically between touches —
// leakage and aging are applied for the elapsed interval in closed form, so
// storage costs O(1) per event rather than per tick.

#ifndef SRC_ENERGY_STORAGE_H_
#define SRC_ENERGY_STORAGE_H_

#include <string>

#include "src/sim/time.h"

namespace centsim {

class EnergyStorage {
 public:
  struct Params {
    double capacity_j = 10.0;            // Usable capacity when new (J).
    double initial_fraction = 0.5;       // State of charge at deploy.
    double charge_efficiency = 0.85;     // Fraction of input energy stored.
    double self_discharge_per_day = 0.02;  // Fractional leakage per day.
    double capacity_fade_per_year = 0.01;  // Usable capacity shrink per year.
    std::string name = "storage";
  };

  explicit EnergyStorage(const Params& params);

  // Advances leakage/aging to `now`. Must be called with non-decreasing
  // times; all other methods require the state to be current.
  void AdvanceTo(SimTime now);

  // Adds harvested energy (before charge efficiency). Returns the amount
  // actually banked after efficiency and capacity clipping.
  double Store(double joules);

  // Attempts to draw `joules`; returns false (and leaves the charge
  // untouched) if insufficient.
  bool Draw(double joules);

  double charge_j() const { return charge_j_; }
  double capacity_now_j() const { return capacity_now_j_; }
  double soc() const { return capacity_now_j_ > 0 ? charge_j_ / capacity_now_j_ : 0.0; }
  SimTime last_update() const { return last_update_; }
  const Params& params() const { return params_; }

  // Presets.
  // 15 F supercap at 3 V stores ~67 J usable; low leakage, slow fade.
  static EnergyStorage Supercap(double capacity_j = 67.0);
  // 2x AA lithium primary: ~32 kJ, negligible leakage, but the *cell*
  // lifetime bound lives in the reliability model, not here.
  static EnergyStorage LithiumPrimary(double capacity_j = 32000.0);
  // Small ceramic/tantalum bank for purely intermittent nodes (~0.1 J).
  static EnergyStorage CapBank(double capacity_j = 0.1);

 private:
  Params params_;
  double capacity_now_j_;
  double charge_j_;
  SimTime last_update_;
};

}  // namespace centsim

#endif  // SRC_ENERGY_STORAGE_H_
