#include "src/energy/harvester.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace centsim {
namespace {

constexpr double kDaySeconds = 24.0 * 3600.0;
constexpr double kYearSeconds = 365.25 * kDaySeconds;

// Stateless hash -> [0,1) for reproducible "random" weather per day index.
double HashUnit(uint64_t x) {
  uint64_t s = x;
  return static_cast<double>(SplitMix64(s) >> 11) * 0x1.0p-53;
}

// --- Per-kind power/energy math, shared between the virtual hierarchy and
// --- HarvesterModel so both produce bit-identical doubles.

double SolarWeatherFactor(const SolarHarvester::Params& params, int64_t day_index) {
  // Three-day smoothing of hashed daily draws gives plausible persistence.
  const double a = HashUnit(params.weather_seed * 0x9e3779b97f4a7c15ULL +
                            static_cast<uint64_t>(day_index));
  const double b = HashUnit(params.weather_seed * 0xbf58476d1ce4e5b9ULL +
                            static_cast<uint64_t>(day_index + 1));
  const double u = 0.6 * a + 0.4 * b;
  return params.weather_min + (1.0 - params.weather_min) * u;
}

double SolarPowerAt(const SolarHarvester::Params& params, SimTime t) {
  const double s = t.ToSeconds();
  const double day_frac = std::fmod(s, kDaySeconds) / kDaySeconds;
  // Half-sine daylight between 06:00 and 18:00.
  const double sun = std::sin((day_frac - 0.25) * 2.0 * M_PI);
  if (sun <= 0) {
    return 0.0;
  }
  const double year_frac = std::fmod(s, kYearSeconds) / kYearSeconds;
  const double season =
      1.0 + params.seasonal_swing * std::sin(2.0 * M_PI * year_frac + params.latitude_phase -
                                             M_PI / 2.0);
  const int64_t day_index = static_cast<int64_t>(s / kDaySeconds);
  const double weather = SolarWeatherFactor(params, day_index);
  const double years = s / kYearSeconds;
  const double degradation = std::pow(1.0 - params.degradation_per_year, years);
  return params.peak_power_w * sun * season * weather * degradation;
}

double CorrosionPowerAt(const CorrosionHarvester::Params& params, SimTime t) {
  const double frac = t.ToSeconds() / params.structure_life.ToSeconds();
  if (frac >= 1.0) {
    // Structure past design life: keep the end-of-life trickle (real
    // structures outlive their design life; the anode keeps corroding).
    return params.initial_power_w * params.end_of_life_fraction;
  }
  const double factor = 1.0 - (1.0 - params.end_of_life_fraction) * frac;
  return params.initial_power_w * factor;
}

double CorrosionEnergyOver(const CorrosionHarvester::Params& params, SimTime from, SimTime to) {
  assert(to >= from);
  // Piecewise: linear ramp to structure_life, constant after.
  auto integral_to = [&](SimTime t) {
    const double life = params.structure_life.ToSeconds();
    const double p0 = params.initial_power_w;
    const double pe = p0 * params.end_of_life_fraction;
    const double x = t.ToSeconds();
    if (x <= life) {
      const double p_at = p0 - (p0 - pe) * (x / life);
      return 0.5 * (p0 + p_at) * x;
    }
    const double ramp_area = 0.5 * (p0 + pe) * life;
    return ramp_area + pe * (x - life);
  };
  return integral_to(to) - integral_to(from);
}

double ThermalPowerAt(const ThermalHarvester::Params& params, SimTime t) {
  const double s = t.ToSeconds();
  const double day_frac = std::fmod(s, kDaySeconds) / kDaySeconds;
  // Gradient peaks mid-afternoon (~15:00), minimal pre-dawn.
  const double phase = std::sin((day_frac - 0.375) * 2.0 * M_PI);
  const double f = params.baseline_fraction +
                   (1.0 - params.baseline_fraction) * std::max(0.0, phase);
  return params.peak_power_w * f;
}

double VibrationPowerAt(const VibrationHarvester::Params& params, SimTime t) {
  const double s = t.ToSeconds();
  const double day_frac = std::fmod(s, kDaySeconds) / kDaySeconds;
  const int64_t day_index = static_cast<int64_t>(s / kDaySeconds);
  const int dow = static_cast<int>(day_index % 7);  // Sim starts on day 0 = Monday.
  const bool weekend = dow >= 5;

  // Two rush-hour humps (08:00 and 17:30) over a daytime plateau.
  auto hump = [](double x, double center, double width) {
    const double d = (x - center) / width;
    return std::exp(-d * d);
  };
  double traffic = params.night_fraction;
  if (day_frac > 0.25 && day_frac < 0.95) {
    traffic = 0.35 + 0.65 * (hump(day_frac, 8.0 / 24, 0.05) + hump(day_frac, 17.5 / 24, 0.06));
    traffic = std::min(traffic, 1.0);
  }
  if (weekend) {
    traffic *= params.weekend_factor;
  }
  return params.peak_power_w * traffic;
}

// Adaptive trapezoid over an arbitrary power function. Resolves sub-hour
// structure: at least 16 steps, at most one per 10 min.
template <typename PowerFn>
double TrapezoidOver(const PowerFn& power_at, SimTime from, SimTime to) {
  assert(to >= from);
  const double span = (to - from).ToSeconds();
  if (span <= 0) {
    return 0.0;
  }
  const int steps = std::clamp(static_cast<int>(span / 600.0), 16, 100000);
  const double dt = span / steps;
  double acc = 0.0;
  double prev = power_at(from);
  for (int i = 1; i <= steps; ++i) {
    const double p = power_at(from + SimTime::Seconds(dt * i));
    acc += 0.5 * (prev + p) * dt;
    prev = p;
  }
  return acc;
}

}  // namespace

double SolarEnergyOverAnalytic(const SolarHarvester::Params& params, SimTime from, SimTime to) {
  assert(to >= from);
  const double t0 = from.ToSeconds();
  const double t1 = to.ToSeconds();
  if (t1 <= t0) {
    return 0.0;
  }
  const double retained = 1.0 - params.degradation_per_year;
  if (retained <= 0.0) {
    return 0.0;  // pow(<=0, years) is 0 (or NaN) everywhere past t = 0.
  }
  // pow(retained, s / Y) == e^{-lambda * s}.
  const double lambda = -std::log(retained) / kYearSeconds;
  const double a = 2.0 * M_PI / kDaySeconds;   // Diurnal angular frequency.
  const double b = 2.0 * M_PI / kYearSeconds;  // Seasonal angular frequency.
  const double alpha = -M_PI / 2.0;            // sin peaks at noon.
  const double beta = params.latitude_phase - M_PI / 2.0;
  const double swing = params.seasonal_swing;
  const double k2 = lambda * lambda;
  // Antiderivatives of e^{-lambda*s} * {sin,cos}(c*s + g).
  auto f_sin = [lambda, k2](double c, double g, double s) {
    return std::exp(-lambda * s) *
           (-lambda * std::sin(c * s + g) - c * std::cos(c * s + g)) / (k2 + c * c);
  };
  auto f_cos = [lambda, k2](double c, double g, double s) {
    return std::exp(-lambda * s) *
           (-lambda * std::cos(c * s + g) + c * std::sin(c * s + g)) / (k2 + c * c);
  };
  double total = 0.0;
  const int64_t last_day = static_cast<int64_t>(t1 / kDaySeconds);
  for (int64_t day = static_cast<int64_t>(t0 / kDaySeconds); day <= last_day; ++day) {
    const double day_start = static_cast<double>(day) * kDaySeconds;
    // Daylight gate: sin((day_frac - 0.25) * 2pi) > 0 on (06:00, 18:00).
    const double lo = std::max(t0, day_start + 0.25 * kDaySeconds);
    const double hi = std::min(t1, day_start + 0.75 * kDaySeconds);
    if (hi <= lo) {
      continue;
    }
    const double weather = SolarWeatherFactor(params, day);
    // sin(as+alpha) * (1 + A*sin(bs+beta)) expands via product-to-sum into
    // sin(as+alpha) + (A/2)*[cos((a-b)s+(alpha-beta)) - cos((a+b)s+(alpha+beta))].
    const double base = f_sin(a, alpha, hi) - f_sin(a, alpha, lo);
    const double cross =
        0.5 * swing *
        ((f_cos(a - b, alpha - beta, hi) - f_cos(a - b, alpha - beta, lo)) -
         (f_cos(a + b, alpha + beta, hi) - f_cos(a + b, alpha + beta, lo)));
    total += params.peak_power_w * weather * (base + cross);
  }
  return total;
}

double ThermalEnergyOverAnalytic(const ThermalHarvester::Params& params, SimTime from,
                                 SimTime to) {
  assert(to >= from);
  const double t0 = from.ToSeconds();
  const double t1 = to.ToSeconds();
  if (t1 <= t0) {
    return 0.0;
  }
  const double a = 2.0 * M_PI / kDaySeconds;
  const double gamma = -0.75 * M_PI;  // sin((day_frac - 0.375) * 2pi).
  auto f = [a, gamma](double s) { return -std::cos(a * s + gamma) / a; };
  double total = params.peak_power_w * params.baseline_fraction * (t1 - t0);
  const double swing = params.peak_power_w * (1.0 - params.baseline_fraction);
  const int64_t last_day = static_cast<int64_t>(t1 / kDaySeconds);
  for (int64_t day = static_cast<int64_t>(t0 / kDaySeconds); day <= last_day; ++day) {
    const double day_start = static_cast<double>(day) * kDaySeconds;
    // Positive lobe of the shifted sine: (09:00, 21:00).
    const double lo = std::max(t0, day_start + 0.375 * kDaySeconds);
    const double hi = std::min(t1, day_start + 0.875 * kDaySeconds);
    if (hi > lo) {
      total += swing * (f(hi) - f(lo));
    }
  }
  return total;
}

double VibrationEnergyOverAnalytic(const VibrationHarvester::Params& params, SimTime from,
                                   SimTime to) {
  assert(to >= from);
  const double t0 = from.ToSeconds();
  const double t1 = to.ToSeconds();
  if (t1 <= t0) {
    return 0.0;
  }
  constexpr double kSqrtPi = 1.7724538509055160273;
  // Integral of exp(-((x-c)/w)^2) over [x0, x1].
  auto hump = [kSqrtPi](double x0, double x1, double c, double w) {
    return w * (kSqrtPi / 2.0) * (std::erf((x1 - c) / w) - std::erf((x0 - c) / w));
  };
  double total = 0.0;
  const int64_t last_day = static_cast<int64_t>(t1 / kDaySeconds);
  for (int64_t day = static_cast<int64_t>(t0 / kDaySeconds); day <= last_day; ++day) {
    const double day_start = static_cast<double>(day) * kDaySeconds;
    const double seg_lo = std::max(t0, day_start);
    const double seg_hi = std::min(t1, day_start + kDaySeconds);
    if (seg_hi <= seg_lo) {
      continue;
    }
    // Work in day fractions; traffic(x) is piecewise over x = s/D - day.
    const double x0 = (seg_lo - day_start) / kDaySeconds;
    const double x1 = (seg_hi - day_start) / kDaySeconds;
    const double d0 = std::max(x0, 0.25);
    const double d1 = std::min(x1, 0.95);
    const double day_len = std::max(0.0, d1 - d0);
    double traffic_integral = params.night_fraction * ((x1 - x0) - day_len);
    if (day_len > 0.0) {
      traffic_integral += 0.35 * day_len +
                          0.65 * (hump(d0, d1, 8.0 / 24, 0.05) + hump(d0, d1, 17.5 / 24, 0.06));
    }
    const double factor = (day % 7 >= 5) ? params.weekend_factor : 1.0;
    total += params.peak_power_w * factor * traffic_integral * kDaySeconds;
  }
  return total;
}

double Harvester::EnergyOver(SimTime from, SimTime to) const {
  return TrapezoidOver([this](SimTime t) { return PowerAt(t); }, from, to);
}

double Harvester::MeanPower(SimTime from, SimTime to) const {
  const double span = (to - from).ToSeconds();
  if (span <= 0) {
    return 0.0;
  }
  return EnergyOver(from, to) / span;
}

double SolarHarvester::PowerAt(SimTime t) const { return SolarPowerAt(params_, t); }

double SolarHarvester::EnergyOver(SimTime from, SimTime to) const {
  return SolarEnergyOverAnalytic(params_, from, to);
}

double CorrosionHarvester::PowerAt(SimTime t) const { return CorrosionPowerAt(params_, t); }

double CorrosionHarvester::EnergyOver(SimTime from, SimTime to) const {
  return CorrosionEnergyOver(params_, from, to);
}

double ThermalHarvester::PowerAt(SimTime t) const { return ThermalPowerAt(params_, t); }

double ThermalHarvester::EnergyOver(SimTime from, SimTime to) const {
  return ThermalEnergyOverAnalytic(params_, from, to);
}

double VibrationHarvester::PowerAt(SimTime t) const { return VibrationPowerAt(params_, t); }

double VibrationHarvester::EnergyOver(SimTime from, SimTime to) const {
  return VibrationEnergyOverAnalytic(params_, from, to);
}

// --- HarvesterModel ------------------------------------------------------

HarvesterModel HarvesterModel::Constant(double power_w) {
  HarvesterModel m;
  m.kind_ = Kind::kConstant;
  m.params_.constant.power_w = power_w;
  return m;
}

HarvesterModel HarvesterModel::Solar(const SolarHarvester::Params& params) {
  HarvesterModel m;
  m.kind_ = Kind::kSolar;
  m.params_.solar = params;
  return m;
}

HarvesterModel HarvesterModel::Corrosion(const CorrosionHarvester::Params& params) {
  HarvesterModel m;
  m.kind_ = Kind::kCorrosion;
  m.params_.corrosion = params;
  return m;
}

HarvesterModel HarvesterModel::Thermal(const ThermalHarvester::Params& params) {
  HarvesterModel m;
  m.kind_ = Kind::kThermal;
  m.params_.thermal = params;
  return m;
}

HarvesterModel HarvesterModel::Vibration(const VibrationHarvester::Params& params) {
  HarvesterModel m;
  m.kind_ = Kind::kVibration;
  m.params_.vibration = params;
  return m;
}

double HarvesterModel::PowerAt(SimTime t) const {
  switch (kind_) {
    case Kind::kConstant:
      return params_.constant.power_w;
    case Kind::kSolar:
      return SolarPowerAt(params_.solar, t);
    case Kind::kCorrosion:
      return CorrosionPowerAt(params_.corrosion, t);
    case Kind::kThermal:
      return ThermalPowerAt(params_.thermal, t);
    case Kind::kVibration:
      return VibrationPowerAt(params_.vibration, t);
  }
  return 0.0;
}

double HarvesterModel::EnergyOver(SimTime from, SimTime to) const {
  switch (kind_) {
    case Kind::kConstant:
      // Exact: constant power integrates to power * span.
      return params_.constant.power_w * (to - from).ToSeconds();
    case Kind::kSolar:
      return TrapezoidOver([this](SimTime t) { return SolarPowerAt(params_.solar, t); }, from,
                           to);
    case Kind::kCorrosion:
      return CorrosionEnergyOver(params_.corrosion, from, to);
    case Kind::kThermal:
      return TrapezoidOver([this](SimTime t) { return ThermalPowerAt(params_.thermal, t); },
                           from, to);
    case Kind::kVibration:
      return TrapezoidOver([this](SimTime t) { return VibrationPowerAt(params_.vibration, t); },
                           from, to);
  }
  return 0.0;
}

double HarvesterModel::EnergyOverAnalytic(SimTime from, SimTime to) const {
  switch (kind_) {
    case Kind::kConstant:
      return params_.constant.power_w * (to - from).ToSeconds();
    case Kind::kSolar:
      return SolarEnergyOverAnalytic(params_.solar, from, to);
    case Kind::kCorrosion:
      return CorrosionEnergyOver(params_.corrosion, from, to);
    case Kind::kThermal:
      return ThermalEnergyOverAnalytic(params_.thermal, from, to);
    case Kind::kVibration:
      return VibrationEnergyOverAnalytic(params_.vibration, from, to);
  }
  return 0.0;
}

double HarvesterModel::MeanPower(SimTime from, SimTime to) const {
  const double span = (to - from).ToSeconds();
  if (span <= 0) {
    return 0.0;
  }
  return EnergyOver(from, to) / span;
}

const char* HarvesterModel::name() const {
  switch (kind_) {
    case Kind::kConstant:
      return "constant";
    case Kind::kSolar:
      return "solar";
    case Kind::kCorrosion:
      return "rebar-corrosion";
    case Kind::kThermal:
      return "thermal";
    case Kind::kVibration:
      return "vibration";
  }
  return "harvester";
}

}  // namespace centsim
