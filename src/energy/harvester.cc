#include "src/energy/harvester.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace centsim {
namespace {

constexpr double kDaySeconds = 24.0 * 3600.0;
constexpr double kYearSeconds = 365.25 * kDaySeconds;

// Stateless hash -> [0,1) for reproducible "random" weather per day index.
double HashUnit(uint64_t x) {
  uint64_t s = x;
  return static_cast<double>(SplitMix64(s) >> 11) * 0x1.0p-53;
}

}  // namespace

double Harvester::EnergyOver(SimTime from, SimTime to) const {
  assert(to >= from);
  const double span = (to - from).ToSeconds();
  if (span <= 0) {
    return 0.0;
  }
  // Resolve sub-hour structure: at least 16 steps, at most one per 10 min.
  const int steps = std::clamp(static_cast<int>(span / 600.0), 16, 100000);
  const double dt = span / steps;
  double acc = 0.0;
  double prev = PowerAt(from);
  for (int i = 1; i <= steps; ++i) {
    const double p = PowerAt(from + SimTime::Seconds(dt * i));
    acc += 0.5 * (prev + p) * dt;
    prev = p;
  }
  return acc;
}

double Harvester::MeanPower(SimTime from, SimTime to) const {
  const double span = (to - from).ToSeconds();
  if (span <= 0) {
    return 0.0;
  }
  return EnergyOver(from, to) / span;
}

double SolarHarvester::WeatherFactor(int64_t day_index) const {
  // Three-day smoothing of hashed daily draws gives plausible persistence.
  const double a = HashUnit(params_.weather_seed * 0x9e3779b97f4a7c15ULL +
                            static_cast<uint64_t>(day_index));
  const double b = HashUnit(params_.weather_seed * 0xbf58476d1ce4e5b9ULL +
                            static_cast<uint64_t>(day_index + 1));
  const double u = 0.6 * a + 0.4 * b;
  return params_.weather_min + (1.0 - params_.weather_min) * u;
}

double SolarHarvester::PowerAt(SimTime t) const {
  const double s = t.ToSeconds();
  const double day_frac = std::fmod(s, kDaySeconds) / kDaySeconds;
  // Half-sine daylight between 06:00 and 18:00.
  const double sun = std::sin((day_frac - 0.25) * 2.0 * M_PI);
  if (sun <= 0) {
    return 0.0;
  }
  const double year_frac = std::fmod(s, kYearSeconds) / kYearSeconds;
  const double season =
      1.0 + params_.seasonal_swing * std::sin(2.0 * M_PI * year_frac + params_.latitude_phase -
                                              M_PI / 2.0);
  const int64_t day_index = static_cast<int64_t>(s / kDaySeconds);
  const double weather = WeatherFactor(day_index);
  const double years = s / kYearSeconds;
  const double degradation = std::pow(1.0 - params_.degradation_per_year, years);
  return params_.peak_power_w * sun * season * weather * degradation;
}

double CorrosionHarvester::PowerAt(SimTime t) const {
  const double frac = t.ToSeconds() / params_.structure_life.ToSeconds();
  if (frac >= 1.0) {
    // Structure past design life: keep the end-of-life trickle (real
    // structures outlive their design life; the anode keeps corroding).
    return params_.initial_power_w * params_.end_of_life_fraction;
  }
  const double factor = 1.0 - (1.0 - params_.end_of_life_fraction) * frac;
  return params_.initial_power_w * factor;
}

double CorrosionHarvester::EnergyOver(SimTime from, SimTime to) const {
  assert(to >= from);
  // Piecewise: linear ramp to structure_life, constant after.
  auto integral_to = [&](SimTime t) {
    const double life = params_.structure_life.ToSeconds();
    const double p0 = params_.initial_power_w;
    const double pe = p0 * params_.end_of_life_fraction;
    const double x = t.ToSeconds();
    if (x <= life) {
      const double p_at = p0 - (p0 - pe) * (x / life);
      return 0.5 * (p0 + p_at) * x;
    }
    const double ramp_area = 0.5 * (p0 + pe) * life;
    return ramp_area + pe * (x - life);
  };
  return integral_to(to) - integral_to(from);
}

double ThermalHarvester::PowerAt(SimTime t) const {
  const double s = t.ToSeconds();
  const double day_frac = std::fmod(s, kDaySeconds) / kDaySeconds;
  // Gradient peaks mid-afternoon (~15:00), minimal pre-dawn.
  const double phase = std::sin((day_frac - 0.375) * 2.0 * M_PI);
  const double f = params_.baseline_fraction +
                   (1.0 - params_.baseline_fraction) * std::max(0.0, phase);
  return params_.peak_power_w * f;
}

double VibrationHarvester::PowerAt(SimTime t) const {
  const double s = t.ToSeconds();
  const double day_frac = std::fmod(s, kDaySeconds) / kDaySeconds;
  const int64_t day_index = static_cast<int64_t>(s / kDaySeconds);
  const int dow = static_cast<int>(day_index % 7);  // Sim starts on day 0 = Monday.
  const bool weekend = dow >= 5;

  // Two rush-hour humps (08:00 and 17:30) over a daytime plateau.
  auto hump = [](double x, double center, double width) {
    const double d = (x - center) / width;
    return std::exp(-d * d);
  };
  double traffic = params_.night_fraction;
  if (day_frac > 0.25 && day_frac < 0.95) {
    traffic = 0.35 + 0.65 * (hump(day_frac, 8.0 / 24, 0.05) + hump(day_frac, 17.5 / 24, 0.06));
    traffic = std::min(traffic, 1.0);
  }
  if (weekend) {
    traffic *= params_.weekend_factor;
  }
  return params_.peak_power_w * traffic;
}

}  // namespace centsim
