#include "src/energy/harvester_stats.h"

#include <algorithm>

namespace centsim {

HarvestReliability AssessHarvester(const Harvester& harvester, SimTime from, SimTime to,
                                   SimTime step, double threshold_w) {
  HarvestReliability out;
  if (to <= from || step.micros() <= 0) {
    return out;
  }
  double sum = 0.0;
  uint64_t samples = 0;
  uint64_t above = 0;
  SimTime drought_start;
  bool in_drought = false;
  SimTime worst_drought;
  for (SimTime t = from; t < to; t += step) {
    const double p = harvester.PowerAt(t);
    sum += p;
    ++samples;
    out.peak_power_w = std::max(out.peak_power_w, p);
    if (p >= threshold_w) {
      ++above;
      if (in_drought) {
        worst_drought = std::max(worst_drought, t - drought_start);
        in_drought = false;
      }
    } else if (!in_drought) {
      in_drought = true;
      drought_start = t;
    }
  }
  if (in_drought) {
    worst_drought = std::max(worst_drought, to - drought_start);
  }
  out.mean_power_w = samples ? sum / static_cast<double>(samples) : 0.0;
  out.capacity_factor = out.peak_power_w > 0 ? out.mean_power_w / out.peak_power_w : 0.0;
  out.fraction_above_threshold =
      samples ? static_cast<double>(above) / static_cast<double>(samples) : 0.0;
  out.longest_drought = worst_drought;
  out.bridging_storage_j = threshold_w * worst_drought.ToSeconds();
  return out;
}

}  // namespace centsim
