// Intermittent-computing progress model.
//
// Batteryless nodes execute in bursts: charge to a turn-on threshold, run
// until brown-out, checkpoint, repeat. This model answers "how much useful
// work completes per day" for a task pipeline under a given harvester,
// including checkpoint overhead and re-execution waste — the runtime story
// behind century-scale devices that are off most of the time.

#ifndef SRC_ENERGY_INTERMITTENT_H_
#define SRC_ENERGY_INTERMITTENT_H_

#include <cstdint>

#include "src/energy/harvester.h"
#include "src/sim/time.h"

namespace centsim {

struct IntermittentConfig {
  double storage_j = 0.1;          // Cap-bank size.
  double turn_on_fraction = 0.9;   // Charge fraction that triggers a burst.
  double brownout_fraction = 0.2;  // Fraction where execution halts.
  double active_power_w = 3e-3;    // Power draw while executing.
  double task_energy_j = 0.020;    // Energy to finish one task end-to-end.
  double checkpoint_energy_j = 0.001;  // Cost to persist progress.
  double checkpoint_interval_j = 0.005;  // Energy of work between checkpoints.
  bool checkpointing_enabled = true;   // false => restart task each burst.
};

struct IntermittentReport {
  uint64_t bursts = 0;
  uint64_t tasks_completed = 0;
  double energy_harvested_j = 0.0;
  double energy_on_work_j = 0.0;        // Retired, useful work.
  double energy_on_checkpoints_j = 0.0;
  double energy_wasted_j = 0.0;         // Re-executed work lost to brownouts.
  SimTime span;

  double TasksPerDay() const {
    const double days = span.ToDays();
    return days > 0 ? static_cast<double>(tasks_completed) / days : 0.0;
  }
  double Efficiency() const {
    const double spent = energy_on_work_j + energy_on_checkpoints_j + energy_wasted_j;
    return spent > 0 ? energy_on_work_j / spent : 0.0;
  }
};

// Simulates charge/execute cycles over [from, to] against the harvester's
// deterministic profile. Pure function of its inputs.
IntermittentReport SimulateIntermittent(const Harvester& harvester, const IntermittentConfig& cfg,
                                        SimTime from, SimTime to);

}  // namespace centsim

#endif  // SRC_ENERGY_INTERMITTENT_H_
