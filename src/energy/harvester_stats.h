// Harvester reliability assessment ("Reliable Energy Sources as a
// Foundation for Reliable Intermittent Systems", the paper's ref [20]):
// a harvester is an energy *source* whose quality is not its peak power
// but its dependability — capacity factor, fraction of time above the
// load's floor, and the longest drought the storage must bridge.

#ifndef SRC_ENERGY_HARVESTER_STATS_H_
#define SRC_ENERGY_HARVESTER_STATS_H_

#include "src/energy/harvester.h"
#include "src/sim/time.h"

namespace centsim {

struct HarvestReliability {
  double mean_power_w = 0.0;
  double peak_power_w = 0.0;
  double capacity_factor = 0.0;        // mean / peak.
  double fraction_above_threshold = 0.0;
  SimTime longest_drought;             // Longest run below the threshold.
  // Storage needed to ride the worst drought at `load_w` draw (J).
  double bridging_storage_j = 0.0;
};

// Samples the harvester over [from, to] at `step` resolution and scores it
// against a load floor of `threshold_w`.
HarvestReliability AssessHarvester(const Harvester& harvester, SimTime from, SimTime to,
                                   SimTime step, double threshold_w);

}  // namespace centsim

#endif  // SRC_ENERGY_HARVESTER_STATS_H_
