#include "src/energy/intermittent.h"

#include <algorithm>
#include <cassert>

namespace centsim {

IntermittentReport SimulateIntermittent(const Harvester& harvester, const IntermittentConfig& cfg,
                                        SimTime from, SimTime to) {
  assert(to >= from);
  IntermittentReport rep;
  rep.span = to - from;

  const double turn_on_j = cfg.storage_j * cfg.turn_on_fraction;
  const double brownout_j = cfg.storage_j * cfg.brownout_fraction;
  const double burst_budget_j = turn_on_j - brownout_j;
  if (burst_budget_j <= 0) {
    return rep;
  }

  double stored = 0.0;
  double task_progress_j = 0.0;      // Work already banked toward the task.
  double unsaved_progress_j = 0.0;   // Work done since the last checkpoint.
  SimTime now = from;
  // Charging is stepped at 30-minute granularity (solar structure is
  // hour-scale); each burst then drains in one shot.
  const SimTime step = SimTime::Minutes(30);

  while (now < to) {
    // --- Charge phase ---
    while (stored < turn_on_j && now < to) {
      const SimTime next = std::min(now + step, to);
      const double in = harvester.EnergyOver(now, next);
      rep.energy_harvested_j += in;
      stored = std::min(cfg.storage_j, stored + in);
      now = next;
    }
    if (stored < turn_on_j) {
      break;  // Ran out of simulated time while charging.
    }

    // --- Execute phase: spend down to brownout ---
    ++rep.bursts;
    double budget = burst_budget_j;
    if (!cfg.checkpointing_enabled) {
      // Progress from previous bursts is lost.
      rep.energy_wasted_j += task_progress_j;
      task_progress_j = 0.0;
    }
    while (budget > 1e-12) {
      const double work_needed = cfg.task_energy_j - task_progress_j;
      const double next_chunk =
          cfg.checkpointing_enabled
              ? std::min({budget, work_needed, cfg.checkpoint_interval_j - unsaved_progress_j})
              : std::min(budget, work_needed);
      task_progress_j += next_chunk;
      unsaved_progress_j += next_chunk;
      rep.energy_on_work_j += next_chunk;
      budget -= next_chunk;

      if (task_progress_j >= cfg.task_energy_j - 1e-12) {
        ++rep.tasks_completed;
        task_progress_j = 0.0;
        unsaved_progress_j = 0.0;
        continue;
      }
      if (cfg.checkpointing_enabled && unsaved_progress_j >= cfg.checkpoint_interval_j - 1e-12) {
        if (budget >= cfg.checkpoint_energy_j) {
          budget -= cfg.checkpoint_energy_j;
          rep.energy_on_checkpoints_j += cfg.checkpoint_energy_j;
          unsaved_progress_j = 0.0;
        } else {
          break;  // Cannot afford the checkpoint; stop here.
        }
      }
      if (next_chunk <= 1e-15) {
        break;
      }
    }
    // Brown-out: unsaved progress is lost.
    rep.energy_wasted_j += unsaved_progress_j;
    task_progress_j -= unsaved_progress_j;
    rep.energy_on_work_j -= unsaved_progress_j;
    unsaved_progress_j = 0.0;
    stored = brownout_j;
    // Execution time is negligible next to charge time at these power
    // levels (ms vs minutes), so the clock does not advance here.
  }
  return rep;
}

}  // namespace centsim
