#!/usr/bin/env bash
# Build the whole tree under a sanitizer and run the tier-1 test suite.
# Usage:
#
#   tools/sanitize.sh                 # address,undefined (default)
#   tools/sanitize.sh undefined       # UBSan only
#   tools/sanitize.sh thread          # ThreadSanitizer (CENTSIM_TSAN)
#   CTEST_ARGS="-R Ensemble" tools/sanitize.sh thread
#
# Uses a dedicated build tree per sanitizer family (build-asan/ or
# build-tsan/) so it never poisons the regular build/ objects with
# instrumented ones. TSan cannot be combined with ASan, so `thread` routes
# through the CENTSIM_TSAN CMake option instead of CENTSIM_SANITIZE.
#
# The `thread` run is the proof obligation for the sharded engine: the
# tier-1 suite includes DistrictShardTest / CenturyShardTest /
# ShardCoordinatorTest, which drive multi-lane district and century runs
# on real worker threads — the barrier/plane protocol must come out clean
# here, not just "passes in practice".
#
# The default address,undefined run likewise covers the sampled engine:
# SamplingControllerTest / CenturySampledTest / DistrictSampledTest /
# SurvivalTableTest exercise the fast-forward walk, the transition
# calendar, and checkpoint restore into both modes under ASan/UBSan.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZERS="${1:-address,undefined}"

if [[ "${SANITIZERS}" == "thread" ]]; then
  BUILD_DIR="build-tsan"
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCENTSIM_TSAN=ON
else
  BUILD_DIR="build-asan"
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCENTSIM_SANITIZE="${SANITIZERS}"
fi
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# halt_on_error keeps CI signal crisp: first report fails the run.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:halt_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" ${CTEST_ARGS:-}
echo "sanitize(${SANITIZERS}): all tests passed"
