#!/usr/bin/env bash
# Build the whole tree under AddressSanitizer + UBSan and run the tier-1
# test suite. Usage:
#
#   tools/sanitize.sh                 # address,undefined (default)
#   tools/sanitize.sh undefined       # UBSan only
#   CTEST_ARGS="-R Profiler" tools/sanitize.sh
#
# Uses a dedicated build tree (build-asan/) so it never poisons the
# regular build/ objects with instrumented ones.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZERS="${1:-address,undefined}"
BUILD_DIR="build-asan"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCENTSIM_SANITIZE="${SANITIZERS}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# halt_on_error keeps CI signal crisp: first report fails the run.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:halt_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" ${CTEST_ARGS:-}
echo "sanitize(${SANITIZERS}): all tests passed"
