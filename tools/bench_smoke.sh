#!/usr/bin/env bash
# Build the engine benchmark in Release and guard against performance
# regressions: every throughput record in the freshly-written
# BENCH_p1_engine.json must be within 20% of the checked-in baseline
# (bench/BENCH_p1_engine.json), and the steady-state allocation count
# must not grow. Usage:
#
#   tools/bench_smoke.sh              # build, run, compare
#   TOLERANCE=0.3 tools/bench_smoke.sh
#
# Runs in a dedicated build-release/ tree so the default RelWithDebInfo
# build/ stays untouched. The comparison uses the paired-round medians the
# benchmark binary itself records, which are far more stable on a noisy
# machine than single google-benchmark runs.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="build-release"
BASELINE="bench/BENCH_p1_engine.json"
TOLERANCE="${TOLERANCE:-0.2}"

[[ -f "${BASELINE}" ]] || { echo "missing baseline ${BASELINE}" >&2; exit 1; }

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BUILD_DIR}" --target bench_p1_engine -j "$(nproc)"

# The google-benchmark pass is a smoke signal only (and this benchmark
# version wants a bare double for --benchmark_min_time); the JSON record
# written afterwards carries the numbers we actually compare.
(cd "${BUILD_DIR}/bench" && ./bench_p1_engine \
    --benchmark_filter='BM_Scheduler' --benchmark_min_time=0.05)

python3 - "${BASELINE}" "${BUILD_DIR}/bench/BENCH_p1_engine.json" "${TOLERANCE}" <<'EOF'
import json, sys

baseline_path, fresh_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
def records(path):
    with open(path) as f:
        return {r["name"]: r for r in json.load(f)["records"]}

base, fresh = records(baseline_path), records(fresh_path)
failures = []
for name, rec in sorted(base.items()):
    if name.endswith("_seed_baseline"):
        continue  # The replica of the old scheduler isn't under guard.
    if name not in fresh:
        failures.append(f"{name}: missing from fresh run")
        continue
    old, new = rec["value"], fresh[name]["value"]
    if rec["unit"] == "1/s" and old > 0:
        if new < old * (1.0 - tol):
            failures.append(f"{name}: {new:.0f}/s < {1-tol:.0%} of baseline {old:.0f}/s")
        else:
            print(f"  ok {name}: {new:.3g}/s vs baseline {old:.3g}/s")
    elif name == "scheduler_steady_allocs_per_event":
        # -1 means the allocation probe was compiled out (sanitizer build).
        if new > max(old, 0.0) and new >= 0 and old >= 0:
            failures.append(f"{name}: {new} allocs/event > baseline {old}")
        else:
            print(f"  ok {name}: {new} allocs/event (baseline {old})")

if failures:
    print("bench_smoke: REGRESSION", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("bench_smoke: within tolerance")
EOF
