#!/usr/bin/env bash
# Build the engine benchmark in Release and guard against performance
# regressions: every throughput record in the freshly-written
# BENCH_p1_engine.json must be within 20% of the checked-in baseline
# (bench/BENCH_p1_engine.json), and the steady-state allocation count
# must not grow. Usage:
#
#   tools/bench_smoke.sh              # build, run, compare
#   TOLERANCE=0.3 tools/bench_smoke.sh
#
# Runs in a dedicated build-release/ tree so the default RelWithDebInfo
# build/ stays untouched. The comparison uses the paired-round medians the
# benchmark binary itself records, which are far more stable on a noisy
# machine than single google-benchmark runs.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="build-release"
BASELINE="bench/BENCH_p1_engine.json"
TOLERANCE="${TOLERANCE:-0.2}"

[[ -f "${BASELINE}" ]] || { echo "missing baseline ${BASELINE}" >&2; exit 1; }

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BUILD_DIR}" --target bench_p1_engine -j "$(nproc)"

# The google-benchmark pass is a smoke signal only (and this benchmark
# version wants a bare double for --benchmark_min_time); the JSON record
# written afterwards carries the numbers we actually compare.
(cd "${BUILD_DIR}/bench" && ./bench_p1_engine \
    --benchmark_filter='BM_Scheduler' --benchmark_min_time=0.05)

python3 - "${BASELINE}" "${BUILD_DIR}/bench/BENCH_p1_engine.json" "${TOLERANCE}" <<'EOF'
import json, sys

baseline_path, fresh_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
def records(path):
    with open(path) as f:
        return {r["name"]: r for r in json.load(f)["records"]}

base, fresh = records(baseline_path), records(fresh_path)
failures = []
for name, rec in sorted(base.items()):
    if name.endswith("_seed_baseline"):
        continue  # The replica of the old scheduler isn't under guard.
    if name not in fresh:
        failures.append(f"{name}: missing from fresh run")
        continue
    old, new = rec["value"], fresh[name]["value"]
    if rec["unit"] == "1/s" and old > 0:
        if new < old * (1.0 - tol):
            failures.append(f"{name}: {new:.0f}/s < {1-tol:.0%} of baseline {old:.0f}/s")
        else:
            print(f"  ok {name}: {new:.3g}/s vs baseline {old:.3g}/s")
    elif name == "scheduler_steady_allocs_per_event":
        # -1 means the allocation probe was compiled out (sanitizer build).
        if new > max(old, 0.0) and new >= 0 and old >= 0:
            failures.append(f"{name}: {new} allocs/event > baseline {old}")
        else:
            print(f"  ok {name}: {new} allocs/event (baseline {old})")

# Absolute ceiling from the run-control acceptance criteria: the heartbeat
# stack (flight recorder + progress publishing on top of the profiler it
# piggybacks on) must cost <= 5% regardless of what the baseline recorded.
rc = fresh.get("runcontrol_overhead_pct")
if rc is None:
    failures.append("runcontrol_overhead_pct: missing from fresh run")
elif rc["value"] > 5.0:
    failures.append(f"runcontrol_overhead_pct: {rc['value']:.1f}% > 5% ceiling")
else:
    print(f"  ok runcontrol_overhead_pct: {rc['value']:.1f}% (ceiling 5%)")

if failures:
    print("bench_smoke: REGRESSION", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("bench_smoke: within tolerance")
EOF

# --- District fleet-core scale gate -----------------------------------
# bench_district_scale re-runs the 50-year district at 10k/100k/1M sites,
# checks report parity against the object-graph replica, and records
# throughput + memory. Guarded here: throughput within the same tolerance,
# the 100k end-to-end speedup floor, and the per-device memory budget.
DISTRICT_BASELINE="bench/BENCH_district_scale.json"
[[ -f "${DISTRICT_BASELINE}" ]] || { echo "missing baseline ${DISTRICT_BASELINE}" >&2; exit 1; }

cmake --build "${BUILD_DIR}" --target bench_district_scale -j "$(nproc)"
(cd "${BUILD_DIR}/bench" && ./bench_district_scale)

python3 - "${DISTRICT_BASELINE}" "${BUILD_DIR}/bench/BENCH_district_scale.json" "${TOLERANCE}" <<'EOF'
import json, sys

baseline_path, fresh_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
def records(path):
    with open(path) as f:
        return {r["name"]: r for r in json.load(f)["records"]}

base, fresh = records(baseline_path), records(fresh_path)
failures = []
for name, rec in sorted(base.items()):
    if name.endswith("_seed_baseline"):
        continue  # The object-graph replica isn't under guard.
    if name.endswith("_10k"):
        continue  # Millisecond-scale phases: recorded, but too noisy to gate.
    if name not in fresh:
        failures.append(f"{name}: missing from fresh run")
        continue
    old, new = rec["value"], fresh[name]["value"]
    if rec["unit"] == "1/s" and old > 0:
        if new < old * (1.0 - tol):
            failures.append(f"{name}: {new:.0f}/s < {1-tol:.0%} of baseline {old:.0f}/s")
        else:
            print(f"  ok {name}: {new:.3g}/s vs baseline {old:.3g}/s")

# Absolute floors from the fleet-core acceptance criteria, independent of
# the recorded baseline.
speedup = fresh.get("speedup_vs_object_graph_100k", {"value": 0.0})["value"]
if speedup < 3.0:
    failures.append(f"speedup_vs_object_graph_100k: {speedup:.2f}x < 3x floor")
else:
    print(f"  ok speedup_vs_object_graph_100k: {speedup:.2f}x (floor 3x)")
bytes_1m = fresh.get("fleet_bytes_per_device_1m", {"value": 1e9})["value"]
if bytes_1m > 200.0:
    failures.append(f"fleet_bytes_per_device_1m: {bytes_1m:.1f} B > 200 B budget")
else:
    print(f"  ok fleet_bytes_per_device_1m: {bytes_1m:.1f} B (budget 200 B)")
parity = fresh.get("parity_checks_passed", {"value": 0.0})["value"]
if parity < 2:
    failures.append(f"parity_checks_passed: {parity:.0f} < 2")
else:
    print(f"  ok parity_checks_passed: {parity:.0f}")

if failures:
    print("bench_smoke: REGRESSION (district scale)", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("bench_smoke: district scale within tolerance")
EOF

# --- Snapshot save/restore gate ----------------------------------------
# bench_snapshot checkpoints the 1M-device district at year 25, resumes a
# second run from that file, and fails itself if the resumed report is not
# bit-identical to the straight run. Gated here: save/restore throughput
# within tolerance, both wall times under the O(seconds) acceptance
# ceiling, and the per-device snapshot size budget.
SNAPSHOT_BASELINE="bench/BENCH_snapshot.json"
[[ -f "${SNAPSHOT_BASELINE}" ]] || { echo "missing baseline ${SNAPSHOT_BASELINE}" >&2; exit 1; }

cmake --build "${BUILD_DIR}" --target bench_snapshot -j "$(nproc)"
(cd "${BUILD_DIR}/bench" && ./bench_snapshot)

python3 - "${SNAPSHOT_BASELINE}" "${BUILD_DIR}/bench/BENCH_snapshot.json" "${TOLERANCE}" <<'EOF'
import json, sys

baseline_path, fresh_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
def records(path):
    with open(path) as f:
        return {r["name"]: r for r in json.load(f)["records"]}

base, fresh = records(baseline_path), records(fresh_path)
failures = []
for name, rec in sorted(base.items()):
    if name not in fresh:
        failures.append(f"{name}: missing from fresh run")
        continue
    old, new = rec["value"], fresh[name]["value"]
    if rec["unit"] == "1/s" and old > 0:
        if new < old * (1.0 - tol):
            failures.append(f"{name}: {new:.0f}/s < {1-tol:.0%} of baseline {old:.0f}/s")
        else:
            print(f"  ok {name}: {new:.3g}/s vs baseline {old:.3g}/s")

# Absolute ceilings from the snapshot acceptance criteria, independent of
# the recorded baseline: saving and restoring a million-device district
# must each stay O(seconds), and the file must stay lean.
for name, ceiling, unit in [("save_seconds_1m", 10.0, "s"),
                            ("restore_seconds_1m", 10.0, "s"),
                            ("snapshot_bytes_per_device_1m", 200.0, "B")]:
    val = fresh.get(name, {"value": 1e9})["value"]
    if val > ceiling:
        failures.append(f"{name}: {val:.2f} {unit} > {ceiling:.0f} {unit} ceiling")
    else:
        print(f"  ok {name}: {val:.2f} {unit} (ceiling {ceiling:.0f} {unit})")
parity = fresh.get("parity_checks_passed", {"value": 0.0})["value"]
if parity < 1:
    failures.append("parity_checks_passed: resumed run did not match the straight run")
else:
    print(f"  ok parity_checks_passed: {parity:.0f}")

if failures:
    print("bench_smoke: REGRESSION (snapshot)", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("bench_smoke: snapshot within tolerance")
EOF

# --- Radio medium scale gate -------------------------------------------
# bench_radio_scale runs the grid-bucketed contention resolver over 10k,
# 100k and 1M transmitters at constant density (positions straight from
# DeviceFleet columns), checks the grid path against the all-pairs oracle
# bit for bit at 10k, and fits the log-log scaling exponent. Gated here:
# throughput within tolerance, exponent <= 1.2 (near-linear), parity.
RADIO_BASELINE="bench/BENCH_radio_scale.json"
[[ -f "${RADIO_BASELINE}" ]] || { echo "missing baseline ${RADIO_BASELINE}" >&2; exit 1; }

cmake --build "${BUILD_DIR}" --target bench_radio_scale -j "$(nproc)"
(cd "${BUILD_DIR}/bench" && ./bench_radio_scale)

python3 - "${RADIO_BASELINE}" "${BUILD_DIR}/bench/BENCH_radio_scale.json" "${TOLERANCE}" <<'EOF'
import json, sys

baseline_path, fresh_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
def records(path):
    with open(path) as f:
        return {r["name"]: r for r in json.load(f)["records"]}

base, fresh = records(baseline_path), records(fresh_path)
failures = []
for name, rec in sorted(base.items()):
    if name.endswith("_10k"):
        continue  # Millisecond-scale rounds: recorded, but too noisy to gate.
    if name not in fresh:
        failures.append(f"{name}: missing from fresh run")
        continue
    old, new = rec["value"], fresh[name]["value"]
    if rec["unit"] == "1/s" and old > 0:
        if new < old * (1.0 - tol):
            failures.append(f"{name}: {new:.0f}/s < {1-tol:.0%} of baseline {old:.0f}/s")
        else:
            print(f"  ok {name}: {new:.3g}/s vs baseline {old:.3g}/s")
    elif name.startswith("delivered_round0"):
        # Deterministic counter-hash draws: the delivery count at a given
        # size is a fixed number, and any drift means the model changed.
        if new != old:
            failures.append(f"{name}: {new:.0f} != baseline {old:.0f} (model drift)")
        else:
            print(f"  ok {name}: {new:.0f} delivered (exact)")

# Absolute gates from the radio-medium acceptance criteria, independent of
# the recorded baseline.
exponent = fresh.get("scaling_exponent", {"value": 99.0})["value"]
if exponent > 1.2:
    failures.append(f"scaling_exponent: {exponent:.3f} > 1.2 ceiling (not near-linear)")
else:
    print(f"  ok scaling_exponent: {exponent:.3f} (ceiling 1.2)")
parity = fresh.get("parity_checks_passed", {"value": 0.0})["value"]
if parity < 1:
    failures.append("parity_checks_passed: grid did not match the all-pairs oracle")
else:
    print(f"  ok parity_checks_passed: {parity:.0f}")

if failures:
    print("bench_smoke: REGRESSION (radio scale)", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("bench_smoke: radio scale within tolerance")
EOF

# --- Ensemble engine + live-run-control gate ---------------------------
# bench_e5_ensemble runs the 50-year experiment as a parallel ensemble:
# once per pool width, and once more with live run control (status_dir +
# heartbeat + flight recorders) attached. Gated on replica throughput vs
# the checked-in baseline, on the cross-thread determinism flag, and on
# the run-control point not falling behind the plain full-width point by
# more than the tolerance. The replica/thread counts must match how the
# baseline was generated.
E5_BASELINE="bench/BENCH_e5_ensemble.json"
E5_REPLICAS=4
E5_THREADS=2
[[ -f "${E5_BASELINE}" ]] || { echo "missing baseline ${E5_BASELINE}" >&2; exit 1; }

cmake --build "${BUILD_DIR}" --target bench_e5_ensemble -j "$(nproc)"
(cd "${BUILD_DIR}/bench" && ./bench_e5_ensemble \
    --replicas="${E5_REPLICAS}" --threads="${E5_THREADS}")

python3 - "${E5_BASELINE}" "${BUILD_DIR}/bench/BENCH_e5_ensemble.json" "${TOLERANCE}" <<'EOF'
import json, sys

baseline_path, fresh_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
def records(path):
    with open(path) as f:
        return {r["name"]: r for r in json.load(f)["records"]}

base, fresh = records(baseline_path), records(fresh_path)
failures = []
for name, rec in sorted(base.items()):
    if name not in fresh:
        failures.append(f"{name}: missing from fresh run")
        continue
    old, new = rec["value"], fresh[name]["value"]
    if rec["unit"] == "1/s" and old > 0:
        if new < old * (1.0 - tol):
            failures.append(f"{name}: {new:.3f}/s < {1-tol:.0%} of baseline {old:.3f}/s")
        else:
            print(f"  ok {name}: {new:.3g}/s vs baseline {old:.3g}/s")

# Hard invariants, independent of the baseline numbers.
det = fresh.get("deterministic_across_threads", {"value": 0.0})["value"]
if det != 1.0:
    failures.append("deterministic_across_threads: merged statistics differ across pool widths")
else:
    print("  ok deterministic_across_threads: 1")
stalled = fresh.get("stalled_replicas", {"value": 1.0})["value"]
if stalled != 0.0:
    failures.append(f"stalled_replicas: {stalled:.0f} replicas tripped the watchdog")
else:
    print("  ok stalled_replicas: 0")
# Run control must keep pace with the plain full-width point.
import re
widths = [int(m.group(1)) for name in fresh for m in [re.match(r"replicas_per_sec_t(\d+)$", name)] if m]
if widths:
    full = fresh["replicas_per_sec_t%d" % max(widths)]["value"]
    rc = fresh.get("replicas_per_sec_run_control", {"value": 0.0})["value"]
    if full > 0 and rc < full * (1.0 - tol):
        failures.append(f"replicas_per_sec_run_control: {rc:.3f}/s < {1-tol:.0%} of plain {full:.3f}/s")
    else:
        print(f"  ok replicas_per_sec_run_control: {rc:.3g}/s vs plain {full:.3g}/s")

if failures:
    print("bench_smoke: REGRESSION (e5 ensemble)", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("bench_smoke: e5 ensemble within tolerance")
EOF

# --- Sharded-engine scale gate -----------------------------------------
# bench_shard_scale runs one city across 1 / 2 / half / all cores and
# fails ITSELF if any shard or worker count changes the report digest, so
# the determinism gates below hold on every machine. The >= 4x speedup
# floor is applied only when the box actually has >= 8 hardware threads —
# a single-core CI runner still proves correctness, just not scaling.
SHARD_BASELINE="bench/BENCH_shard_scale.json"
[[ -f "${SHARD_BASELINE}" ]] || { echo "missing baseline ${SHARD_BASELINE}" >&2; exit 1; }

cmake --build "${BUILD_DIR}" --target bench_shard_scale -j "$(nproc)"
(cd "${BUILD_DIR}/bench" && ./bench_shard_scale)

python3 - "${SHARD_BASELINE}" "${BUILD_DIR}/bench/BENCH_shard_scale.json" "${TOLERANCE}" <<'EOF'
import json, sys

baseline_path, fresh_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
def records(path):
    with open(path) as f:
        return {r["name"]: r for r in json.load(f)["records"]}

base, fresh = records(baseline_path), records(fresh_path)
failures = []

# Determinism gates: unconditional — these are the acceptance criteria that
# hold regardless of core count.
for name in ("shard_determinism_ok", "worker_determinism_ok"):
    val = fresh.get(name, {"value": 0.0})["value"]
    if val < 1.0:
        failures.append(f"{name}: digests diverged across shard/worker counts")
    else:
        print(f"  ok {name}")

# Single-lane throughput regression vs the checked-in baseline (the only
# throughput record that is comparable across machines with different core
# counts).
name = "events_per_sec_shards_1"
if name in base and name in fresh:
    old, new = base[name]["value"], fresh[name]["value"]
    if old > 0 and new < old * (1.0 - tol):
        failures.append(f"{name}: {new:.0f}/s < {1-tol:.0%} of baseline {old:.0f}/s")
    else:
        print(f"  ok {name}: {new:.3g}/s vs baseline {old:.3g}/s")

# Speedup floor: only meaningful where the cores exist.
hw = fresh.get("hardware_threads", {"value": 1.0})["value"]
speedup = fresh.get("speedup_full_cores", {"value": 0.0})["value"]
if hw >= 8:
    if speedup < 4.0:
        failures.append(f"speedup_full_cores: {speedup:.2f}x < 4x floor on {hw:.0f} threads")
    else:
        print(f"  ok speedup_full_cores: {speedup:.2f}x (floor 4x, {hw:.0f} threads)")
else:
    print(f"  skip speedup floor: only {hw:.0f} hardware threads (< 8); "
          f"recorded {speedup:.2f}x")

if failures:
    print("bench_smoke: REGRESSION (shard scale)", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("bench_smoke: shard scale within tolerance")
EOF

# --- Sampled-engine speedup + fidelity gate ----------------------------
# bench_sampling runs the 200k-site century once under the serial detailed
# engine and once under the sampled engine (measured windows + walked
# fast-forward), and fails ITSELF if the speedup drops below 10x or any
# paper metric drifts more than 1% — those floors are the acceptance
# criteria, so they are re-applied here unconditionally. The detailed
# engine's event throughput is additionally guarded against the checked-in
# baseline like every other bench.
SAMPLING_BASELINE="bench/BENCH_sampling.json"
[[ -f "${SAMPLING_BASELINE}" ]] || { echo "missing baseline ${SAMPLING_BASELINE}" >&2; exit 1; }

cmake --build "${BUILD_DIR}" --target bench_sampling -j "$(nproc)"
(cd "${BUILD_DIR}/bench" && ./bench_sampling)

python3 - "${SAMPLING_BASELINE}" "${BUILD_DIR}/bench/BENCH_sampling.json" "${TOLERANCE}" <<'EOF'
import json, sys

baseline_path, fresh_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
def records(path):
    with open(path) as f:
        return {r["name"]: r for r in json.load(f)["records"]}

base, fresh = records(baseline_path), records(fresh_path)
failures = []
for name, rec in sorted(base.items()):
    if name not in fresh:
        failures.append(f"{name}: missing from fresh run")
        continue
    old, new = rec["value"], fresh[name]["value"]
    if rec["unit"] == "1/s" and old > 0:
        if new < old * (1.0 - tol):
            failures.append(f"{name}: {new:.0f}/s < {1-tol:.0%} of baseline {old:.0f}/s")
        else:
            print(f"  ok {name}: {new:.3g}/s vs baseline {old:.3g}/s")

# Absolute floors from the sampled-engine acceptance criteria, independent
# of the recorded baseline: >= 10x wall-clock speedup over detailed, and
# every headline metric within 1% of the detailed run.
speedup = fresh.get("speedup_sampled", {"value": 0.0})["value"]
if speedup < 10.0:
    failures.append(f"speedup_sampled: {speedup:.2f}x < 10x floor")
else:
    print(f"  ok speedup_sampled: {speedup:.2f}x (floor 10x)")
for name in ("availability_rel_err", "failure_rate_rel_err",
             "replacement_rate_rel_err"):
    err = fresh.get(name, {"value": 1.0})["value"]
    if err > 0.01:
        failures.append(f"{name}: {err:.4f} > 1% ceiling")
    else:
        print(f"  ok {name}: {100.0 * err:.3f}% (ceiling 1%)")

if failures:
    print("bench_smoke: REGRESSION (sampling)", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("bench_smoke: sampling within tolerance")
EOF
