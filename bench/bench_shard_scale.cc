// Intra-run parallel DES: shard ONE city across cores (ROADMAP item 1) and
// measure how wall clock scales with the lane count while the report stays
// bit-identical. Runs the 50-year district under the sharded engine at
// 1 / 2 / half-cores / all-cores lanes, checks digest equality across every
// shard and worker count (a determinism failure exits non-zero — this bench
// is a correctness gate first and a perf record second), and emits
// BENCH_shard_scale.json.
//
// tools/bench_smoke.sh guards the determinism records unconditionally and
// applies the >= 4x speedup floor only when `hardware_threads` in the fresh
// record is >= 8 — single-core CI boxes still verify correctness, the
// speedup claim is only checkable where the cores exist.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/district.h"
#include "src/sim/time.h"
#include "src/telemetry/bench_record.h"
#include "src/telemetry/report.h"
#include "src/telemetry/run_manifest.h"

namespace centsim {
namespace {

using Clock = std::chrono::steady_clock;

DistrictConfig BenchConfig() {
  DistrictConfig cfg;
  cfg.seed = 20260806;
  cfg.device_count = 400000;
  cfg.area_km2 = 2500.0;  // The constant-density rule: 160 sites per km2.
  cfg.zone_grid = 4;
  cfg.horizon = SimTime::Years(50);
  return cfg;
}

// Result-field digest (perf accounting excluded) — the same hexfloat idiom
// the golden parity pins use.
std::string Digest(const DistrictReport& r) {
  std::ostringstream out;
  out << std::hexfloat;
  out << r.gateway_count << '|' << r.initial_coverage << '|' << r.mean_device_availability
      << '|' << r.mean_service_availability << '|' << r.min_yearly_service << '|'
      << r.device_failures << '|' << r.device_replacements << '|' << r.gateway_failures
      << '|' << r.gateway_repairs;
  for (double v : r.yearly_service) {
    out << '|' << v;
  }
  return ConfigDigest(out.str());
}

struct Run {
  double wall = 0.0;
  std::string digest;
  uint64_t events = 0;
};

Run TimeRun(const DistrictConfig& base, uint32_t shards, uint32_t workers) {
  DistrictConfig cfg = base;
  cfg.shard.shards = shards;
  cfg.shard.workers = workers;
  const auto start = Clock::now();
  const DistrictReport r = RunDistrictScenario(cfg);
  Run out;
  out.wall = std::chrono::duration<double>(Clock::now() - start).count();
  out.digest = Digest(r);
  out.events = r.events_executed;
  return out;
}

}  // namespace
}  // namespace centsim

int main() {
  using namespace centsim;
  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "=== shard scale: one city across " << hw << " hardware threads ===\n\n";

  const DistrictConfig cfg = BenchConfig();
  BenchReport bench("shard_scale");
  bench.Add("hardware_threads", static_cast<double>(hw), "count");

  // Lane sweep: 1, 2, half the cores, all the cores (deduplicated).
  std::vector<uint32_t> shard_counts{1, 2, hw / 2, hw};
  std::sort(shard_counts.begin(), shard_counts.end());
  shard_counts.erase(std::unique(shard_counts.begin(), shard_counts.end()), shard_counts.end());
  shard_counts.erase(std::remove(shard_counts.begin(), shard_counts.end(), 0u),
                     shard_counts.end());

  Table t({"shards", "workers", "wall s", "speedup", "digest"});
  bool shard_determinism_ok = true;
  std::string reference_digest;
  double wall_one_shard = 0.0;
  double wall_full = 0.0;
  for (const uint32_t shards : shard_counts) {
    const Run r = TimeRun(cfg, shards, shards);
    if (reference_digest.empty()) {
      reference_digest = r.digest;
      wall_one_shard = r.wall;
    } else if (r.digest != reference_digest) {
      shard_determinism_ok = false;
    }
    if (shards == shard_counts.back()) {
      wall_full = r.wall;
    }
    const double speedup = wall_one_shard / std::max(r.wall, 1e-9);
    t.AddRow({FormatCount(shards), FormatCount(shards), FormatDouble(r.wall, 2),
              FormatDouble(speedup, 2), r.digest.substr(0, 8)});
    const std::string tag = std::to_string(shards);
    bench.Add("wall_seconds_shards_" + tag, r.wall, "s");
    bench.Add("events_per_sec_shards_" + tag, static_cast<double>(r.events) / r.wall, "1/s");
  }
  t.Print(std::cout);

  // Worker-count independence at a fixed lane count: the thread budget is a
  // pure wall-clock knob, never a result knob.
  const uint32_t probe_shards = std::max(2u, std::min(4u, hw));
  const Run serial_workers = TimeRun(cfg, probe_shards, 1);
  const Run full_workers = TimeRun(cfg, probe_shards, hw);
  const bool worker_determinism_ok = serial_workers.digest == full_workers.digest &&
                                     serial_workers.digest == reference_digest;

  const double speedup_full = wall_one_shard / std::max(wall_full, 1e-9);
  std::cout << "\nfull-core sweep: " << shard_counts.back() << " lanes, "
            << FormatDouble(speedup_full, 2) << "x vs 1 lane ("
            << FormatDouble(wall_one_shard, 2) << "s -> " << FormatDouble(wall_full, 2)
            << "s)\n";
  std::cout << "shard determinism: " << (shard_determinism_ok ? "ok" : "FAILED")
            << ", worker determinism: " << (worker_determinism_ok ? "ok" : "FAILED") << "\n";

  bench.Add("speedup_full_cores", speedup_full, "x");
  bench.Add("shard_determinism_ok", shard_determinism_ok ? 1.0 : 0.0, "bool");
  bench.Add("worker_determinism_ok", worker_determinism_ok ? 1.0 : 0.0, "bool");

  const std::string path = bench.WriteFile();
  if (!path.empty()) {
    std::cout << "\nWrote " << path << "\n";
  }
  // Determinism is the acceptance criterion that holds on every machine.
  return shard_determinism_ok && worker_determinism_ok ? 0 : 1;
}
