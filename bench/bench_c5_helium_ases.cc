// C5 — paper §4.3 footnote 5: probing the Helium network found "roughly
// half of the 12,400 gateways with public IP addresses" served by
// Comcast/Spectrum/Verizon-class ISPs: "50% of nodes belong to just ten
// ASes, but the long tail extends to nearly 200 unique ASes."
//
// We synthesize the population (Zipf s=1 over 200 ASes) and re-run the
// measurement on the synthetic data, as the probe would.

#include <iostream>

#include "src/net/helium.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;
  std::cout << "=== C5: Helium backhaul AS diversity (paper SS4.3 fn5) ===\n\n";

  HeliumPopulation::Params params;
  const HeliumPopulation pop(params, RandomStream(13));

  Table t({"quantity", "paper", "measured"});
  t.AddRow({"public-IP gateways", "12,400", FormatCount(pop.hotspots().size())});
  t.AddRow({"share in top-10 ASes", "~50%", FormatPercent(pop.TopAsShare(10))});
  t.AddRow({"unique ASes", "~200", FormatCount(pop.UniqueAsCount())});
  t.Print(std::cout);

  std::cout << "\nCumulative share by AS rank (measured census):\n";
  Table cum({"top-k ASes", "share of gateways"});
  for (uint32_t k : {1u, 3u, 10u, 30u, 100u, 200u}) {
    cum.AddRow({FormatCount(k), FormatPercent(pop.TopAsShare(k))});
  }
  cum.Print(std::cout);

  std::cout << "\nLargest ASes (synthetic census):\n";
  const auto census = pop.AsCensus();
  Table top({"rank", "gateways", "share"});
  for (uint32_t i = 0; i < 10 && i < census.size(); ++i) {
    top.AddRow({std::to_string(i + 1), FormatCount(census[i]),
                FormatPercent(static_cast<double>(census[i]) / pop.hotspots().size())});
  }
  top.Print(std::cout);

  std::cout << "\nReading: half the third-party backhaul rides ~10 providers —\n"
               "a provider-concentration risk the 'hedged' Helium design of SS4.2\n"
               "must survive.\n";
  return 0;
}
