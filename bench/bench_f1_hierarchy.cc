// F1 — Figure 1: the deployment hierarchy. Devices rely on one or two
// gateways; gateways on one or two backhauls; fan-out grows and "lifetime
// variability" shrinks up the stack. This bench regenerates the figure's
// quantitative content: per-tier blast radius, per-tier availability, the
// redundancy effect, and a measured outage attribution from a simulated
// deployment.

#include <iostream>

#include "src/core/experiment.h"
#include "src/core/hierarchy.h"
#include "src/reliability/component.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;
  std::cout << "=== F1: deployment hierarchy (Figure 1) ===\n\n";

  FanoutSpec fanout;
  fanout.devices_per_gateway = 1000;
  fanout.gateways_per_backhaul = 1000;

  std::cout << "Blast radius: devices stranded when one instance dies.\n";
  Table blast({"tier", "fan-out", "devices stranded by one failure"});
  blast.AddRow({"device", "1", FormatCount(BlastRadius(Tier::kDevice, fanout))});
  blast.AddRow({"gateway", FormatCount(fanout.devices_per_gateway),
                FormatCount(BlastRadius(Tier::kGateway, fanout))});
  blast.AddRow({"backhaul", FormatCount(fanout.gateways_per_backhaul),
                FormatCount(BlastRadius(Tier::kBackhaul, fanout))});
  blast.Print(std::cout);

  std::cout << "\nLifetime variability per tier (hardware MTTF):\n";
  Table life({"tier instance", "MTTF"});
  life.AddRow({"energy-harvesting device",
               FormatDouble(SeriesSystem::EnergyHarvestingNode().Mttf().ToYears(), 1) + " y"});
  life.AddRow({"RPi-class gateway",
               FormatDouble(SeriesSystem::RaspberryPiGateway().Mttf().ToYears(), 1) + " y"});
  life.AddRow({"fiber backhaul strand", "decades (repairable cuts only)"});
  life.Print(std::cout);

  std::cout << "\nRedundancy (\"one or two gateways\") on end-to-end availability:\n";
  TierAvailability avail;
  avail.device = 0.995;
  avail.access = 0.98;
  avail.gateway = 0.93;
  avail.backhaul = 0.995;
  avail.cloud = 0.9995;
  Table redund({"gateways per device", "backhauls per gateway", "end-to-end availability"});
  for (uint32_t gws : {1u, 2u}) {
    for (uint32_t bhs : {1u, 2u}) {
      FanoutSpec f = fanout;
      f.redundancy_gateways = gws;
      f.redundancy_backhauls = bhs;
      redund.AddRow({std::to_string(gws), std::to_string(bhs),
                     FormatPercent(EndToEndAvailability(avail, f), 2)});
    }
  }
  redund.Print(std::cout);

  std::cout << "\nMeasured outage attribution (20-year simulated deployment,\n"
               "failed uplink attempts charged to the tier that lost them):\n";
  FiftyYearConfig cfg;
  cfg.seed = 11;
  cfg.devices_802154 = 4;
  cfg.devices_lora = 4;
  cfg.owned_gateways = 2;
  cfg.helium_hotspots = 3;
  cfg.report_interval = SimTime::Hours(6);
  cfg.horizon = SimTime::Years(20);
  const auto report = RunFiftyYearExperiment(cfg);
  const uint64_t attempts = report.owned_path.attempts + report.helium_path.attempts;
  uint64_t failures = 0;
  for (const auto count : report.tier_attribution) {
    failures += count;
  }
  Table attribution({"tier", "lost attempts", "share of losses"});
  for (int t = 0; t < kTierCount; ++t) {
    attribution.AddRow({TierName(static_cast<Tier>(t)),
                        FormatCount(report.tier_attribution[t]),
                        failures ? FormatPercent(static_cast<double>(report.tier_attribution[t]) /
                                                 failures)
                                 : "0%"});
  }
  attribution.Print(std::cout);
  std::cout << "(delivered " << FormatCount(attempts - failures) << " of "
            << FormatCount(attempts) << " attempts)\n";
  return 0;
}
