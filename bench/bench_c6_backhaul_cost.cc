// C6 — paper §3.3: cellular backhaul is "easier to implement" but "in the
// long term the operational costs of subscription from service providers
// becomes expensive"; San Diego is "planning a transition to lower cost
// wired options". This bench regenerates the cumulative-cost curves and
// the crossover year.

#include <iostream>

#include "src/econ/npv.h"
#include "src/econ/tariff.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;
  std::cout << "=== C6: fiber vs cellular backhaul cost over 50 years (paper SS3.3) ===\n\n";

  const uint32_t sites = 100;     // Gateway sites.
  const double route_m = 20000;   // Shared-trench fiber route.
  FiberBuild fiber;
  CellularTariff cell;

  std::cout << "Cumulative cost, " << sites << " gateway sites (fiber trench shared with "
            << "roadworks, cellular swaps hardware each generation sunset):\n\n";
  Table t({"year", "fiber (owned)", "cellular (subscribed)", "cheaper"});
  for (double year : {0.0, 2.0, 5.0, 10.0, 15.0, 25.0, 35.0, 50.0}) {
    const uint32_t sunsets = static_cast<uint32_t>(year / 12.0);
    const double f = fiber.CumulativeCostUsd(route_m, sites, year);
    const double c = cell.CumulativeCostUsd(sites, year, sunsets);
    t.AddRow({FormatDouble(year, 0), FormatUsd(f), FormatUsd(c), f <= c ? "fiber" : "cellular"});
  }
  t.Print(std::cout);

  const double crossover = FiberCellularCrossoverYears(fiber, route_m, cell, sites, 50);
  std::cout << "\nCrossover year (fiber overtakes cellular): "
            << (crossover >= 0 ? FormatDouble(crossover, 1) : "never in 50y") << "\n";

  std::cout << "\nAblation — what moves the crossover:\n";
  Table abl({"variant", "crossover year"});
  {
    FiberBuild solo = fiber;
    solo.coordinate_with_roadworks = false;
    abl.AddRow({"dedicated trench (no roadworks sharing)",
                FormatDouble(FiberCellularCrossoverYears(solo, route_m, cell, sites, 50), 1)});
  }
  {
    FiberBuild leased = fiber;
    leased.lease_revenue_per_site_monthly_usd = 40.0;  // Community ISP model.
    abl.AddRow({"with San-Leandro-style lease revenue",
                FormatDouble(FiberCellularCrossoverYears(leased, route_m, cell, sites, 50), 1)});
  }
  {
    CellularTariff cheap = cell;
    cheap.monthly_fee_usd = 8.0;
    abl.AddRow({"discount cellular ($8/mo)",
                FormatDouble(FiberCellularCrossoverYears(fiber, route_m, cheap, sites, 50), 1)});
  }
  abl.Print(std::cout);

  std::cout << "\nEquivalent annual cost of the fiber build over 50 y at 3%: "
            << FormatUsd(EquivalentAnnualCost(fiber.CapexUsd(route_m, sites), 50, 0.03))
            << "/yr vs cellular year-1 opex "
            << FormatUsd(cell.monthly_fee_usd * 12 * sites) << "/yr.\n";
  return 0;
}
