// C2 — paper §1: replacement-cadence contrast. "Wireless electronics
// devices are replaced every 50 months. A bridge is replaced every 50
// years." And: batteries/electrolytics/PCBs "hold the mean lifetime of a
// device to around 10-15 years", while energy-harvesting hardware lifts
// that ceiling.

#include <iostream>

#include "src/reliability/component.h"
#include "src/reliability/survival.h"
#include "src/sim/random.h"
#include "src/telemetry/report.h"

namespace {

centsim::KaplanMeier SampleLives(const centsim::SeriesSystem& bom, uint64_t seed, int n) {
  centsim::RandomStream rng(seed);
  centsim::KaplanMeier km;
  for (int i = 0; i < n; ++i) {
    km.Observe(bom.SampleLife(rng).life, true);
  }
  return km;
}

}  // namespace

int main() {
  using namespace centsim;
  std::cout << "=== C2: device vs infrastructure lifetimes (paper SS1) ===\n\n";

  const SeriesSystem battery = SeriesSystem::BatteryPoweredNode();
  const SeriesSystem harvesting = SeriesSystem::EnergyHarvestingNode();
  const SeriesSystem gateway = SeriesSystem::RaspberryPiGateway();

  const int kDraws = 20000;
  const auto km_battery = SampleLives(battery, 1, kDraws);
  const auto km_harvest = SampleLives(harvesting, 2, kDraws);
  const auto km_gateway = SampleLives(gateway, 3, kDraws);

  Table t({"hardware class", "MTTF", "median life", "P(alive at 10y)", "P(alive at 25y)",
           "P(alive at 50y)"});
  auto row = [&](const std::string& name, const SeriesSystem& bom, const KaplanMeier& km) {
    t.AddRow({name, FormatDouble(bom.Mttf().ToYears(), 1) + " y",
              FormatDouble(km.MedianSurvival()->ToYears(), 1) + " y",
              FormatPercent(bom.Survival(SimTime::Years(10))),
              FormatPercent(bom.Survival(SimTime::Years(25))),
              FormatPercent(bom.Survival(SimTime::Years(50)))});
  };
  row("battery-powered node", battery, km_battery);
  row("energy-harvesting node", harvesting, km_harvest);
  row("RPi-class gateway", gateway, km_gateway);
  t.Print(std::cout);

  std::cout << "\nPaper shape checks:\n"
            << "  - battery node mean life ~10-15 y band (conventional wisdom): "
            << FormatDouble(battery.Mttf().ToYears(), 1) << " y\n"
            << "  - harvesting node outlives battery node by "
            << FormatDouble(harvesting.Mttf().ToYears() / battery.Mttf().ToYears(), 2)
            << "x (paper: removing batteries lifts the ceiling)\n"
            << "  - consumer refresh cadence 50 months = "
            << FormatDouble(50.0 / 12.0, 1) << " y vs 50-y bridge: "
            << FormatDouble(50.0 / (50.0 / 12.0), 0) << "x gap to close\n";

  std::cout << "\nFirst-failing component, battery node (20k draws):\n";
  RandomStream rng(9);
  std::vector<int> counts(battery.size(), 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[battery.SampleLife(rng).failing_component];
  }
  Table blame({"component", "share of first failures"});
  for (size_t c = 0; c < battery.size(); ++c) {
    blame.AddRow({battery.components()[c].name,
                  FormatPercent(static_cast<double>(counts[c]) / kDraws)});
  }
  blame.Print(std::cout);
  return 0;
}
