// E3 — paper §3.2: the gateway interoperability problem. "Manufacturers
// often lock down their software ecosystem, so that their sensors can only
// work with their specific gateways. Consequently, today's cities end up
// containing several ad-hoc wireless systems that are redundant."
//
// Scenario: three vendors share a district. Vendor-locked deployment needs
// one gateway grid per vendor; an open/standards deployment shares one
// grid. We compare gateway counts, capex, and what happens to each
// vendor's devices when that vendor exits the market.

#include <iostream>

#include "src/city/deployment.h"
#include "src/net/commissioning.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;
  std::cout << "=== E3: vendor lock vs standards-compliant gateways (paper SS3.2) ===\n\n";

  DeploymentPlan::Params dp;
  dp.site_count = 3000;  // 1,000 devices per vendor.
  dp.area_km2 = 25.0;
  DeploymentPlan plan(dp, RandomStream(4));
  const double range_m = 900.0;
  const auto grid = plan.PlanGatewayGrid(range_m);
  const double gw_cost = 600.0 + 350.0;  // Unit + install.

  const size_t locked_gateways = grid.size() * 3;  // One grid per vendor.
  const size_t open_gateways = grid.size();

  Table t({"deployment model", "gateways", "gateway capex", "coverage"});
  const auto coverage = plan.ScoreCoverage(grid, range_m);
  t.AddRow({"vendor-locked (3 vendors, 3 grids)", FormatCount(locked_gateways),
            FormatUsd(locked_gateways * gw_cost), FormatPercent(coverage.CoveredFraction())});
  t.AddRow({"standards-compliant (shared grid)", FormatCount(open_gateways),
            FormatUsd(open_gateways * gw_cost), FormatPercent(coverage.CoveredFraction())});
  t.Print(std::cout);
  std::cout << "Same coverage, " << FormatUsd((locked_gateways - open_gateways) * gw_cost)
            << " of redundant co-located gateways — the paper's 'gateway problem'.\n";

  // --- Vendor exit: who strands? --------------------------------------
  std::cout << "\nVendor B exits the market; its cloud-locked gateways go dark.\n";
  Simulation sim(5);
  GatewayConfig open_cfg;
  open_cfg.id = 1;
  open_cfg.name = "shared-open-gw";
  Gateway open_gw(sim, open_cfg, SeriesSystem::RaspberryPiGateway());
  Backhaul bh("bh", {SimTime::Years(100), SimTime::Hours(1)}, RandomStream(1));
  open_gw.AttachBackhaul(&bh);
  open_gw.Deploy();

  std::vector<DeviceBinding> vendor_b_devices;
  std::vector<DeviceBinding> standards_devices;
  for (uint32_t i = 0; i < 1000; ++i) {
    vendor_b_devices.push_back({i, DeviceCoupling::kVendorBound, "vendor-b"});
    standards_devices.push_back({10000 + i, DeviceCoupling::kStandardsCompliant, ""});
  }

  // Vendor-locked replacement grid (vendor C's): strands vendor B devices.
  GatewayConfig locked_cfg;
  locked_cfg.id = 2;
  locked_cfg.vendor_locked = true;
  locked_cfg.vendor = "vendor-c";
  locked_cfg.name = "vendor-c-gw";
  Gateway locked_gw(sim, locked_cfg, SeriesSystem::RaspberryPiGateway());
  locked_gw.AttachBackhaul(&bh);
  locked_gw.Deploy();

  const auto to_locked = MigrateDevices(sim, nullptr, locked_gw, vendor_b_devices);
  const auto to_open = MigrateDevices(sim, nullptr, open_gw, vendor_b_devices);
  const auto standards_to_open = MigrateDevices(sim, nullptr, open_gw, standards_devices);

  Table exit({"device fleet", "migration target", "migrated", "stranded (replace at $40+labor)"});
  exit.AddRow({"1,000 vendor-B devices", "vendor-C locked gateways",
               FormatCount(to_locked.migrated), FormatCount(to_locked.stranded)});
  exit.AddRow({"1,000 vendor-B devices", "shared open gateways", FormatCount(to_open.migrated),
               FormatCount(to_open.stranded)});
  exit.AddRow({"1,000 standards devices", "shared open gateways",
               FormatCount(standards_to_open.migrated), FormatCount(standards_to_open.stranded)});
  exit.Print(std::cout);

  std::cout << "\nTakeaway (paper SS3.1): devices that 'rely on properties of\n"
               "infrastructure, but not specific instances' survive vendor exit;\n"
               "vendor-bound devices become e-waste.\n";
  return 0;
}
