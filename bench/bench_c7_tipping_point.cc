// C7 — paper §3.4: "there will always be a tipping point where the cost of
// deploying vertically owned and managed infrastructure is lower than the
// cost of replacing devices." The bench sweeps fleet size and reports the
// crossover, plus its sensitivity to the fan-out and hardware prices.

#include <iostream>

#include "src/econ/tipping_point.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;
  std::cout << "=== C7: vertical-integration tipping point (paper SS3.4) ===\n\n";

  ReplacementCostParams repl;
  OwnedInfraParams infra;

  Table t({"fleet size", "replace-all cost", "owned-infra cost", "winner"});
  for (uint64_t fleet : {100ULL, 1000ULL, 5000ULL, 20000ULL, 100000ULL, 591315ULL}) {
    const auto a = AnalyzeTippingPoint(fleet, repl, infra);
    t.AddRow({FormatCount(fleet), FormatUsd(a.replace_all_cost_usd),
              FormatUsd(a.owned_infra_cost_usd),
              a.vertical_integration_wins ? "own infrastructure" : "replace devices"});
  }
  t.Print(std::cout);

  std::cout << "\nTipping point: " << FormatCount(TippingPointFleetSize(repl, infra))
            << " devices (default parameters).\n";

  std::cout << "\nSensitivity sweep:\n";
  Table sens({"variant", "tipping point (devices)"});
  {
    ReplacementCostParams cheap = repl;
    cheap.device_unit_usd = 15.0;
    sens.AddRow({"cheap $15 devices", FormatCount(TippingPointFleetSize(cheap, infra))});
  }
  {
    ReplacementCostParams pricey = repl;
    pricey.device_unit_usd = 150.0;
    sens.AddRow({"industrial $150 devices", FormatCount(TippingPointFleetSize(pricey, infra))});
  }
  {
    OwnedInfraParams dense = infra;
    dense.devices_per_gateway = 5000;
    sens.AddRow({"5,000 devices/gateway fan-out", FormatCount(TippingPointFleetSize(repl, dense))});
  }
  {
    OwnedInfraParams sparse = infra;
    sparse.devices_per_gateway = 100;
    sens.AddRow({"100 devices/gateway fan-out", FormatCount(TippingPointFleetSize(repl, sparse))});
  }
  {
    OwnedInfraParams pricey_bh = infra;
    pricey_bh.backhaul_capex_per_gateway_usd = 10000.0;
    sens.AddRow({"expensive backhaul laterals", FormatCount(TippingPointFleetSize(repl, pricey_bh))});
  }
  sens.Print(std::cout);

  std::cout << "\nShape check: the tipping point exists and falls well below\n"
               "municipal scale, so cities should 'reserve the option of\n"
               "vertical integration' (paper takeaway, SS3.4).\n";
  return 0;
}
