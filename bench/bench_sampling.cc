// Sampled simulation engine: century-scale speedup and fidelity gate
// (ROADMAP item 2). Runs the Ship-of-Theseus century once under the serial
// detailed engine and once under the sampled engine (measured detailed
// windows + analytic/walked fast-forward), then reports the wall-clock
// speedup and the relative error of every paper metric.
//
// This bench is a correctness gate first and a perf record second:
// tools/bench_smoke.sh fails the build if the sampled engine is less than
// 10x faster than detailed on this workload or if any metric drifts more
// than 1% — and since both engines are single-threaded, the gate applies
// on every machine, single-core CI boxes included.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>

#include "src/core/theseus.h"
#include "src/sim/sampling.h"
#include "src/sim/time.h"
#include "src/telemetry/bench_record.h"
#include "src/telemetry/report.h"

namespace centsim {
namespace {

using Clock = std::chrono::steady_clock;

CenturyConfig BenchConfig() {
  CenturyConfig cfg;
  cfg.seed = 20260808;
  cfg.fleet_size = 200000;
  cfg.horizon = SimTime::Years(100);
  cfg.batch.zone_count = 16;
  // Thrice-weekly service rounds (the cadence of municipal waste routes,
  // which the Seoul study piggybacks sensors on): the detailed engine pays
  // a fleet scan per zone visit, which is exactly the per-event work the
  // sampled engine's fast-forward skips.
  cfg.batch.cycle_period = SimTime::Days(3);
  cfg.device_class = DeviceClassKind::kEnergyHarvesting;
  return cfg;
}

struct Run {
  double wall = 0.0;
  CenturyReport report;
};

Run TimeRun(const CenturyConfig& cfg) {
  const auto start = Clock::now();
  Run out;
  out.report = RunCenturyScenario(cfg);
  out.wall = std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

double RelErr(double sampled, double detailed) {
  return detailed != 0.0 ? std::fabs(sampled - detailed) / std::fabs(detailed) : 0.0;
}

}  // namespace
}  // namespace centsim

int main() {
  using namespace centsim;
  const CenturyConfig base = BenchConfig();
  std::cout << "=== sampled vs detailed: " << base.fleet_size << " sites, "
            << base.horizon.ToYears() << " years ===\n\n";

  BenchReport bench("sampling");
  bench.Add("fleet_size", static_cast<double>(base.fleet_size), "count");

  const Run detailed = TimeRun(base);

  CenturyConfig sampled_cfg = base;
  sampled_cfg.sampling.mode = SimMode::kSampled;
  sampled_cfg.sampling.detailed_window = SimTime::Days(7);
  sampled_cfg.sampling.sample_period = SimTime::Days(70);
  sampled_cfg.sampling.ci_target = 0.01;
  sampled_cfg.sampling.min_windows = 8;
  // The replacement metric is zone-visit bursty, so its window CI converges
  // slowly; cap the measured windows — the walked fast-forward is
  // trajectory-exact, so capping costs variance headroom, not accuracy.
  sampled_cfg.sampling.max_windows = 16;
  const Run sampled = TimeRun(sampled_cfg);

  const double device_years =
      static_cast<double>(base.fleet_size) * base.horizon.ToYears();
  const double det_fail_rate = static_cast<double>(detailed.report.total_failures) / device_years;
  const double smp_fail_rate = static_cast<double>(sampled.report.total_failures) / device_years;
  const double det_repl_rate =
      static_cast<double>(detailed.report.total_replacements) / device_years;
  const double smp_repl_rate =
      static_cast<double>(sampled.report.total_replacements) / device_years;

  const double speedup = detailed.wall / std::max(sampled.wall, 1e-9);
  const double avail_err =
      RelErr(sampled.report.mean_availability, detailed.report.mean_availability);
  const double fail_err = RelErr(smp_fail_rate, det_fail_rate);
  const double repl_err = RelErr(smp_repl_rate, det_repl_rate);
  const double skipped_fraction =
      static_cast<double>(sampled.report.sim_skipped_us) / base.horizon.micros();

  Table t({"engine", "wall s", "avail", "fail/dev-yr", "repl/dev-yr", "events"});
  t.AddRow({"detailed", FormatDouble(detailed.wall, 2),
            FormatDouble(detailed.report.mean_availability, 5), FormatDouble(det_fail_rate, 5),
            FormatDouble(det_repl_rate, 5), FormatCount(detailed.report.events_executed)});
  t.AddRow({"sampled", FormatDouble(sampled.wall, 2),
            FormatDouble(sampled.report.mean_availability, 5), FormatDouble(smp_fail_rate, 5),
            FormatDouble(smp_repl_rate, 5), FormatCount(sampled.report.events_executed)});
  t.Print(std::cout);

  std::cout << "\nspeedup: " << FormatDouble(speedup, 1) << "x ("
            << FormatDouble(detailed.wall, 2) << "s -> " << FormatDouble(sampled.wall, 2)
            << "s), windows measured: " << sampled.report.windows_measured
            << ", fast-forwarded: " << FormatDouble(100.0 * skipped_fraction, 1)
            << "% of horizon, ci_converged: " << (sampled.report.ci_converged ? "yes" : "no")
            << "\n";
  std::cout << "relative error: availability " << FormatDouble(100.0 * avail_err, 3)
            << "%, failure rate " << FormatDouble(100.0 * fail_err, 3) << "%, replacement rate "
            << FormatDouble(100.0 * repl_err, 3) << "%\n";
  for (const MetricCi& ci : sampled.report.metric_cis) {
    std::cout << "  window CI " << ci.name << ": " << FormatDouble(ci.mean, 5) << " +/- "
              << FormatDouble(ci.ci_half_width, 5) << " (" << ci.windows << " windows)\n";
  }

  bench.Add("wall_seconds_detailed", detailed.wall, "s");
  bench.Add("wall_seconds_sampled", sampled.wall, "s");
  bench.Add("events_per_sec_detailed",
            static_cast<double>(detailed.report.events_executed) / detailed.wall, "1/s");
  bench.Add("speedup_sampled", speedup, "x");
  bench.Add("availability_rel_err", avail_err, "frac");
  bench.Add("failure_rate_rel_err", fail_err, "frac");
  bench.Add("replacement_rate_rel_err", repl_err, "frac");
  bench.Add("windows_measured", static_cast<double>(sampled.report.windows_measured), "count");
  bench.Add("skipped_fraction", skipped_fraction, "frac");
  bench.Add("ci_converged", sampled.report.ci_converged ? 1.0 : 0.0, "bool");

  const std::string path = bench.WriteFile();
  if (!path.empty()) {
    std::cout << "\nWrote " << path << "\n";
  }
  // The acceptance gate, enforced here as well as in bench_smoke.sh.
  const bool ok = speedup >= 10.0 && avail_err <= 0.01 && fail_err <= 0.01 && repl_err <= 0.01;
  if (!ok) {
    std::cerr << "sampling gate FAILED: speedup " << speedup << "x, errors " << avail_err << "/"
              << fail_err << "/" << repl_err << "\n";
  }
  return ok ? 0 : 1;
}
