// P2 — fleet-core scale: how far the struct-of-arrays district engine
// stretches before the object-graph-per-node design (the iFogSim wall the
// paper's tooling section warns about) would have fallen over. Runs the
// 50-year district scenario at 10k, 100k and 1M sensor sites, and — at the
// sizes where it is still affordable — replays the same configuration
// through a replica of the pre-fleet object-graph implementation to verify
// report parity and measure the speedup.
//
// Emits BENCH_district_scale.json; tools/bench_smoke.sh guards the
// throughput records against >20% regressions, the 100k speedup floor and
// the per-device memory budget.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "src/city/deployment.h"
#include "src/core/device.h"
#include "src/core/district.h"
#include "src/energy/harvester.h"
#include "src/energy/storage.h"
#include "src/net/packet.h"
#include "src/reliability/component.h"
#include "src/sim/metrics.h"
#include "src/sim/simulation.h"
#include "src/telemetry/bench_record.h"
#include "src/telemetry/report.h"

namespace centsim {
namespace {

double ReadRssMb() {
#ifdef __linux__
  FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) {
    return 0.0;
  }
  char line[256];
  double rss_kb = 0.0;
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      rss_kb = std::atof(line + 6);
      break;
    }
  }
  std::fclose(f);
  return rss_kb / 1024.0;
#else
  return 0.0;
#endif
}

// Replica of the pre-fleet entity tier: one heap object graph per device,
// the way `EdgeDevice` used to be built — a per-unit config copy with its
// own name string, a per-unit hardware BOM copy, a heap-allocated virtual
// harvester, per-device metric instrument binding, and a `std::function`
// failure callback re-armed on every deployment — wired with the seed
// district's O(devices x gateways) coverage pass and O(devices) zone
// scans. The availability logic and RNG derivations are kept verbatim, so
// its report must match RunDistrictScenario bit for bit — the parity
// check below fails the bench if it does not.
DistrictReport RunObjectGraphDistrict(const DistrictConfig& config, double* build_seconds,
                                      double* run_seconds) {
  using Clock = std::chrono::steady_clock;
  const auto build_start = Clock::now();
  struct ObjectGraphDevice {
    explicit ObjectGraphDevice(EnergyStorage s) : storage(std::move(s)) {}
    EdgeDeviceConfig cfg;                   // Per-unit copy (id, name, radio params).
    SeriesSystem hardware;                  // Per-unit BOM copy, not shared.
    std::unique_ptr<Harvester> harvester;   // Virtual dispatch behind a heap pointer.
    EnergyStorage storage;
    LoadProfile load;                       // Per-unit airtime math, not per class.
    Counter* failures = nullptr;
    Counter* replacements = nullptr;
    Counter* granted = nullptr;
    Counter* denied = nullptr;
    HistogramMetric* harvest = nullptr;
    std::function<void(SimTime)> on_failure;  // Re-armed each deployment.
    bool alive = false;
    uint32_t covering_operational = 0;
    uint32_t zone = 0;
  };
  struct GatewayState {
    bool operational = false;
    std::vector<uint32_t> covered_devices;
  };

  Simulation sim(config.seed);
  sim.trace().EnableRetention(false);
  MetricsRegistry registry;
  sim.SetMetrics(&registry);
  DistrictReport report;

  DeploymentPlan::Params dp;
  dp.site_count = config.device_count;
  dp.area_km2 = config.area_km2;
  dp.zone_grid = config.zone_grid;
  DeploymentPlan plan(dp, sim.StreamFor(0x646973740001ULL));
  const auto gateway_sites = plan.PlanGatewayGrid(config.gateway_range_m);
  report.gateway_count = static_cast<uint32_t>(gateway_sites.size());

  const SeriesSystem device_bom_proto = config.device_class == DeviceClassKind::kBatteryPowered
                                            ? SeriesSystem::BatteryPoweredNode()
                                            : SeriesSystem::EnergyHarvestingNode();
  std::vector<std::unique_ptr<ObjectGraphDevice>> devices;
  devices.reserve(config.device_count);
  for (uint32_t d = 0; d < config.device_count; ++d) {
    auto node = std::make_unique<ObjectGraphDevice>(EnergyStorage::Supercap());
    node->cfg.id = d;
    node->cfg.name = "site-" + std::to_string(d);
    node->cfg.tech = RadioTech::kLoRa;
    node->hardware = device_bom_proto;
    node->harvester = std::make_unique<SolarHarvester>(SolarHarvester::Params{});
    node->load = LoadProfileFor(node->cfg);
    const MetricLabels labels{{"tech", RadioTechName(node->cfg.tech)}};
    node->failures = sim.MetricCounter("device.failures", labels);
    node->replacements = sim.MetricCounter("device.replacements", labels);
    node->denied = sim.MetricCounter("energy.tx_denied", labels);
    node->granted = sim.MetricCounter("energy.tx_granted", labels);
    node->harvest = sim.MetricHistogram("energy.harvest_j", labels);
    node->zone = plan.sites()[d].zone;
    devices.push_back(std::move(node));
  }
  std::vector<GatewayState> gateways(gateway_sites.size());
  for (uint32_t d = 0; d < config.device_count; ++d) {
    for (uint32_t g = 0; g < gateway_sites.size(); ++g) {
      if (DistanceM(plan.sites()[d], gateway_sites[g]) <= config.gateway_range_m) {
        gateways[g].covered_devices.push_back(d);
      }
    }
  }
  std::vector<uint8_t> planned_cover(config.device_count, 0);
  for (const auto& gw : gateways) {
    for (uint32_t d : gw.covered_devices) {
      planned_cover[d] = 1;
    }
  }
  uint32_t covered_at_all = 0;
  for (uint8_t c : planned_cover) {
    covered_at_all += c;
  }
  report.initial_coverage = static_cast<double>(covered_at_all) / config.device_count;

  const SeriesSystem gateway_bom = SeriesSystem::RaspberryPiGateway();
  RandomStream rng = sim.StreamFor(0x646973740002ULL);

  uint64_t alive_count = 0;
  uint64_t service_count = 0;
  SimTime last_change;
  double alive_site_seconds = 0.0;
  double service_site_seconds = 0.0;
  const uint32_t years = static_cast<uint32_t>(std::ceil(config.horizon.ToYears()));
  std::vector<double> yearly_service_seconds(years, 0.0);

  auto in_service = [&](uint32_t d) {
    return devices[d]->alive && devices[d]->covering_operational > 0;
  };
  auto accumulate_to = [&](SimTime now) {
    if (now <= last_change) {
      return;
    }
    const double span = (now - last_change).ToSeconds();
    alive_site_seconds += span * static_cast<double>(alive_count);
    service_site_seconds += span * static_cast<double>(service_count);
    double t0 = last_change.ToSeconds();
    const double t1 = now.ToSeconds();
    const double year_s = SimTime::Years(1).ToSeconds();
    while (t0 < t1) {
      const uint32_t y = std::min<uint32_t>(years - 1, static_cast<uint32_t>(t0 / year_s));
      const double seg = std::min(t1, (y + 1) * year_s) - t0;
      yearly_service_seconds[y] += seg * static_cast<double>(service_count);
      t0 += seg;
    }
    last_change = now;
  };

  std::function<void(uint32_t, bool)> set_gateway = [&](uint32_t g, bool up) {
    if (gateways[g].operational == up) {
      return;
    }
    accumulate_to(sim.Now());
    gateways[g].operational = up;
    for (uint32_t d : gateways[g].covered_devices) {
      const bool was = in_service(d);
      devices[d]->covering_operational += up ? 1 : -1;
      const bool is = in_service(d);
      if (was && !is) {
        --service_count;
      } else if (!was && is) {
        ++service_count;
      }
    }
  };

  std::function<void(uint32_t)> schedule_gateway_failure = [&](uint32_t g) {
    RandomStream gw_rng = rng.Derive(0x67770000ULL + g * 131 + report.gateway_failures);
    const SimTime life = gateway_bom.SampleLife(gw_rng).life;
    sim.scheduler().ScheduleAfter(life, [&, g] {
      ++report.gateway_failures;
      set_gateway(g, false);
      sim.scheduler().ScheduleAfter(config.gateway_repair_delay, [&, g] {
        ++report.gateway_repairs;
        set_gateway(g, true);
        schedule_gateway_failure(g);
      });
    });
  };

  std::function<void(uint32_t)> deploy_device = [&](uint32_t d) {
    accumulate_to(sim.Now());
    ObjectGraphDevice& node = *devices[d];
    if (!node.alive) {
      ++alive_count;
      node.alive = true;
      if (in_service(d)) {
        ++service_count;
      }
    }
    RandomStream dev_rng =
        rng.Derive(0x64650000ULL + static_cast<uint64_t>(d) * 977 + report.device_replacements);
    // Life is drawn through this unit's own BOM copy, as the per-device
    // `EdgeDevice::ScheduleHardwareFailure` did.
    const SimTime life = node.hardware.SampleLife(dev_rng).life;
    node.on_failure = [&, d](SimTime now) {
      accumulate_to(now);
      if (in_service(d)) {
        --service_count;
      }
      devices[d]->alive = false;
      --alive_count;
      ++report.device_failures;
      MetricInc(devices[d]->failures);
    };
    sim.scheduler().ScheduleAfter(life, [&, d] { devices[d]->on_failure(sim.Now()); });
  };

  BatchProjectParams batch;
  batch.zone_count = config.zone_grid * config.zone_grid;
  batch.cycle_period = config.batch_cycle;
  BatchProjectScheduler batches(sim, batch, [&](uint32_t zone, uint32_t) {
    for (uint32_t d = 0; d < config.device_count; ++d) {
      if (devices[d]->zone == zone && !devices[d]->alive) {
        ++report.device_replacements;
        MetricInc(devices[d]->replacements);
        deploy_device(d);
      }
    }
  });
  batches.ScheduleThrough(config.horizon);

  if (build_seconds) {
    *build_seconds = std::chrono::duration<double>(Clock::now() - build_start).count();
  }
  const auto run_start = Clock::now();
  for (uint32_t g = 0; g < gateways.size(); ++g) {
    set_gateway(g, true);
    schedule_gateway_failure(g);
  }
  for (uint32_t d = 0; d < config.device_count; ++d) {
    deploy_device(d);
  }

  sim.RunUntil(config.horizon);
  accumulate_to(config.horizon);
  if (run_seconds) {
    *run_seconds = std::chrono::duration<double>(Clock::now() - run_start).count();
  }

  const double total = config.horizon.ToSeconds() * config.device_count;
  report.mean_device_availability = alive_site_seconds / total;
  report.mean_service_availability = service_site_seconds / total;
  report.yearly_service.resize(years);
  const double year_total = SimTime::Years(1).ToSeconds() * config.device_count;
  for (uint32_t y = 0; y < years; ++y) {
    report.yearly_service[y] = yearly_service_seconds[y] / year_total;
    report.min_yearly_service = std::min(report.min_yearly_service, report.yearly_service[y]);
  }
  sim.SetMetrics(nullptr);
  return report;
}

bool ReportsMatch(const DistrictReport& a, const DistrictReport& b, std::string* why) {
  auto fail = [&](const std::string& field) {
    *why = field;
    return false;
  };
  if (a.gateway_count != b.gateway_count) return fail("gateway_count");
  if (a.initial_coverage != b.initial_coverage) return fail("initial_coverage");
  if (a.mean_device_availability != b.mean_device_availability)
    return fail("mean_device_availability");
  if (a.mean_service_availability != b.mean_service_availability)
    return fail("mean_service_availability");
  if (a.min_yearly_service != b.min_yearly_service) return fail("min_yearly_service");
  if (a.device_failures != b.device_failures) return fail("device_failures");
  if (a.device_replacements != b.device_replacements) return fail("device_replacements");
  if (a.gateway_failures != b.gateway_failures) return fail("gateway_failures");
  if (a.gateway_repairs != b.gateway_repairs) return fail("gateway_repairs");
  if (a.yearly_service != b.yearly_service) return fail("yearly_service");
  return true;
}

DistrictConfig ConfigFor(uint32_t devices) {
  DistrictConfig cfg;
  cfg.seed = 20260806;
  cfg.device_count = devices;
  // Constant density (the default 4000 / 25 km2 = 160 sites per km2), so
  // the gateway tier scales with the fleet instead of saturating.
  cfg.area_km2 = static_cast<double>(devices) / 160.0;
  cfg.zone_grid = 4;
  cfg.horizon = SimTime::Years(50);
  return cfg;
}

double Median(std::vector<double> v) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const size_t mid = v.size() / 2;
  return v.size() % 2 != 0 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

std::string SizeTag(uint32_t devices) {
  if (devices % 1000000 == 0) return std::to_string(devices / 1000000) + "m";
  return std::to_string(devices / 1000) + "k";
}

}  // namespace
}  // namespace centsim

int main(int argc, char** argv) {
  using namespace centsim;
  using Clock = std::chrono::steady_clock;
  std::cout << "=== P2: district fleet core at scale ===\n\n";

  std::vector<uint32_t> sizes = {10000, 100000, 1000000};
  // Sizes small enough that replaying the object-graph replica is cheap.
  const uint32_t baseline_limit = 100000;
  if (argc > 1) {
    sizes.clear();
    for (int i = 1; i < argc; ++i) {
      sizes.push_back(static_cast<uint32_t>(std::atol(argv[i])));
    }
  }

  BenchReport bench("district_scale");
  Table t({"devices", "build Mdev/s", "run dev-yr/s", "events/s", "B/device", "RSS MB"});
  double fleet_total_100k = 0.0;
  double object_total_100k = 0.0;
  double speedup_100k = 0.0;
  uint32_t parity_checks = 0;

  for (uint32_t n : sizes) {
    DistrictConfig cfg = ConfigFor(n);
    const std::string tag = SizeTag(n);
    const bool with_baseline = n <= baseline_limit;

    // Both sides export metrics: the fleet binds per class, the
    // object-graph replica per device — that asymmetry is the design
    // difference under test, not a handicap.
    //
    // Paired rounds, median walls: each round runs the fleet core and the
    // object-graph replica back to back, so a machine-wide slowdown hits
    // both sides of a round and cancels out of the per-round speedup
    // ratio; the medians over rounds are what the regression gate guards
    // (the same scheme bench_p1_engine uses).
    const int rounds = n >= 1000000 ? 1 : 3;
    DistrictReport fleet;
    DistrictReport object_graph;
    std::vector<double> fleet_totals, fleet_builds, fleet_runs;
    std::vector<double> og_totals, og_builds, og_runs, ratios;
    for (int r = 0; r < rounds; ++r) {
      MetricsRegistry fleet_registry;
      cfg.metrics = &fleet_registry;
      const auto start = Clock::now();
      DistrictReport attempt = RunDistrictScenario(cfg);
      const double total = std::chrono::duration<double>(Clock::now() - start).count();
      fleet_totals.push_back(total);
      fleet_builds.push_back(attempt.build_seconds);
      fleet_runs.push_back(attempt.wall_seconds);
      if (r == 0) {
        fleet = std::move(attempt);
      }
      if (with_baseline) {
        double build = 0.0;
        double run = 0.0;
        const auto og_start = Clock::now();
        DistrictReport og_attempt = RunObjectGraphDistrict(cfg, &build, &run);
        const double og_total = std::chrono::duration<double>(Clock::now() - og_start).count();
        og_totals.push_back(og_total);
        og_builds.push_back(build);
        og_runs.push_back(run);
        ratios.push_back(og_total / std::max(total, 1e-9));
        if (r == 0) {
          object_graph = std::move(og_attempt);
        }
      }
    }
    const double fleet_total = Median(fleet_totals);
    fleet.build_seconds = Median(fleet_builds);
    fleet.wall_seconds = Median(fleet_runs);
    const double rss_mb = ReadRssMb();

    const double device_years = static_cast<double>(n) * cfg.horizon.ToYears();
    const double build_rate = n / std::max(fleet.build_seconds, 1e-9);
    const double run_rate = device_years / std::max(fleet.wall_seconds, 1e-9);
    const double event_rate =
        static_cast<double>(fleet.events_executed) / std::max(fleet.wall_seconds, 1e-9);

    t.AddRow({FormatCount(n), FormatDouble(build_rate / 1e6, 2), FormatDouble(run_rate, 0),
              FormatDouble(event_rate, 0), FormatDouble(fleet.fleet_bytes_per_device, 1),
              FormatDouble(rss_mb, 1)});

    bench.Add("fleet_build_devices_per_sec_" + tag, build_rate, "1/s");
    bench.Add("fleet_run_device_years_per_sec_" + tag, run_rate, "1/s");
    bench.Add("fleet_events_per_sec_" + tag, event_rate, "1/s");
    bench.Add("fleet_total_seconds_" + tag, fleet_total, "s");
    bench.Add("fleet_bytes_per_device_" + tag, fleet.fleet_bytes_per_device, "B");
    bench.Add("rss_after_run_mb_" + tag, rss_mb, "MB");

    if (with_baseline) {
      const double og_total = Median(og_totals);
      std::cout << "  object-graph " << tag << ": build " << FormatDouble(Median(og_builds), 3)
                << "s, run " << FormatDouble(Median(og_runs), 3) << "s (fleet: build "
                << FormatDouble(fleet.build_seconds, 3) << "s, run "
                << FormatDouble(fleet.wall_seconds, 3) << "s)\n";
      bench.Add("object_graph_total_seconds_" + tag + "_seed_baseline", og_total, "s");
      if (n == 100000) {
        fleet_total_100k = fleet_total;
        object_total_100k = og_total;
        speedup_100k = Median(ratios);
      }
      std::string field;
      if (!ReportsMatch(fleet, object_graph, &field)) {
        std::cerr << "PARITY FAILURE at " << n << " devices: field " << field
                  << " differs between fleet core and object-graph replica\n";
        return 1;
      }
      ++parity_checks;
      std::cout << "parity " << tag << ": fleet report matches object-graph replica ("
                << FormatDouble(Median(ratios), 2) << "x median per-round speedup)\n";
    }
  }
  std::cout << "\n";
  t.Print(std::cout);

  if (object_total_100k > 0.0) {
    bench.Add("speedup_vs_object_graph_100k", speedup_100k, "x");
    std::cout << "\n100k-site 50-year run: fleet core " << FormatDouble(speedup_100k, 2)
              << "x faster end-to-end than the object-graph replica (median of paired rounds; "
              << FormatDouble(object_total_100k, 2) << "s vs "
              << FormatDouble(fleet_total_100k, 2) << "s)\n";
  }
  bench.Add("parity_checks_passed", static_cast<double>(parity_checks), "count");

  const std::string path = bench.WriteFile();
  if (!path.empty()) {
    std::cout << "\nWrote " << path << "\n";
  }
  return 0;
}
