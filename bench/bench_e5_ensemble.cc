// E5 — the 50-year experiment as an ensemble: the paper runs one physical
// instance of its experiment; the simulator runs the counterfactual
// distribution. How often does the design meet its own weekly-uptime goal?
// How often does the third-party (Helium) path die of owner churn? Plus
// the §4.5 succession forecast for the humans running it.
//
// The ensemble now runs on the parallel deterministic engine
// (EnsembleRunner<FiftyYearExperiment>): replicas/sec is measured at 1,
// half, and full hardware concurrency, the merged statistics are checked
// bit-identical across thread counts, and the scaling numbers land in
// BENCH_e5_ensemble.json.
//
//   bench_e5_ensemble [--threads=N] [--replicas=N]
//     --threads=N   cap the scaling sweep at N workers (default: hardware)
//     --replicas=N  ensemble size (default 16)

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/montecarlo.h"
#include "src/mgmt/succession.h"
#include "src/telemetry/bench_record.h"
#include "src/telemetry/report.h"

namespace {

uint32_t ParseFlag(int argc, char** argv, const char* name, uint32_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      const long value = std::atol(argv[i] + prefix.size());
      if (value > 0) {
        return static_cast<uint32_t>(value);
      }
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace centsim;
  std::cout << "=== E5: ensemble over the 50-year experiment (paper SS4) ===\n\n";

  FiftyYearConfig base;
  base.seed = 1000;
  base.devices_802154 = 4;
  base.devices_lora = 4;
  base.owned_gateways = 2;
  base.helium_hotspots = 4;
  base.report_interval = SimTime::Hours(6);
  base.horizon = SimTime::Years(50);

  const uint32_t replicas = ParseFlag(argc, argv, "replicas", 16);
  const uint32_t max_threads =
      ParseFlag(argc, argv, "threads", ThreadPool::DefaultThreadCount());

  // Thread counts for the scaling sweep: serial, half, and full width.
  std::vector<uint32_t> thread_counts{1};
  if (max_threads / 2 > 1) {
    thread_counts.push_back(max_threads / 2);
  }
  if (max_threads > 1) {
    thread_counts.push_back(max_threads);
  }

  std::cout << "Running " << replicas << " independent 50-year realizations at "
            << thread_counts.size() << " worker-pool width(s)...\n\n";

  BenchReport bench("e5_ensemble");
  bench.Add("replicas", replicas, "count");

  struct SweepPoint {
    uint32_t threads = 0;
    double wall_seconds = 0.0;
  };
  std::vector<SweepPoint> sweep;
  FiftyYearEnsemble ensemble;  // From the widest run; all runs are identical.
  FiftyYearEnsemble serial_ensemble;
  double total_events = 0.0;
  for (const uint32_t threads : thread_counts) {
    EnsembleOptions options;
    options.replicas = replicas;
    options.threads = threads;
    options.run_name = "e5_ensemble";
    const auto result = EnsembleRunner<FiftyYearExperiment>::Run(base, options);
    sweep.push_back({result.threads_used, result.wall_seconds});
    ensemble = AggregateFiftyYear(result.replicas, /*weekly_goal=*/0.95);
    if (threads == 1) {
      serial_ensemble = ensemble;
    }
    total_events = static_cast<double>(result.manifest.TotalEventsExecuted());
    const double rate = result.wall_seconds > 0 ? replicas / result.wall_seconds : 0.0;
    bench.Add("replicas_per_sec_t" + std::to_string(result.threads_used), rate, "1/s");
  }

  // Live-run-control point: the same ensemble at full width with a
  // status_dir wired (heartbeat thread + per-replica profiler, progress
  // cell, and flight recorder). Recorded alongside the plain points so the
  // smoke gate can see the observability stack not costing throughput.
  {
    EnsembleOptions options;
    options.replicas = replicas;
    options.threads = thread_counts.back();
    options.run_name = "e5_ensemble_live";
    options.status_dir = "e5_ensemble_status";
    options.heartbeat_seconds = 1.0;
    options.stall_deadline_seconds = 120.0;
    const auto result = EnsembleRunner<FiftyYearExperiment>::Run(base, options);
    const double rate = result.wall_seconds > 0 ? replicas / result.wall_seconds : 0.0;
    std::cout << "\nWith live run control (status_dir=" << result.status_dir
              << "): " << FormatDouble(rate, 2) << " replicas/sec, "
              << result.stalled_replicas << " stalled\n";
    bench.Add("replicas_per_sec_run_control", rate, "1/s");
    bench.Add("stalled_replicas", result.stalled_replicas, "count");
  }

  Table scaling({"threads", "wall seconds", "replicas/sec", "speedup vs serial"});
  const double serial_wall = sweep.front().wall_seconds;
  for (const SweepPoint& point : sweep) {
    scaling.AddRow({std::to_string(point.threads), FormatDouble(point.wall_seconds, 2),
                    FormatDouble(point.wall_seconds > 0 ? replicas / point.wall_seconds : 0.0, 2),
                    FormatDouble(point.wall_seconds > 0 ? serial_wall / point.wall_seconds : 0.0,
                                 2)});
  }
  scaling.Print(std::cout);
  if (sweep.size() > 1) {
    bench.Add("speedup_full_vs_serial",
              sweep.back().wall_seconds > 0 ? serial_wall / sweep.back().wall_seconds : 0.0,
              "x");
  }

  // Determinism spot check: same base seed => same merged statistics at
  // every pool width (SampleSets compare bitwise).
  const bool identical =
      serial_ensemble.weekly_uptime.values() == ensemble.weekly_uptime.values() &&
      serial_ensemble.runs_meeting_weekly_goal == ensemble.runs_meeting_weekly_goal;
  std::cout << "\nmerged statistics bit-identical across pool widths: "
            << (identical ? "yes" : "NO (bug!)") << "\n\n";
  bench.Add("deterministic_across_threads", identical ? 1.0 : 0.0, "bool");

  Table t({"metric", "p10", "median", "p90"});
  auto qrow = [&](const std::string& name, const SampleSet& s, bool pct) {
    auto fmt = [&](double v) {
      return pct ? FormatPercent(v) : FormatDouble(v, 0);
    };
    t.AddRow({name, fmt(s.Quantile(0.1)), fmt(s.Quantile(0.5)), fmt(s.Quantile(0.9))});
  };
  qrow("weekly end-to-end uptime", ensemble.weekly_uptime, true);
  qrow("owned-path uptime", ensemble.owned_path_uptime, true);
  qrow("Helium-path uptime", ensemble.helium_path_uptime, true);
  qrow("longest dark gap (weeks)", ensemble.longest_gap_weeks, false);
  t.Print(std::cout);

  std::cout << "\n";
  Table odds({"outcome", "probability over " + std::to_string(replicas) + " runs"});
  odds.AddRow({"meets >=95% weekly-uptime goal", FormatPercent(ensemble.GoalProbability())});
  odds.AddRow({"Helium path dead (<50% uptime)", FormatPercent(ensemble.HeliumDeathProbability())});
  odds.Print(std::cout);

  std::cout << "\nSpread of the living-study load:\n";
  Table spread({"quantity", "mean", "stddev"});
  spread.AddRow({"device failures", FormatDouble(ensemble.device_failures.mean(), 1),
                 FormatDouble(ensemble.device_failures.stddev(), 1)});
  spread.AddRow({"owned-gateway failures", FormatDouble(ensemble.gateway_failures.mean(), 1),
                 FormatDouble(ensemble.gateway_failures.stddev(), 1)});
  spread.AddRow({"maintenance person-hours", FormatDouble(ensemble.maintenance_hours.mean(), 1),
                 FormatDouble(ensemble.maintenance_hours.stddev(), 1)});
  spread.AddRow({"data credits spent", FormatDouble(ensemble.credits_spent.mean(), 0),
                 FormatDouble(ensemble.credits_spent.stddev(), 0)});
  spread.Print(std::cout);

  // --- The humans (§4.5) ------------------------------------------------
  std::cout << "\nExperimenter succession over 50 years (20 sampled careers):\n";
  SuccessionParams succ;
  SummaryStats handovers;
  SummaryStats knowledge_with;
  SummaryStats knowledge_without;
  RandomStream rng(5);
  for (int i = 0; i < 20; ++i) {
    const auto with = SimulateSuccession(succ, SimTime::Years(50), rng.Derive(i));
    SuccessionParams no_diary = succ;
    no_diary.diary_maintained = false;
    const auto without = SimulateSuccession(no_diary, SimTime::Years(50), rng.Derive(i));
    handovers.Add(with.handovers);
    knowledge_with.Add(with.final_knowledge);
    knowledge_without.Add(without.final_knowledge);
  }
  Table humans({"quantity", "value"});
  humans.AddRow({"expected handovers (formula)",
                 FormatDouble(ExpectedHandovers(succ, SimTime::Years(50)), 1)});
  humans.AddRow({"mean handovers (simulated)", FormatDouble(handovers.mean(), 1)});
  humans.AddRow({"final knowledge WITH living diary",
                 FormatPercent(knowledge_with.mean())});
  humans.AddRow({"final knowledge WITHOUT diary", FormatPercent(knowledge_without.mean())});
  humans.Print(std::cout);
  std::cout << "The diary the paper commits to (SS4.5) is what keeps operational\n"
               "knowledge above water across the custodian handovers a 50-year\n"
               "experiment guarantees.\n";

  RunManifest manifest;
  manifest.run_name = "e5_ensemble";
  manifest.seed = base.seed;
  manifest.horizon = base.horizon;
  manifest.wall_seconds = sweep.back().wall_seconds;
  manifest.events_executed = static_cast<uint64_t>(total_events);
  manifest.AddExtra("replicas", std::to_string(replicas));
  manifest.AddExtra("max_threads", std::to_string(max_threads));
  bench.SetManifest(std::move(manifest));
  const std::string path = bench.WriteFile();
  if (!path.empty()) {
    std::cout << "\nWrote " << path << "\n";
  }
  return 0;
}
