// E5 — the 50-year experiment as an ensemble: the paper runs one physical
// instance of its experiment; the simulator runs the counterfactual
// distribution. How often does the design meet its own weekly-uptime goal?
// How often does the third-party (Helium) path die of owner churn? Plus
// the §4.5 succession forecast for the humans running it.

#include <iostream>

#include "src/core/montecarlo.h"
#include "src/mgmt/succession.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;
  std::cout << "=== E5: ensemble over the 50-year experiment (paper SS4) ===\n\n";

  FiftyYearConfig base;
  base.seed = 1000;
  base.devices_802154 = 4;
  base.devices_lora = 4;
  base.owned_gateways = 2;
  base.helium_hotspots = 4;
  base.report_interval = SimTime::Hours(6);
  base.horizon = SimTime::Years(50);

  const uint32_t kRuns = 12;
  std::cout << "Running " << kRuns << " independent 50-year realizations...\n\n";
  const auto ensemble = SweepFiftyYear(base, kRuns, /*weekly_goal=*/0.95);

  Table t({"metric", "p10", "median", "p90"});
  auto qrow = [&](const std::string& name, const SampleSet& s, bool pct) {
    auto fmt = [&](double v) {
      return pct ? FormatPercent(v) : FormatDouble(v, 0);
    };
    t.AddRow({name, fmt(s.Quantile(0.1)), fmt(s.Quantile(0.5)), fmt(s.Quantile(0.9))});
  };
  qrow("weekly end-to-end uptime", ensemble.weekly_uptime, true);
  qrow("owned-path uptime", ensemble.owned_path_uptime, true);
  qrow("Helium-path uptime", ensemble.helium_path_uptime, true);
  qrow("longest dark gap (weeks)", ensemble.longest_gap_weeks, false);
  t.Print(std::cout);

  std::cout << "\n";
  Table odds({"outcome", "probability over " + std::to_string(kRuns) + " runs"});
  odds.AddRow({"meets >=95% weekly-uptime goal", FormatPercent(ensemble.GoalProbability())});
  odds.AddRow({"Helium path dead (<50% uptime)", FormatPercent(ensemble.HeliumDeathProbability())});
  odds.Print(std::cout);

  std::cout << "\nSpread of the living-study load:\n";
  Table spread({"quantity", "mean", "stddev"});
  spread.AddRow({"device failures", FormatDouble(ensemble.device_failures.mean(), 1),
                 FormatDouble(ensemble.device_failures.stddev(), 1)});
  spread.AddRow({"owned-gateway failures", FormatDouble(ensemble.gateway_failures.mean(), 1),
                 FormatDouble(ensemble.gateway_failures.stddev(), 1)});
  spread.AddRow({"maintenance person-hours", FormatDouble(ensemble.maintenance_hours.mean(), 1),
                 FormatDouble(ensemble.maintenance_hours.stddev(), 1)});
  spread.AddRow({"data credits spent", FormatDouble(ensemble.credits_spent.mean(), 0),
                 FormatDouble(ensemble.credits_spent.stddev(), 0)});
  spread.Print(std::cout);

  // --- The humans (§4.5) ------------------------------------------------
  std::cout << "\nExperimenter succession over 50 years (20 sampled careers):\n";
  SuccessionParams succ;
  SummaryStats handovers;
  SummaryStats knowledge_with;
  SummaryStats knowledge_without;
  RandomStream rng(5);
  for (int i = 0; i < 20; ++i) {
    const auto with = SimulateSuccession(succ, SimTime::Years(50), rng.Derive(i));
    SuccessionParams no_diary = succ;
    no_diary.diary_maintained = false;
    const auto without = SimulateSuccession(no_diary, SimTime::Years(50), rng.Derive(i));
    handovers.Add(with.handovers);
    knowledge_with.Add(with.final_knowledge);
    knowledge_without.Add(without.final_knowledge);
  }
  Table humans({"quantity", "value"});
  humans.AddRow({"expected handovers (formula)",
                 FormatDouble(ExpectedHandovers(succ, SimTime::Years(50)), 1)});
  humans.AddRow({"mean handovers (simulated)", FormatDouble(handovers.mean(), 1)});
  humans.AddRow({"final knowledge WITH living diary",
                 FormatPercent(knowledge_with.mean())});
  humans.AddRow({"final knowledge WITHOUT diary", FormatPercent(knowledge_without.mean())});
  humans.Print(std::cout);
  std::cout << "The diary the paper commits to (SS4.5) is what keeps operational\n"
               "knowledge above water across the custodian handovers a 50-year\n"
               "experiment guarantees.\n";
  return 0;
}
