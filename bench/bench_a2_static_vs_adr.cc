// A2 — ablation: what does transmit-only cost at the PHY? A receive-capable
// LoRaWAN device lets ADR walk it down to the fastest workable data rate; a
// transmit-only device (paper §4.1) must be provisioned with a static SF
// sized for worst-case fade, paying airtime, energy, and collision
// footprint for its entire life.

#include <iostream>

#include "src/radio/lora.h"
#include "src/radio/lorawan.h"
#include "src/radio/medium.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;
  std::cout << "=== A2: static-SF (transmit-only) vs ADR (serviceable) ===\n\n";

  const uint32_t payload = 12;
  std::cout << "Link: expected SNR at the gateway, device plans for 12 dB of fade\n"
               "margin (static) or lets the network server adapt (ADR, 10 dB\n"
               "installation margin).\n\n";

  Table t({"expected SNR", "static SF", "ADR SF", "static airtime", "ADR airtime",
           "TX energy ratio"});
  for (double snr : {12.0, 6.0, 0.0, -6.0, -12.0}) {
    const LoraSf static_sf = StaticSfForMargin(snr, 12.0);
    AdrInput in;
    in.current_sf = LoraSf::kSf12;
    in.best_snr_db = snr;
    const LoraSf adr_sf = ComputeAdr(in).sf;
    LoraConfig sc;
    sc.sf = static_sf;
    LoraConfig ac;
    ac.sf = adr_sf;
    const double e_static = LoraPhy::TxEnergyJoules(sc, 14.0, payload);
    const double e_adr = LoraPhy::TxEnergyJoules(ac, 14.0, payload);
    t.AddRow({FormatDouble(snr, 0) + " dB", "SF" + std::to_string(static_cast<int>(static_sf)),
              "SF" + std::to_string(static_cast<int>(adr_sf)),
              FormatDouble(LoraPhy::Airtime(sc, payload).ToSeconds() * 1000, 1) + " ms",
              FormatDouble(LoraPhy::Airtime(ac, payload).ToSeconds() * 1000, 1) + " ms",
              FormatDouble(e_static / e_adr, 2) + "x"});
  }
  t.Print(std::cout);

  // Collision footprint: longer frames widen the ALOHA vulnerable window.
  std::cout << "\nFleet effect (1,000 devices @ 1 pkt/h sharing a channel):\n";
  Table fleet({"fleet data rate", "airtime/frame", "ALOHA delivery probability"});
  const double rate_hz = 1000.0 / 3600.0;
  for (LoraSf sf : {LoraSf::kSf7, LoraSf::kSf9, LoraSf::kSf11, LoraSf::kSf12}) {
    LoraConfig cfg;
    cfg.sf = sf;
    const SimTime airtime = LoraPhy::Airtime(cfg, payload);
    fleet.AddRow({"SF" + std::to_string(static_cast<int>(sf)),
                  FormatDouble(airtime.ToSeconds() * 1000, 1) + " ms",
                  FormatPercent(AlohaModel::SuccessProbability(rate_hz, airtime))});
  }
  fleet.Print(std::cout);

  std::cout << "\nShape: the transmit-only design (the paper's choice for minimal\n"
               "attack surface and no gateway dependence) pays a fixed SF penalty —\n"
               "more energy per frame and more collisions at fleet scale — in\n"
               "exchange for never needing a downlink in its decades of service.\n";
  return 0;
}
