// C3 — paper §2: Seoul's smart waste deployment "reduced overflow of trash
// bins ... by 66% and cost of waste collection by 83%". The scenario
// compares a fixed collection route against sensor-driven dispatch over
// the same heterogeneous bin population.

#include <iostream>

#include "src/city/waste.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;
  std::cout << "=== C3: Seoul smart waste collection (paper SS2) ===\n\n";

  WasteScenarioParams params;
  params.bin_count = 2000;
  const auto cmp = SimulateWasteScenario(params, RandomStream(2024));

  Table t({"policy", "truck visits/yr", "overflow events", "overflow bin-days", "cost"});
  t.AddRow({"fixed route (every " + FormatDouble(params.route_period_days, 1) + " d)",
            FormatCount(cmp.scheduled.truck_visits), FormatCount(cmp.scheduled.overflow_events),
            FormatDouble(cmp.scheduled.overflow_bin_days, 0), FormatUsd(cmp.scheduled.cost_usd)});
  t.AddRow({"sensor-driven dispatch", FormatCount(cmp.sensor_driven.truck_visits),
            FormatCount(cmp.sensor_driven.overflow_events),
            FormatDouble(cmp.sensor_driven.overflow_bin_days, 0),
            FormatUsd(cmp.sensor_driven.cost_usd)});
  t.Print(std::cout);

  std::cout << "\n";
  Table shape({"quantity", "paper (Seoul)", "measured"});
  shape.AddRow({"overflow reduction", "66%", FormatPercent(cmp.OverflowReduction())});
  shape.AddRow({"collection cost reduction", "83%", FormatPercent(cmp.CostReduction())});
  shape.Print(std::cout);

  std::cout << "\nSensitivity to dispatch latency (smart policy):\n";
  Table sens({"dispatch latency", "overflow reduction", "cost reduction"});
  for (double dispatch : {0.1, 0.3, 0.6, 1.0}) {
    WasteScenarioParams p = params;
    p.dispatch_days = dispatch;
    const auto c = SimulateWasteScenario(p, RandomStream(2024));
    sens.AddRow({FormatDouble(dispatch, 1) + " d", FormatPercent(c.OverflowReduction()),
                 FormatPercent(c.CostReduction())});
  }
  sens.Print(std::cout);
  return 0;
}
