// E2 — paper §1/§3.4: the Ship-of-Theseus century. A 5,000-site municipal
// fleet whose units never individually reach 100 years, maintained only
// through staggered geographic batch projects, holds high aggregate
// availability for a century.

#include <iostream>

#include "src/core/theseus.h"
#include "src/econ/replacement_planning.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;
  std::cout << "=== E2: Ship-of-Theseus century scenario (paper SS1, SS3.4) ===\n\n";

  CenturyConfig cfg;
  cfg.seed = 7;
  cfg.fleet_size = 5000;
  cfg.horizon = SimTime::Years(100);
  cfg.batch.zone_count = 16;
  cfg.batch.cycle_period = SimTime::Years(8);  // Repave cadence.

  const auto harvesting = RunCenturyScenario(cfg);
  CenturyConfig battery_cfg = cfg;
  battery_cfg.device_class = DeviceClassKind::kBatteryPowered;
  const auto battery = RunCenturyScenario(battery_cfg);

  Table t({"fleet", "mean availability (100 y)", "worst year", "failures", "units deployed",
           "median unit life"});
  auto row = [&](const std::string& name, const CenturyReport& r) {
    t.AddRow({name, FormatPercent(r.mean_availability, 2),
              FormatPercent(r.min_yearly_availability, 1), FormatCount(r.total_failures),
              FormatCount(r.units_deployed),
              r.unit_survival.MedianSurvival() ? r.unit_survival.MedianSurvival()->ToString()
                                               : std::string("-")});
  };
  row("energy-harvesting units", harvesting);
  row("battery-powered units", battery);
  t.Print(std::cout);

  std::cout << "\nNo individual unit is century-scale (max generations at one site: "
            << FormatDouble(harvesting.max_unit_generations, 0)
            << "), yet the *system* is: the paper's pipelined-lifetimes claim.\n";

  std::cout << "\nAvailability by decade (harvesting fleet):\n";
  Table decades({"decade", "mean availability"});
  for (int d = 0; d < 10; ++d) {
    double sum = 0.0;
    for (int y = 0; y < 10; ++y) {
      sum += harvesting.yearly_availability[d * 10 + y];
    }
    decades.AddRow({std::to_string(d * 10) + "s", FormatPercent(sum / 10.0, 1)});
  }
  decades.Print(std::cout);

  std::cout << "\nAblation: batch-project cadence (harvesting fleet).\n";
  Table cadence({"zone revisit cycle", "mean availability", "replacements"});
  for (double years : {4.0, 8.0, 16.0}) {
    CenturyConfig c = cfg;
    c.batch.cycle_period = SimTime::Years(years);
    const auto r = RunCenturyScenario(c);
    cadence.AddRow({FormatDouble(years, 0) + " y", FormatPercent(r.mean_availability, 2),
                    FormatCount(r.total_replacements)});
  }
  cadence.Print(std::cout);

  std::cout << "\nAblation: proactive refresh during batch visits.\n";
  Table refresh({"policy", "mean availability", "failures in field", "units deployed"});
  for (double age : {0.0, 10.0, 20.0}) {
    CenturyConfig c = cfg;
    c.proactive_refresh_age = age > 0 ? SimTime::Years(age) : SimTime();
    const auto r = RunCenturyScenario(c);
    refresh.AddRow({age > 0 ? "refresh units older than " + FormatDouble(age, 0) + " y"
                            : "reactive only",
                    FormatPercent(r.mean_availability, 2), FormatCount(r.total_failures),
                    FormatCount(r.units_deployed)});
  }
  refresh.Print(std::cout);

  // The living-study loop (§4.5): fit the simulated fleet's observed unit
  // lifetimes, then forecast the maintenance regime analytically and check
  // it against the simulation itself.
  const auto fit = FitWeibull(harvesting.unit_survival);
  if (fit.has_value()) {
    const auto forecast = ForecastReplacements(*fit, cfg.fleet_size, cfg.batch.zone_count,
                                               cfg.batch.cycle_period);
    std::cout << "\nField-data forecast (Weibull MLE on observed unit lives: k="
              << FormatDouble(fit->shape, 2) << ", eta=" << FormatDouble(fit->scale_years, 1)
              << " y):\n";
    Table fc({"quantity", "forecast", "simulated"});
    fc.AddRow({"steady failures/year", FormatDouble(forecast.steady_failures_per_year, 0),
               FormatDouble(harvesting.total_failures / 100.0, 0)});
    fc.AddRow({"availability", FormatPercent(SteadyStateAvailability(*fit, cfg.batch.cycle_period)),
               FormatPercent(harvesting.mean_availability)});
    fc.AddRow({"replacements per zone visit",
               FormatDouble(forecast.replacements_per_zone_visit, 1), "-"});
    fc.AddRow({"annual labor + hardware",
               FormatUsd(forecast.annual_labor_cost_usd + forecast.annual_hardware_cost_usd),
               "-"});
    fc.Print(std::cout);
    std::cout << "The diary's data is enough to budget the next half-century of\n"
                 "maintenance — the operational payoff of the living study.\n";
  }
  return 0;
}
