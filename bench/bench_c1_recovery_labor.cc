// C1 — paper §1: "over 320,000 utility poles, 61,315 intersections, and
// 210,000 streetlights ... at a very generous 20 minute total replacement
// (including travel) time per device, recovering the deployment would
// require nearly 200,000 person-hours of labor alone."

#include <iostream>

#include "src/city/city_model.h"
#include "src/econ/labor.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;
  std::cout << "=== C1: city-scale recovery labor (paper SS1) ===\n\n";

  const CityAssets la = LosAngelesAssets();
  TruckRollModel labor;  // 20 min/device default, per the paper.

  Table assets({"asset class", "count"});
  assets.AddRow({"utility poles", FormatCount(la.utility_poles)});
  assets.AddRow({"intersections", FormatCount(la.intersections)});
  assets.AddRow({"streetlights", FormatCount(la.streetlights)});
  assets.AddRow({"total sensor sites", FormatCount(la.TotalSensorSites())});
  assets.Print(std::cout);

  const double hours = labor.PersonHours(la.TotalSensorSites());
  std::cout << "\n";
  Table result({"quantity", "paper", "measured"});
  result.AddRow({"person-hours to recover deployment", "~200,000",
                 FormatCount(static_cast<uint64_t>(hours))});
  result.AddRow({"minutes per device", "20", FormatDouble(labor.params().minutes_per_device, 0)});
  result.Print(std::cout);

  std::cout << "\nDerived operational framing:\n";
  Table derived({"crews working in parallel", "calendar time", "labor cost"});
  for (uint32_t crews : {10u, 50u, 200u}) {
    derived.AddRow({FormatCount(crews),
                    labor.CalendarTime(la.TotalSensorSites(), crews).ToString(),
                    FormatUsd(labor.LaborCostUsd(la.TotalSensorSites()))});
  }
  derived.Print(std::cout);

  std::cout << "\nAttention budget (paper SS3.1: hours per device falls with scale):\n";
  Table attention({"fleet size", "hours/device/year with 10 staff"});
  for (uint64_t fleet : {1000ULL, 10000ULL, 100000ULL, 591315ULL}) {
    attention.AddRow(
        {FormatCount(fleet), FormatDouble(AttentionHoursPerDeviceYear(10, fleet), 3)});
  }
  attention.Print(std::cout);
  return 0;
}
