// C9 — paper §2: "the cost for deployment for even a few thousand sensors
// can range into millions of dollars. Right now ... the numbers of nodes
// usually range from 500-5000. For these modest numbers of devices,
// operators predict lifetimes of 2-7 years until the system is upgraded."

#include <iostream>

#include "src/econ/deployment_cost.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;
  std::cout << "=== C9: deployment economics today vs century-scale (paper SS2) ===\n\n";

  Table t({"deployment", "nodes", "life", "capex", "opex (life)", "total", "$/node/yr"});
  auto row = [&](const DeploymentCostParams& params) {
    const auto c = ComputeDeploymentCost(params);
    t.AddRow({params.name, FormatCount(params.node_count),
              FormatDouble(params.system_life_years, 0) + " y", FormatUsd(c.capex_usd),
              FormatUsd(c.opex_usd), FormatUsd(c.total_usd),
              FormatUsd(c.per_node_per_year_usd)});
  };
  row(ModestPilot());
  row(SanDiegoStreetlights());
  row(CenturyScaleNode(3300));
  row(CenturyScaleNode(100000));
  row(CenturyScaleNode(591315));  // LA-scale sensor sites.
  t.Print(std::cout);

  const auto sd = ComputeDeploymentCost(SanDiegoStreetlights());
  std::cout << "\nPaper shape checks:\n"
            << "  - 'few thousand sensors ... millions of dollars': San Diego-like\n"
            << "    3,300-node deployment totals " << FormatUsd(sd.total_usd) << " over its "
            << "5-year life.\n"
            << "  - replace-cycle economics are dominated by the short life: the\n"
            << "    same city at century-scale node design costs "
            << FormatUsd(ComputeDeploymentCost(CenturyScaleNode(3300)).per_node_per_year_usd)
            << "/node-year vs " << FormatUsd(sd.per_node_per_year_usd) << "/node-year today.\n"
            << "  - scale amortizes fixed staff: at LA scale the harvesting fleet\n"
            << "    runs at "
            << FormatUsd(ComputeDeploymentCost(CenturyScaleNode(591315)).per_node_per_year_usd)
            << "/node-year.\n";
  return 0;
}
