// Snapshot engine at scale: how long does it take to checkpoint and
// restore a million-device district, and how big is the file? Runs the
// 50-year district scenario with a checkpoint at year 25, then resumes a
// second run from that checkpoint, and verifies the resumed report matches
// the straight run bit for bit — the restore-parity contract at full scale.
//
// Emits BENCH_snapshot.json; tools/bench_smoke.sh guards the save/restore
// throughput against >20% regressions and holds both wall times under the
// O(seconds) acceptance ceiling.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/district.h"
#include "src/telemetry/bench_record.h"
#include "src/telemetry/report.h"

namespace centsim {
namespace {

DistrictConfig ConfigFor(uint32_t devices) {
  DistrictConfig cfg;
  cfg.seed = 20260806;
  cfg.device_count = devices;
  // Constant density (160 sites per km2), matching bench_district_scale.
  cfg.area_km2 = static_cast<double>(devices) / 160.0;
  cfg.zone_grid = 4;
  cfg.horizon = SimTime::Years(50);
  return cfg;
}

bool ReportsMatch(const DistrictReport& a, const DistrictReport& b, std::string* why) {
  auto fail = [&](const std::string& field) {
    *why = field;
    return false;
  };
  if (a.gateway_count != b.gateway_count) return fail("gateway_count");
  if (a.initial_coverage != b.initial_coverage) return fail("initial_coverage");
  if (a.mean_device_availability != b.mean_device_availability)
    return fail("mean_device_availability");
  if (a.mean_service_availability != b.mean_service_availability)
    return fail("mean_service_availability");
  if (a.min_yearly_service != b.min_yearly_service) return fail("min_yearly_service");
  if (a.device_failures != b.device_failures) return fail("device_failures");
  if (a.device_replacements != b.device_replacements) return fail("device_replacements");
  if (a.gateway_failures != b.gateway_failures) return fail("gateway_failures");
  if (a.gateway_repairs != b.gateway_repairs) return fail("gateway_repairs");
  if (a.yearly_service != b.yearly_service) return fail("yearly_service");
  return true;
}

std::string SizeTag(uint32_t devices) {
  if (devices % 1000000 == 0) return std::to_string(devices / 1000000) + "m";
  return std::to_string(devices / 1000) + "k";
}

}  // namespace
}  // namespace centsim

int main(int argc, char** argv) {
  using namespace centsim;
  using Clock = std::chrono::steady_clock;
  namespace fs = std::filesystem;
  std::cout << "=== snapshot: checkpoint/restore at scale ===\n\n";

  uint32_t devices = 1000000;
  if (argc > 1) {
    devices = static_cast<uint32_t>(std::atol(argv[1]));
  }
  const std::string tag = SizeTag(devices);
  const fs::path dir = fs::temp_directory_path() / "centsim_bench_snapshot";
  fs::remove_all(dir);
  fs::create_directories(dir);

  BenchReport bench("snapshot");
  Table t({"phase", "wall s", "sim years", "snapshot MB", "B/device"});

  // Straight run with a mid-run checkpoint: the parity reference, and the
  // save-cost measurement (checkpointing rides inside it).
  DistrictConfig cfg = ConfigFor(devices);
  cfg.snapshot.checkpoint_every = SimTime::Years(25);
  cfg.snapshot.checkpoint_dir = dir.string();
  auto start = Clock::now();
  const DistrictReport straight = RunDistrictScenario(cfg);
  const double straight_total = std::chrono::duration<double>(Clock::now() - start).count();
  if (straight.checkpoints_written != 1 || straight.last_checkpoint_path.empty()) {
    std::cerr << "expected exactly one checkpoint, got " << straight.checkpoints_written << "\n";
    return 1;
  }
  const double snapshot_mb = static_cast<double>(straight.last_checkpoint_bytes) / (1024.0 * 1024.0);
  const double bytes_per_device =
      static_cast<double>(straight.last_checkpoint_bytes) / devices;
  t.AddRow({"run + save @y25", FormatDouble(straight_total, 2), "50",
            FormatDouble(snapshot_mb, 1), FormatDouble(bytes_per_device, 1)});

  // Resume from the year-25 checkpoint and finish the remaining 25 years.
  DistrictConfig resume_cfg = ConfigFor(devices);
  resume_cfg.snapshot.resume_from = straight.last_checkpoint_path;
  start = Clock::now();
  const DistrictReport resumed = RunDistrictScenario(resume_cfg);
  const double resume_total = std::chrono::duration<double>(Clock::now() - start).count();
  t.AddRow({"restore + run y25-50", FormatDouble(resume_total, 2), "25",
            FormatDouble(snapshot_mb, 1), FormatDouble(bytes_per_device, 1)});

  std::string field;
  if (!ReportsMatch(straight, resumed, &field)) {
    std::cerr << "PARITY FAILURE at " << devices << " devices: field " << field
              << " differs between the straight and resumed runs\n";
    return 1;
  }
  std::cout << "parity " << tag << ": resumed report matches the straight run\n\n";
  t.Print(std::cout);

  std::cout << "\nsave: " << FormatDouble(straight.save_seconds, 2) << "s for "
            << FormatDouble(snapshot_mb, 1) << " MB ("
            << FormatDouble(bytes_per_device, 1) << " B/device); restore: "
            << FormatDouble(resumed.restore_seconds, 2) << "s\n";

  bench.Add("save_seconds_" + tag, straight.save_seconds, "s");
  bench.Add("restore_seconds_" + tag, resumed.restore_seconds, "s");
  bench.Add("save_devices_per_sec_" + tag,
            devices / std::max(straight.save_seconds, 1e-9), "1/s");
  bench.Add("restore_devices_per_sec_" + tag,
            devices / std::max(resumed.restore_seconds, 1e-9), "1/s");
  bench.Add("snapshot_bytes_per_device_" + tag, bytes_per_device, "B");
  bench.Add("snapshot_mb_" + tag, snapshot_mb, "MB");
  bench.Add("resume_total_seconds_" + tag, resume_total, "s");
  bench.Add("parity_checks_passed", 1.0, "count");

  fs::remove_all(dir);
  const std::string path = bench.WriteFile();
  if (!path.empty()) {
    std::cout << "Wrote " << path << "\n";
  }
  return 0;
}
