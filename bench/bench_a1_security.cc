// A1 — security ablation (paper §4.1, §4.4): (a) longitudinal trust of
// frozen-crypto transmit-only devices vs re-keyable ones; (b) compromise
// probability of the three gateway software postures the paper discusses;
// (c) the cost of the authentication machinery itself on the wire.

#include <iostream>

#include "src/security/patching.h"
#include "src/security/report_auth.h"
#include "src/security/signing.h"
#include "src/security/trust.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;
  std::cout << "=== A1: security over decades (paper SS4.1, SS4.4) ===\n\n";

  // --- Longitudinal trust of transmit-only devices ---------------------
  TrustModelParams frozen;  // Transmit-only: can never re-key.
  TrustModelParams rotated = frozen;
  rotated.rekey_period_years = 5.0;  // A serviceable, receive-capable peer.
  LongitudinalTrust tx_only(frozen);
  LongitudinalTrust serviceable(rotated);

  Table trust({"year", "frozen-key trust", "re-keyed trust", "security bits left"});
  for (double y : {0.0, 10.0, 20.0, 30.0, 40.0, 50.0}) {
    trust.AddRow({FormatDouble(y, 0), FormatPercent(tx_only.TrustAt(y)),
                  FormatPercent(serviceable.TrustAt(y)),
                  FormatDouble(tx_only.SecurityBitsAt(y), 1)});
  }
  trust.Print(std::cout);
  std::cout << "Frozen-crypto trust horizon (50% threshold): "
            << FormatDouble(tx_only.TrustHorizonYears(0.5), 1)
            << " y; algorithm horizon: " << FormatDouble(tx_only.AlgorithmHorizonYears(), 1)
            << " y.\nThe paper's 'limited longitudinal trust' made quantitative: even\n"
               "with sound keys, plan to stop *trusting* (not replacing) transmit-\n"
               "only sensors after a few decades, or wrap them in gateway-side\n"
               "attestation that can evolve.\n";

  // --- Gateway software postures ---------------------------------------
  std::cout << "\nGateway compromise probability by posture (Monte-Carlo, 500 runs):\n";
  Table postures({"posture", "P(compromised by 10y)", "by 25y", "by 50y"});
  struct Row {
    const char* name;
    ExposureParams params;
  };
  const Row rows[] = {
      {"firewalled, transmit-only (unattended)", FirewalledUnidirectionalGateway()},
      {"public-facing, maintained (14-day patch)", MaintainedPublicGateway()},
      {"public-facing, unattended", UnattendedPublicGateway()},
  };
  for (const auto& r : rows) {
    postures.AddRow(
        {r.name,
         FormatPercent(CompromiseProbability(r.params, SimTime::Years(10), 500, RandomStream(1))),
         FormatPercent(CompromiseProbability(r.params, SimTime::Years(25), 500, RandomStream(2))),
         FormatPercent(
             CompromiseProbability(r.params, SimTime::Years(50), 500, RandomStream(3)))});
  }
  postures.Print(std::cout);
  std::cout << "Shape: the aggressively firewalled unidirectional gateway is the\n"
               "only posture that tolerates neglect — the paper's §4.4 design.\n";

  // --- Wire cost of authentication -------------------------------------
  SipHashKey secret{};
  const SipHashKey key = DeriveDeviceKey(secret, 1);
  SensorReading reading;
  const uint32_t tag = ComputeReadingTag(key, 1, 1, reading);
  std::cout << "\nAuthentication wire cost: 12-byte reading + " << kTagBytes
            << "-byte tag = " << 12 + kTagBytes << " bytes, still one Helium data credit"
            << " (24-byte unit). Tag sample: 0x" << std::hex << tag << std::dec << "\n";
  return 0;
}
