// A3 — ablation on the energy foundation (paper §1, refs [20, 21]):
// "Ambient Batteries find stable, battery-like energy sources". Rank the
// harvesters by *dependability*, not peak power, and size the bridging
// storage each needs; then evaluate burn-in screening for unreachable
// devices.

#include <iostream>
#include <memory>

#include "src/energy/harvester.h"
#include "src/energy/harvester_stats.h"
#include "src/reliability/burn_in.h"
#include "src/reliability/component.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;
  std::cout << "=== A3: energy-source dependability + burn-in (paper SS1) ===\n\n";

  const double load_w = 50e-6;  // 50 uW continuous-equivalent node load.
  std::cout << "Assessed over 60 days against a " << load_w * 1e6 << " uW load floor:\n\n";

  std::vector<std::unique_ptr<Harvester>> harvesters;
  {
    SolarHarvester::Params sp;
    sp.peak_power_w = 0.010;
    harvesters.push_back(std::make_unique<SolarHarvester>(sp));
  }
  harvesters.push_back(std::make_unique<CorrosionHarvester>(CorrosionHarvester::Params{}));
  harvesters.push_back(std::make_unique<ThermalHarvester>(ThermalHarvester::Params{}));
  harvesters.push_back(std::make_unique<VibrationHarvester>(VibrationHarvester::Params{}));

  Table t({"harvester", "mean power", "capacity factor", "time above load", "worst drought",
           "bridging storage"});
  for (const auto& h : harvesters) {
    const auto r =
        AssessHarvester(*h, SimTime(), SimTime::Days(60), SimTime::Minutes(15), load_w);
    t.AddRow({h->name(), FormatDouble(r.mean_power_w * 1e6, 1) + " uW",
              FormatPercent(r.capacity_factor), FormatPercent(r.fraction_above_threshold),
              r.longest_drought.ToString(), FormatDouble(r.bridging_storage_j, 3) + " J"});
  }
  t.Print(std::cout);
  std::cout << "\nShape (the refs' thesis): the rebar-corrosion 'ambient battery' has\n"
               "the lowest mean power but a ~100% capacity factor — it needs\n"
               "essentially no bridging storage, removing the component (the\n"
               "battery) that caps device lifetime.\n";

  // --- Burn-in for unreachable devices ---------------------------------
  std::cout << "\nBurn-in screening for devices that are unreachable once deployed\n"
               "(10-year field window, gateway-class bathtub hazard):\n";
  BathtubHazard::Params bp;
  bp.infant_shape = 0.45;
  bp.infant_scale = SimTime::Years(40);
  bp.random_mttf = SimTime::Years(120);
  bp.wearout_shape = 4.0;
  bp.wearout_scale = SimTime::Years(22);
  BathtubHazard hazard(bp);

  Table burn({"burn-in", "bench fallout", "field failures (10y)", "reduction",
              "$ per prevented failure"});
  for (double days : {0.0, 7.0, 30.0, 90.0}) {
    BurnInPolicy policy;
    policy.duration = SimTime::Days(days);
    const auto a = AssessBurnIn(hazard, policy, SimTime::Years(10));
    burn.AddRow({days == 0 ? "none" : FormatDouble(days, 0) + " d",
                 FormatPercent(a.bench_failure_fraction),
                 FormatPercent(days == 0 ? a.field_failure_without : a.field_failure_with),
                 FormatPercent(a.relative_reduction),
                 days == 0 ? "-" : FormatUsd(a.cost_per_prevented_failure_usd)});
  }
  burn.Print(std::cout);
  std::cout << "\nBurn-in trades cheap bench-weeks for expensive truck rolls; it only\n"
               "pays where the hazard has an infant-mortality component (it is\n"
               "useless for memoryless failures and harmful for pure wear-out).\n";
  return 0;
}
