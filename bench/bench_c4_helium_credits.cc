// C4 — paper §4.4: "For one device to send one (up to 24-byte) packet
// every one hour for 50 years will cost 438,000 data credits. We can
// provision a dedicated wallet today with a conservative 500,000 data
// credits for just $5 USD."

#include <iostream>

#include "src/econ/data_credits.h"
#include "src/radio/lora.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;
  std::cout << "=== C4: Helium data-credit economics (paper SS4.4) ===\n\n";

  const uint64_t needed = CreditsForSchedule(1.0, 50.0, 24);
  const uint64_t wallet = UsdToCredits(5.0);

  Table t({"quantity", "paper", "measured"});
  t.AddRow({"credits for 1 pkt/h x 50 y", "438,000", FormatCount(needed)});
  t.AddRow({"credits for $5", "500,000", FormatCount(wallet)});
  t.AddRow({"margin after 50 y", "-", FormatCount(wallet - needed)});
  t.AddRow({"50-y connectivity cost/device", "$5 prepaid", FormatUsd(CreditsToUsd(needed))});
  t.Print(std::cout);

  std::cout << "\nWallet exhaustion horizon by reporting cadence ($5 wallet):\n";
  Table horizon({"cadence", "credits/year", "wallet lasts"});
  for (double per_hour : {0.25, 0.5, 1.0, 2.0, 6.0}) {
    DataCreditWallet w(wallet);
    horizon.AddRow({FormatDouble(per_hour, 2) + " pkt/h",
                    FormatCount(CreditsForSchedule(per_hour, 1.0, 24)),
                    w.ProjectedExhaustion(per_hour, 24).ToString()});
  }
  horizon.Print(std::cout);

  std::cout << "\nPayload-size cliff (credits are 24-byte units):\n";
  Table cliff({"payload", "DC/packet", "50-y credits", "50-y cost"});
  for (uint32_t bytes : {12u, 24u, 25u, 48u, 96u}) {
    const uint64_t total = CreditsForSchedule(1.0, 50.0, bytes);
    cliff.AddRow({std::to_string(bytes) + " B", FormatCount(CreditsForPacket(bytes)),
                  FormatCount(total), FormatUsd(CreditsToUsd(total))});
  }
  cliff.Print(std::cout);

  std::cout << "\nRegulatory sanity: hourly SF9 uplinks use "
            << FormatPercent(LoraPhy::Airtime(LoraConfig{}, 24).ToSeconds() * 24 / 864.0)
            << " of the 1% duty-cycle budget.\n";
  return 0;
}
