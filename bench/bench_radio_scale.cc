// Radio medium at scale: how the grid-bucketed contention resolver holds
// up as the transmitter population grows from 10k to 1M at constant
// density. The all-pairs approach is O(tx x gateways); the CSR cell grid
// makes the hearing pass O(tx x gateways-per-neighborhood), which at
// constant density is O(tx). The gate in tools/bench_smoke.sh checks the
// fitted log-log scaling exponent stays <= 1.2 (near-linear) and that the
// grid path still matches the brute-force oracle bit for bit at a size
// where the oracle is affordable.
//
// Positions come straight out of DeviceFleet's struct-of-arrays columns —
// the same x/y the simulation owns — so the bench measures the batch
// airtime/link-budget path as production wires it, not a toy copy.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/fleet.h"
#include "src/radio/contention.h"
#include "src/sim/simulation.h"
#include "src/telemetry/bench_record.h"
#include "src/telemetry/report.h"

namespace centsim {
namespace {

using Clock = std::chrono::steady_clock;

constexpr double kTxPerKm2 = 1000.0;   // Constant density across sizes.
constexpr double kGatewayPerKm2 = 1.0; // One gateway per square km.

struct Population {
  Simulation sim;
  DeviceFleet fleet;
  std::vector<double> gw_x, gw_y;
  std::vector<double> power;
  std::vector<uint8_t> group;

  explicit Population(uint32_t n) : sim(4242), fleet(sim) {
    const double area_km2 = static_cast<double>(n) / kTxPerKm2;
    const double extent_m = std::sqrt(area_km2) * 1000.0;
    RandomStream rng(sim.seed());

    // Two interned device classes (SF9 / SF12) so the group column is
    // heterogeneous the way a mixed-rate deployment is.
    LoraConfig sf9;
    sf9.sf = LoraSf::kSf9;
    LoraConfig sf12;
    sf12.sf = LoraSf::kSf12;
    DeviceClassSpec spec;
    spec.name = "bench-sf9";
    spec.tech = RadioTech::kLoRa;
    spec.lora = sf9;
    const uint32_t cls_sf9 = fleet.InternClass(spec);
    spec.name = "bench-sf12";
    spec.lora = sf12;
    const uint32_t cls_sf12 = fleet.InternClass(spec);

    const HarvesterModel harvester = HarvesterModel::Constant(0.05);
    power.reserve(n);
    group.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      const bool fast = rng.NextBool(0.8);
      fleet.Add(fast ? cls_sf9 : cls_sf12, rng.Uniform(0.0, extent_m),
                rng.Uniform(0.0, extent_m), /*zone=*/0, harvester);
      power.push_back(14.0);
      group.push_back(fast ? 0 : 1);
    }

    const auto n_gw = static_cast<size_t>(std::max(1.0, area_km2 * kGatewayPerKm2));
    for (size_t g = 0; g < n_gw; ++g) {
      gw_x.push_back(rng.Uniform(0.0, extent_m));
      gw_y.push_back(rng.Uniform(0.0, extent_m));
    }
  }

  ContentionResolver::TxColumns Columns() const {
    ContentionResolver::TxColumns tx;
    tx.x = fleet.x_data();
    tx.y = fleet.y_data();
    tx.tx_power_dbm = power.data();
    tx.group = group.data();
    tx.count = fleet.size();
    return tx;
  }
};

ContentionParams ParamsFor(bool use_grid) {
  ContentionParams p;
  LoraConfig sf9;
  sf9.sf = LoraSf::kSf9;
  LoraConfig sf12;
  sf12.sf = LoraSf::kSf12;
  p.groups = {PhyModel::ForLora(sf9), PhyModel::ForLora(sf12)};
  p.range_m = 2000.0;
  p.seed = 4242;
  p.use_grid = use_grid;
  return p;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const size_t mid = v.size() / 2;
  return v.size() % 2 != 0 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

std::string SizeTag(uint32_t n) {
  if (n % 1000000 == 0) return std::to_string(n / 1000000) + "m";
  return std::to_string(n / 1000) + "k";
}

}  // namespace
}  // namespace centsim

int main(int argc, char** argv) {
  using namespace centsim;
  std::cout << "=== Radio medium: grid-bucketed contention at scale ===\n\n";

  std::vector<uint32_t> sizes = {10000, 100000, 1000000};
  if (argc > 1) {
    sizes.clear();
    for (int i = 1; i < argc; ++i) {
      sizes.push_back(static_cast<uint32_t>(std::atol(argv[i])));
    }
  }

  BenchReport bench("radio_scale");
  Table t({"transmitters", "gateways", "s/round", "tx/s", "delivered"});

  std::vector<double> log_n, log_wall;
  uint32_t parity_checks = 0;

  for (const uint32_t n : sizes) {
    const Population pop(n);
    ContentionResolver resolver(ParamsFor(/*use_grid=*/true), pop.gw_x, pop.gw_y);
    const std::string tag = SizeTag(n);

    // Paired rounds, median wall: the per-round medians are what the
    // regression gate compares (same scheme as bench_district_scale).
    const int rounds = n >= 1000000 ? 3 : 5;
    std::vector<DeliveryReport> reports;
    std::vector<double> walls;
    uint64_t delivered = 0;
    for (int r = 0; r < rounds; ++r) {
      const auto start = Clock::now();
      resolver.Resolve(pop.Columns(), static_cast<uint32_t>(r), reports);
      walls.push_back(std::chrono::duration<double>(Clock::now() - start).count());
      if (r == 0) {
        for (const DeliveryReport& rep : reports) {
          delivered += rep.outcome == DeliveryOutcome::kDelivered ? 1 : 0;
        }
      }
    }
    const double wall = Median(walls);
    const double tx_per_sec = static_cast<double>(n) / std::max(wall, 1e-9);
    log_n.push_back(std::log(static_cast<double>(n)));
    log_wall.push_back(std::log(std::max(wall, 1e-9)));

    t.AddRow({FormatCount(n), FormatCount(pop.gw_x.size()), FormatDouble(wall, 4),
              FormatDouble(tx_per_sec, 0), FormatCount(delivered)});
    bench.Add("resolve_tx_per_sec_" + tag, tx_per_sec, "1/s");
    bench.Add("resolve_seconds_per_round_" + tag, wall, "s");
    bench.Add("delivered_round0_" + tag, static_cast<double>(delivered), "count");

    // Oracle parity at sizes where the all-pairs scan is affordable: the
    // grid must be an optimization, not a model change.
    if (n <= 10000) {
      ContentionResolver oracle(ParamsFor(/*use_grid=*/false), pop.gw_x, pop.gw_y);
      std::vector<DeliveryReport> want;
      oracle.Resolve(pop.Columns(), 0, want);
      resolver.Resolve(pop.Columns(), 0, reports);
      bool match = reports.size() == want.size();
      for (size_t i = 0; match && i < want.size(); ++i) {
        match = reports[i].outcome == want[i].outcome &&
                reports[i].gateway_id == want[i].gateway_id &&
                reports[i].rssi_dbm == want[i].rssi_dbm &&
                reports[i].witnesses == want[i].witnesses;
      }
      if (!match) {
        std::cerr << "PARITY FAILURE at " << n
                  << " transmitters: grid reports differ from all-pairs oracle\n";
        return 1;
      }
      ++parity_checks;
      std::cout << "parity " << tag << ": grid matches all-pairs oracle bit for bit\n";
    }
  }
  std::cout << "\n";
  t.Print(std::cout);

  // Least-squares slope of log(wall) on log(n): 1.0 is perfectly linear.
  double exponent = 0.0;
  if (log_n.size() >= 2) {
    const size_t k = log_n.size();
    double mx = 0.0, my = 0.0;
    for (size_t i = 0; i < k; ++i) {
      mx += log_n[i];
      my += log_wall[i];
    }
    mx /= static_cast<double>(k);
    my /= static_cast<double>(k);
    double num = 0.0, den = 0.0;
    for (size_t i = 0; i < k; ++i) {
      num += (log_n[i] - mx) * (log_wall[i] - my);
      den += (log_n[i] - mx) * (log_n[i] - mx);
    }
    exponent = den > 0.0 ? num / den : 0.0;
    std::cout << "\nscaling exponent (log wall vs log n): " << FormatDouble(exponent, 3)
              << "  (1.0 = linear, gate <= 1.2)\n";
  }
  bench.Add("scaling_exponent", exponent, "x");
  bench.Add("parity_checks_passed", static_cast<double>(parity_checks), "count");

  const std::string path = bench.WriteFile();
  if (!path.empty()) {
    std::cout << "\nWrote " << path << "\n";
  }
  return 0;
}
