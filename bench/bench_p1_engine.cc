// P1 — engine microbenchmarks (google-benchmark): event-queue throughput,
// RNG, hazard sampling, radio airtime math, energy integration, and the
// DESIGN.md ablation of lazy next-failure sampling vs per-tick hazard
// evaluation.
//
// The event-core rebuild (slot-indexed pool + EventFn inline callbacks +
// 4-ary heap) is benchmarked against `SeedScheduler`, a faithful replica
// of the pre-rebuild scheduler (std::function closures, std::priority_queue,
// unordered_map action table, unordered_set cancel set). Measuring the
// replica in the same binary gives before/after numbers from the same
// machine, same compiler, same run — no stale-baseline anecdotes.
//
// Besides the google-benchmark console tables, the binary measures
// before/after throughput, cancel-heavy and periodic-storm workloads, and
// steady-state allocations per event (via the src/sim/alloc_probe.h
// operator-new override linked into this binary), and writes everything to
// BENCH_p1_engine.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/energy/harvester.h"
#include "src/radio/lora.h"
#include "src/radio/phy_802154.h"
#include "src/reliability/component.h"
#include "src/reliability/hazard.h"
#include "src/sim/alloc_probe.h"
#include "src/sim/flight_recorder.h"
#include "src/sim/metrics.h"
#include "src/sim/profiler.h"
#include "src/sim/random.h"
#include "src/sim/scheduler.h"
#include "src/telemetry/bench_record.h"

namespace centsim {
namespace {

// Replica of the seed event core (commit 9ba657e src/sim/scheduler.*):
// heap of (time, id) entries, closures boxed in std::function and parked
// in an unordered_map, cancellation via an unordered_set. Every schedule
// pays a map insert (+ usually a closure heap allocation); every run pays
// a map find + erase.
class SeedScheduler {
 public:
  SimTime Now() const { return now_; }

  uint64_t ScheduleAt(SimTime at, std::function<void()> fn) {
    const uint64_t id = next_id_++;
    heap_.push(Entry{at, id});
    actions_.emplace(id, std::move(fn));
    return id;
  }
  uint64_t ScheduleAfter(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  bool Cancel(uint64_t id) {
    auto it = actions_.find(id);
    if (it == actions_.end()) {
      return false;
    }
    actions_.erase(it);
    cancelled_.insert(id);
    return true;
  }

  uint64_t RunUntil(SimTime horizon) {
    uint64_t ran = 0;
    while (true) {
      SkimCancelled();
      if (heap_.empty() || horizon < heap_.top().at) {
        break;
      }
      const Entry top = heap_.top();
      heap_.pop();
      now_ = top.at;
      auto it = actions_.find(top.id);
      std::function<void()> fn = std::move(it->second);
      actions_.erase(it);
      fn();
      ++ran;
    }
    if (now_ < horizon) {
      now_ = horizon;
    }
    return ran;
  }

 private:
  struct Entry {
    SimTime at;
    uint64_t id;
    bool operator>(const Entry& other) const {
      if (at != other.at) {
        return other.at < at;
      }
      return id > other.id;
    }
  };

  void SkimCancelled() {
    while (!heap_.empty()) {
      auto it = cancelled_.find(heap_.top().id);
      if (it == cancelled_.end()) {
        return;
      }
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  SimTime now_;
  uint64_t next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_set<uint64_t> cancelled_;
  std::unordered_map<uint64_t, std::function<void()>> actions_;
};

// Self-rescheduling workload functor shared by both schedulers: a 24-byte
// capture, comfortably inside EventFn's 48-byte inline budget and just
// over std::function's 16-byte one — exactly the closure shape the
// simulator's device/report/failure events have.
template <typename SchedT>
struct SelfTick {
  SchedT* sched;
  uint64_t* ticks;
  uint64_t limit;
  void operator()() const {
    if (++*ticks < limit) {
      sched->ScheduleAfter(SimTime::Micros(10), *this);
    }
  }
};

void BM_SchedulerThroughput(benchmark::State& state) {
  const int64_t batch = state.range(0);
  for (auto _ : state) {
    Scheduler sched;
    uint64_t sink = 0;
    for (int64_t i = 0; i < batch; ++i) {
      sched.ScheduleAt(SimTime::Micros(i % 1000), [&sink] { ++sink; });
    }
    sched.RunUntil(SimTime::Seconds(1));
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SchedulerThroughput)->Arg(1000)->Arg(100000);

void BM_SeedSchedulerThroughput(benchmark::State& state) {
  const int64_t batch = state.range(0);
  for (auto _ : state) {
    SeedScheduler sched;
    uint64_t sink = 0;
    for (int64_t i = 0; i < batch; ++i) {
      sched.ScheduleAt(SimTime::Micros(i % 1000), [&sink] { ++sink; });
    }
    sched.RunUntil(SimTime::Seconds(1));
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SeedSchedulerThroughput)->Arg(1000)->Arg(100000);

void BM_SchedulerSelfRescheduling(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler sched;
    uint64_t ticks = 0;
    sched.ScheduleAfter(SimTime::Micros(10), SelfTick<Scheduler>{&sched, &ticks, 100000});
    sched.RunUntil(SimTime::Seconds(10));
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SchedulerSelfRescheduling);

void BM_SeedSchedulerSelfRescheduling(benchmark::State& state) {
  for (auto _ : state) {
    SeedScheduler sched;
    uint64_t ticks = 0;
    sched.ScheduleAfter(SimTime::Micros(10), SelfTick<SeedScheduler>{&sched, &ticks, 100000});
    sched.RunUntil(SimTime::Seconds(10));
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SeedSchedulerSelfRescheduling);

// Same workload with the observability layer attached: a SchedulerProfiler
// sampling wall time 1-in-16 and a counter bumped per event. Comparing
// against BM_SchedulerSelfRescheduling bounds the profiling overhead.
void BM_SchedulerSelfReschedulingProfiled(benchmark::State& state) {
  struct ProfiledTick {
    Scheduler* sched;
    Counter* metric;
    uint64_t* ticks;
    void operator()() const {
      MetricInc(metric);
      if (++*ticks < 100000) {
        sched->ScheduleAfter(SimTime::Micros(10), *this, "bench.tick");
      }
    }
  };
  for (auto _ : state) {
    Scheduler sched;
    MetricsRegistry registry;
    SchedulerProfiler profiler;
    sched.SetProfiler(&profiler);
    uint64_t ticks = 0;
    sched.ScheduleAfter(SimTime::Micros(10),
                        ProfiledTick{&sched, registry.GetCounter("bench.ticks"), &ticks},
                        "bench.tick");
    sched.RunUntil(SimTime::Seconds(10));
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SchedulerSelfReschedulingProfiled);

// Cancel-heavy workload: every second event is cancelled before it can
// run (gateway repair timers, device watchdogs). The seed scheduler paid
// two hash-set operations per cancel; the event core pays one comparison
// and one lazy heap pop.
void BM_SchedulerCancelHeavy(benchmark::State& state) {
  const int64_t batch = state.range(0);
  std::vector<EventId> ids;
  ids.reserve(batch);
  for (auto _ : state) {
    Scheduler sched;
    uint64_t sink = 0;
    ids.clear();
    for (int64_t i = 0; i < batch; ++i) {
      ids.push_back(sched.ScheduleAt(SimTime::Micros(i % 1000), [&sink] { ++sink; }));
    }
    for (int64_t i = 0; i < batch; i += 2) {
      sched.Cancel(ids[i]);
    }
    sched.RunUntil(SimTime::Seconds(1));
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SchedulerCancelHeavy)->Arg(100000);

void BM_SeedSchedulerCancelHeavy(benchmark::State& state) {
  const int64_t batch = state.range(0);
  std::vector<uint64_t> ids;
  ids.reserve(batch);
  for (auto _ : state) {
    SeedScheduler sched;
    uint64_t sink = 0;
    ids.clear();
    for (int64_t i = 0; i < batch; ++i) {
      ids.push_back(sched.ScheduleAt(SimTime::Micros(i % 1000), [&sink] { ++sink; }));
    }
    for (int64_t i = 0; i < batch; i += 2) {
      sched.Cancel(ids[i]);
    }
    sched.RunUntil(SimTime::Seconds(1));
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SeedSchedulerCancelHeavy)->Arg(100000);

// Periodic storm: 10k PeriodicEvents (harvester duty cycles, report
// timers) ticking concurrently. Every firing reuses its slot and inline
// callback, so the steady state allocates nothing.
void BM_SchedulerPeriodicStorm(benchmark::State& state) {
  constexpr int kEvents = 10000;
  constexpr int kPeriods = 20;
  for (auto _ : state) {
    Scheduler sched;
    uint64_t fires = 0;
    std::vector<std::unique_ptr<PeriodicEvent>> storm;
    storm.reserve(kEvents);
    for (int i = 0; i < kEvents; ++i) {
      storm.push_back(std::make_unique<PeriodicEvent>(sched, SimTime::Seconds(1),
                                                      [&fires] { ++fires; }, "bench.storm"));
      storm.back()->Start(SimTime::Millis(i % 1000));
    }
    sched.RunUntil(SimTime::Seconds(kPeriods));
    benchmark::DoNotOptimize(fires);
  }
  state.SetItemsProcessed(state.iterations() * kEvents * kPeriods);
}
BENCHMARK(BM_SchedulerPeriodicStorm);

// DESIGN.md ablation 1: binary-heap event queue vs naive sorted insertion.
// The naive structure keeps a sorted vector and inserts via binary search +
// mid-vector shift: O(n) per insert where the heap pays O(log n).
void BM_NaiveSortedQueue(benchmark::State& state) {
  const int64_t batch = state.range(0);
  RandomStream rng(5);
  for (auto _ : state) {
    std::vector<std::pair<int64_t, uint64_t>> queue;  // (time, id), sorted desc.
    queue.reserve(batch);
    for (int64_t i = 0; i < batch; ++i) {
      const int64_t at = static_cast<int64_t>(rng.NextBelow(1000000));
      auto it = std::lower_bound(
          queue.begin(), queue.end(), at,
          [](const std::pair<int64_t, uint64_t>& e, int64_t t) { return e.first > t; });
      queue.insert(it, {at, static_cast<uint64_t>(i)});
    }
    uint64_t sink = 0;
    while (!queue.empty()) {
      sink += queue.back().second;
      queue.pop_back();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_NaiveSortedQueue)->Arg(1000)->Arg(100000);

void BM_RngUniform(benchmark::State& state) {
  RandomStream rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextDouble());
  }
}
BENCHMARK(BM_RngUniform);

void BM_RngWeibull(benchmark::State& state) {
  RandomStream rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Weibull(3.0, 15.0));
  }
}
BENCHMARK(BM_RngWeibull);

void BM_SeriesSystemLifeDraw(benchmark::State& state) {
  const SeriesSystem bom = SeriesSystem::EnergyHarvestingNode();
  RandomStream rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bom.SampleLife(rng).life);
  }
}
BENCHMARK(BM_SeriesSystemLifeDraw);

// DESIGN.md ablation 3: lazy next-failure sampling vs per-tick Bernoulli.
// Both compute "when does this component fail" across a simulated century;
// lazy sampling is one draw, ticking is 36,525 daily hazard evaluations.
void BM_CenturyFailure_LazySampling(benchmark::State& state) {
  WeibullHazard hazard(3.0, SimTime::Years(15));
  RandomStream rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hazard.SampleLife(rng));
  }
}
BENCHMARK(BM_CenturyFailure_LazySampling);

void BM_CenturyFailure_PerTick(benchmark::State& state) {
  WeibullHazard hazard(3.0, SimTime::Years(15));
  RandomStream rng(1);
  for (auto _ : state) {
    // Daily Bernoulli against the discrete hazard for up to 100 years.
    SimTime failed_at = SimTime::Max();
    double prev_survival = 1.0;
    for (int day = 1; day <= 36525; ++day) {
      const double s = hazard.Survival(SimTime::Days(day));
      const double p_fail_today = prev_survival > 0 ? 1.0 - s / prev_survival : 1.0;
      prev_survival = s;
      if (rng.NextBool(p_fail_today)) {
        failed_at = SimTime::Days(day);
        break;
      }
    }
    benchmark::DoNotOptimize(failed_at);
  }
}
BENCHMARK(BM_CenturyFailure_PerTick);

void BM_LoraAirtime(benchmark::State& state) {
  LoraConfig cfg;
  cfg.sf = LoraSf::kSf9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LoraPhy::Airtime(cfg, 24));
  }
}
BENCHMARK(BM_LoraAirtime);

void BM_Phy802154Per(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Phy802154::PacketErrorRate(2.0, 64));
  }
}
BENCHMARK(BM_Phy802154Per);

void BM_SolarEnergyIntegralOneHour(benchmark::State& state) {
  SolarHarvester::Params p;
  SolarHarvester sun(p);
  SimTime t;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sun.EnergyOver(t, t + SimTime::Hours(1)));
    t += SimTime::Hours(1);
  }
}
BENCHMARK(BM_SolarEnergyIntegralOneHour);

// --- BENCH_p1_engine.json record ------------------------------------------

// Self-rescheduling events/sec for either scheduler type.
template <typename SchedT>
double MeasureSelfResched(uint64_t events) {
  SchedT sched;
  uint64_t ticks = 0;
  sched.ScheduleAfter(SimTime::Micros(10), SelfTick<SchedT>{&sched, &ticks, events});
  const auto t0 = std::chrono::steady_clock::now();
  sched.RunUntil(SimTime::Hours(1));
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return secs > 0 ? static_cast<double>(ticks) / secs : 0.0;
}

// Schedule-then-drain events/sec (the BM_SchedulerThroughput workload:
// batch events over a 1 ms window, then one RunUntil) for either type.
template <typename SchedT>
double MeasureThroughput(uint64_t batch) {
  SchedT sched;
  uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < batch; ++i) {
    sched.ScheduleAt(SimTime::Micros(static_cast<int64_t>(i % 1000)), [&sink] { ++sink; });
  }
  sched.RunUntil(SimTime::Seconds(1));
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  benchmark::DoNotOptimize(sink);
  return secs > 0 ? static_cast<double>(batch) / secs : 0.0;
}

// Schedule-then-drain events/sec with a 50% cancel rate for either type.
template <typename SchedT>
double MeasureCancelHeavy(uint64_t batch) {
  SchedT sched;
  uint64_t sink = 0;
  std::vector<uint64_t> ids;
  ids.reserve(batch);
  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < batch; ++i) {
    ids.push_back(sched.ScheduleAt(SimTime::Micros(i % 1000), [&sink] { ++sink; }));
  }
  for (uint64_t i = 0; i < batch; i += 2) {
    sched.Cancel(ids[i]);
  }
  sched.RunUntil(SimTime::Seconds(1));
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  benchmark::DoNotOptimize(sink);
  return secs > 0 ? static_cast<double>(batch) / secs : 0.0;
}

// Allocations per event once warm (pool grown, arrays sized). The event
// core must report exactly 0; the seed replica pays for the std::function
// box every reschedule.
template <typename SchedT>
double MeasureSteadyAllocsPerEvent(uint64_t events) {
  if (!AllocProbeEnabled()) {
    return -1.0;  // Sanitizer build: probe compiled out.
  }
  SchedT sched;
  uint64_t ticks = 0;
  sched.ScheduleAfter(SimTime::Micros(10), SelfTick<SchedT>{&sched, &ticks, 1000});
  sched.RunUntil(SimTime::Hours(1));  // Warm-up.
  ticks = 0;
  AllocScope scope;
  sched.ScheduleAfter(SimTime::Micros(10), SelfTick<SchedT>{&sched, &ticks, events});
  sched.RunUntil(SimTime::Hours(2));
  return static_cast<double>(scope.delta()) / static_cast<double>(events);
}

// Self-rescheduling throughput with/without the observability layer; the
// profiler's sched.events_total counter is the numerator when observed.
double MeasureEventsPerSec(bool observed, uint64_t events) {
  Scheduler sched;
  MetricsRegistry registry;
  SchedulerProfiler profiler;
  if (observed) {
    sched.SetProfiler(&profiler);
  }
  uint64_t ticks = 0;
  sched.ScheduleAfter(SimTime::Micros(10), SelfTick<Scheduler>{&sched, &ticks, events},
                      "bench.tick");
  const auto t0 = std::chrono::steady_clock::now();
  sched.RunUntil(SimTime::Hours(1));
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  double executed = static_cast<double>(ticks);
  if (observed) {
    profiler.ExportTo(registry);
    if (const Counter* total = registry.FindCounter("sched.events_total")) {
      executed = total->value();
    }
  }
  return secs > 0 ? executed / secs : 0.0;
}

// Self-rescheduling throughput with the full live-run-control stack wired
// the way EnsembleRunner wires a replica: profiler + flight recorder +
// progress cell + scheduler slot. The delta against the unobserved run is
// the heartbeat satellite's whole hot-path cost.
double MeasureEventsPerSecRunControl(uint64_t events) {
  Scheduler sched;
  SchedulerProfiler profiler;
  FlightRecorder recorder(FlightRecorder::kDefaultCapacity);
  ProgressCell cell;
  SchedulerSlot slot;
  RunControlHooks hooks;
  hooks.profiler = &profiler;
  hooks.recorder = &recorder;
  hooks.progress = &cell;
  hooks.scheduler_slot = &slot;
  sched.AttachRunControl(hooks);
  uint64_t ticks = 0;
  sched.ScheduleAfter(SimTime::Micros(10), SelfTick<Scheduler>{&sched, &ticks, events},
                      "bench.tick");
  const auto t0 = std::chrono::steady_clock::now();
  sched.RunUntil(SimTime::Hours(1));
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  sched.DetachRunControl(hooks);
  benchmark::DoNotOptimize(recorder.total_recorded());
  benchmark::DoNotOptimize(cell.Load().ticks);
  return secs > 0 ? static_cast<double>(ticks) / secs : 0.0;
}

// Paired-round median ratio between two measurement thunks: short trials
// back-to-back with alternating order, scored by the median per-round
// ratio. Machine-speed drift moves both halves of a pair together, the
// alternation cancels order effects, and the median sheds rounds where a
// descheduling landed inside one mode only.
template <typename FnA, typename FnB>
void PairedRounds(int rounds, FnA measure_a, FnB measure_b, double* best_a, double* best_b,
                  double* median_ratio_ab) {
  measure_a();
  measure_b();  // Warm-up pass for both.
  *best_a = 0.0;
  *best_b = 0.0;
  std::vector<double> ratios;
  for (int round = 0; round < rounds; ++round) {
    double a = 0.0;
    double b = 0.0;
    if (round % 2 == 0) {
      a = measure_a();
      b = measure_b();
    } else {
      b = measure_b();
      a = measure_a();
    }
    *best_a = std::max(*best_a, a);
    *best_b = std::max(*best_b, b);
    if (b > 0) {
      ratios.push_back(a / b);
    }
  }
  std::sort(ratios.begin(), ratios.end());
  *median_ratio_ab = ratios.empty() ? 1.0 : ratios[ratios.size() / 2];
}

void WriteEngineBenchRecord() {
  const uint64_t events = 500'000;
  const int rounds = 9;

  // Event core vs seed-scheduler replica: the PR's before/after numbers.
  double core = 0.0;
  double seed = 0.0;
  double speedup = 1.0;
  PairedRounds(
      rounds, [&] { return MeasureSelfResched<Scheduler>(events); },
      [&] { return MeasureSelfResched<SeedScheduler>(events); }, &core, &seed, &speedup);

  double core_tput = 0.0;
  double seed_tput = 0.0;
  double tput_speedup = 1.0;
  PairedRounds(
      rounds, [&] { return MeasureThroughput<Scheduler>(100'000); },
      [&] { return MeasureThroughput<SeedScheduler>(100'000); }, &core_tput, &seed_tput,
      &tput_speedup);

  double core_cancel = 0.0;
  double seed_cancel = 0.0;
  double cancel_speedup = 1.0;
  PairedRounds(
      rounds, [&] { return MeasureCancelHeavy<Scheduler>(200'000); },
      [&] { return MeasureCancelHeavy<SeedScheduler>(200'000); }, &core_cancel, &seed_cancel,
      &cancel_speedup);

  const double core_allocs = MeasureSteadyAllocsPerEvent<Scheduler>(200'000);
  const double seed_allocs = MeasureSteadyAllocsPerEvent<SeedScheduler>(200'000);

  // Observability overhead on the new core.
  double plain = 0.0;
  double observed = 0.0;
  double ratio = 1.0;
  PairedRounds(
      rounds, [&] { return MeasureEventsPerSec(/*observed=*/false, events); },
      [&] { return MeasureEventsPerSec(/*observed=*/true, events); }, &plain, &observed, &ratio);
  const double overhead_pct = (ratio - 1.0) * 100.0;

  // Full run-control stack (profiler + recorder + progress cell + slot),
  // exactly the per-replica wiring a status_dir ensemble runs with. Paired
  // against the profiler-only run: the heartbeat hooks piggyback on the
  // profiler's sampling, so this ratio isolates what the recorder/progress
  // publishing add on top of observability the engine already paid for.
  double observed_rc = 0.0;
  double run_control = 0.0;
  double rc_ratio = 1.0;
  PairedRounds(
      rounds, [&] { return MeasureEventsPerSec(/*observed=*/true, events); },
      [&] { return MeasureEventsPerSecRunControl(events); }, &observed_rc, &run_control,
      &rc_ratio);
  const double runcontrol_overhead_pct = (rc_ratio - 1.0) * 100.0;

  BenchReport bench("p1_engine");
  bench.Add("scheduler_events_per_sec", core, "1/s");
  bench.Add("scheduler_events_per_sec_seed_baseline", seed, "1/s");
  bench.Add("scheduler_speedup_vs_seed", speedup, "x");
  bench.Add("scheduler_throughput_per_sec", core_tput, "1/s");
  bench.Add("scheduler_throughput_per_sec_seed_baseline", seed_tput, "1/s");
  bench.Add("scheduler_throughput_speedup_vs_seed", tput_speedup, "x");
  bench.Add("scheduler_cancel_heavy_per_sec", core_cancel, "1/s");
  bench.Add("scheduler_cancel_heavy_per_sec_seed_baseline", seed_cancel, "1/s");
  bench.Add("scheduler_cancel_heavy_speedup_vs_seed", cancel_speedup, "x");
  bench.Add("scheduler_steady_allocs_per_event", core_allocs, "count");
  bench.Add("scheduler_steady_allocs_per_event_seed_baseline", seed_allocs, "count");
  bench.Add("scheduler_events_per_sec_observed", observed, "1/s");
  bench.Add("observability_overhead_pct", overhead_pct, "%");
  bench.Add("scheduler_events_per_sec_run_control", run_control, "1/s");
  bench.Add("runcontrol_overhead_pct", runcontrol_overhead_pct, "%");
  std::string error;
  const std::string path = bench.WriteFile(".", &error);
  if (path.empty()) {
    std::fprintf(stderr, "bench record not written: %s\n", error.c_str());
  } else {
    std::printf("\nScheduler: %.0f events/s event-core vs %.0f events/s seed replica "
                "(median %.2fx); throughput %.2fx; cancel-heavy %.2fx; "
                "allocs/event %.3f vs %.3f\n",
                core, seed, speedup, tput_speedup, cancel_speedup, core_allocs, seed_allocs);
    std::printf("Observability: %.0f events/s observed (%.1f%% overhead)\n", observed,
                overhead_pct);
    std::printf("Run control: %.0f events/s with heartbeat+recorder (%.1f%% over profiled)\n",
                run_control, runcontrol_overhead_pct);
    std::printf("Wrote %s\n", path.c_str());
  }
}

}  // namespace
}  // namespace centsim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  centsim::WriteEngineBenchRecord();
  return 0;
}
