// P1 — engine microbenchmarks (google-benchmark): event-queue throughput,
// RNG, hazard sampling, radio airtime math, energy integration, and the
// DESIGN.md ablation of lazy next-failure sampling vs per-tick hazard
// evaluation.
//
// Besides the google-benchmark console tables, the binary measures scheduler
// throughput with and without the observability layer (metrics registry +
// profiler) attached and writes the comparison to BENCH_p1_engine.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "src/energy/harvester.h"
#include "src/radio/lora.h"
#include "src/radio/phy_802154.h"
#include "src/reliability/component.h"
#include "src/reliability/hazard.h"
#include "src/sim/metrics.h"
#include "src/sim/profiler.h"
#include "src/sim/random.h"
#include "src/sim/scheduler.h"
#include "src/telemetry/bench_record.h"

namespace centsim {
namespace {

void BM_SchedulerThroughput(benchmark::State& state) {
  const int64_t batch = state.range(0);
  for (auto _ : state) {
    Scheduler sched;
    uint64_t sink = 0;
    for (int64_t i = 0; i < batch; ++i) {
      sched.ScheduleAt(SimTime::Micros(i % 1000), [&sink] { ++sink; });
    }
    sched.RunUntil(SimTime::Seconds(1));
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SchedulerThroughput)->Arg(1000)->Arg(100000);

void BM_SchedulerSelfRescheduling(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler sched;
    uint64_t ticks = 0;
    std::function<void()> tick = [&] {
      if (++ticks < 100000) {
        sched.ScheduleAfter(SimTime::Micros(10), tick);
      }
    };
    sched.ScheduleAfter(SimTime::Micros(10), tick);
    sched.RunUntil(SimTime::Seconds(10));
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SchedulerSelfRescheduling);

// Same workload with the observability layer attached: a SchedulerProfiler
// sampling wall time 1-in-16 and a counter bumped per event. Comparing
// against BM_SchedulerSelfRescheduling bounds the profiling overhead.
void BM_SchedulerSelfReschedulingProfiled(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler sched;
    MetricsRegistry registry;
    SchedulerProfiler profiler;
    sched.SetProfiler(&profiler);
    Counter* ticks_metric = registry.GetCounter("bench.ticks");
    uint64_t ticks = 0;
    std::function<void()> tick = [&] {
      MetricInc(ticks_metric);
      if (++ticks < 100000) {
        sched.ScheduleAfter(SimTime::Micros(10), tick, "bench.tick");
      }
    };
    sched.ScheduleAfter(SimTime::Micros(10), tick, "bench.tick");
    sched.RunUntil(SimTime::Seconds(10));
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SchedulerSelfReschedulingProfiled);

// DESIGN.md ablation 1: binary-heap event queue vs naive sorted insertion.
// The naive structure keeps a sorted vector and inserts via binary search +
// mid-vector shift: O(n) per insert where the heap pays O(log n).
void BM_NaiveSortedQueue(benchmark::State& state) {
  const int64_t batch = state.range(0);
  RandomStream rng(5);
  for (auto _ : state) {
    std::vector<std::pair<int64_t, uint64_t>> queue;  // (time, id), sorted desc.
    queue.reserve(batch);
    for (int64_t i = 0; i < batch; ++i) {
      const int64_t at = static_cast<int64_t>(rng.NextBelow(1000000));
      auto it = std::lower_bound(
          queue.begin(), queue.end(), at,
          [](const std::pair<int64_t, uint64_t>& e, int64_t t) { return e.first > t; });
      queue.insert(it, {at, static_cast<uint64_t>(i)});
    }
    uint64_t sink = 0;
    while (!queue.empty()) {
      sink += queue.back().second;
      queue.pop_back();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_NaiveSortedQueue)->Arg(1000)->Arg(100000);

void BM_RngUniform(benchmark::State& state) {
  RandomStream rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextDouble());
  }
}
BENCHMARK(BM_RngUniform);

void BM_RngWeibull(benchmark::State& state) {
  RandomStream rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Weibull(3.0, 15.0));
  }
}
BENCHMARK(BM_RngWeibull);

void BM_SeriesSystemLifeDraw(benchmark::State& state) {
  const SeriesSystem bom = SeriesSystem::EnergyHarvestingNode();
  RandomStream rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bom.SampleLife(rng).life);
  }
}
BENCHMARK(BM_SeriesSystemLifeDraw);

// DESIGN.md ablation 3: lazy next-failure sampling vs per-tick Bernoulli.
// Both compute "when does this component fail" across a simulated century;
// lazy sampling is one draw, ticking is 36,525 daily hazard evaluations.
void BM_CenturyFailure_LazySampling(benchmark::State& state) {
  WeibullHazard hazard(3.0, SimTime::Years(15));
  RandomStream rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hazard.SampleLife(rng));
  }
}
BENCHMARK(BM_CenturyFailure_LazySampling);

void BM_CenturyFailure_PerTick(benchmark::State& state) {
  WeibullHazard hazard(3.0, SimTime::Years(15));
  RandomStream rng(1);
  for (auto _ : state) {
    // Daily Bernoulli against the discrete hazard for up to 100 years.
    SimTime failed_at = SimTime::Max();
    double prev_survival = 1.0;
    for (int day = 1; day <= 36525; ++day) {
      const double s = hazard.Survival(SimTime::Days(day));
      const double p_fail_today = prev_survival > 0 ? 1.0 - s / prev_survival : 1.0;
      prev_survival = s;
      if (rng.NextBool(p_fail_today)) {
        failed_at = SimTime::Days(day);
        break;
      }
    }
    benchmark::DoNotOptimize(failed_at);
  }
}
BENCHMARK(BM_CenturyFailure_PerTick);

void BM_LoraAirtime(benchmark::State& state) {
  LoraConfig cfg;
  cfg.sf = LoraSf::kSf9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LoraPhy::Airtime(cfg, 24));
  }
}
BENCHMARK(BM_LoraAirtime);

void BM_Phy802154Per(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Phy802154::PacketErrorRate(2.0, 64));
  }
}
BENCHMARK(BM_Phy802154Per);

void BM_SolarEnergyIntegralOneHour(benchmark::State& state) {
  SolarHarvester::Params p;
  SolarHarvester sun(p);
  SimTime t;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sun.EnergyOver(t, t + SimTime::Hours(1)));
    t += SimTime::Hours(1);
  }
}
BENCHMARK(BM_SolarEnergyIntegralOneHour);

// Measures self-rescheduling scheduler throughput directly (outside the
// google-benchmark harness), optionally with the observability layer
// attached. Events/sec comes from the metrics layer itself when enabled:
// the profiler's sched.events_total counter is the numerator.
double MeasureEventsPerSec(bool observed, uint64_t events) {
  Scheduler sched;
  MetricsRegistry registry;
  SchedulerProfiler profiler;
  if (observed) {
    sched.SetProfiler(&profiler);
  }
  uint64_t ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < events) {
      sched.ScheduleAfter(SimTime::Micros(10), tick, "bench.tick");
    }
  };
  sched.ScheduleAfter(SimTime::Micros(10), tick, "bench.tick");
  const auto t0 = std::chrono::steady_clock::now();
  sched.RunUntil(SimTime::Hours(1));
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  double executed = static_cast<double>(ticks);
  if (observed) {
    profiler.ExportTo(registry);
    if (const Counter* total = registry.FindCounter("sched.events_total")) {
      executed = total->value();
    }
  }
  return secs > 0 ? executed / secs : 0.0;
}

void WriteEngineBenchRecord() {
  // Short trials in many paired rounds, modes back-to-back with the order
  // alternating, scored by the median per-round ratio. Machine-speed drift
  // (common on shared hosts) moves both halves of a pair together, the
  // alternation cancels order effects, and the median sheds rounds where a
  // descheduling landed inside one mode only.
  const uint64_t events = 500'000;
  const int rounds = 15;
  MeasureEventsPerSec(/*observed=*/false, events);
  MeasureEventsPerSec(/*observed=*/true, events);
  double plain = 0.0;
  double observed = 0.0;
  std::vector<double> ratios;
  for (int round = 0; round < rounds; ++round) {
    const bool plain_first = (round % 2) == 0;
    const double first = MeasureEventsPerSec(/*observed=*/!plain_first, events);
    const double second = MeasureEventsPerSec(/*observed=*/plain_first, events);
    const double p = plain_first ? first : second;
    const double o = plain_first ? second : first;
    plain = std::max(plain, p);
    observed = std::max(observed, o);
    if (o > 0) {
      ratios.push_back(p / o);
    }
  }
  std::sort(ratios.begin(), ratios.end());
  const double ratio = ratios.empty() ? 1.0 : ratios[ratios.size() / 2];
  const double overhead_pct = (ratio - 1.0) * 100.0;

  BenchReport bench("p1_engine");
  bench.Add("scheduler_events_per_sec", plain, "1/s");
  bench.Add("scheduler_events_per_sec_observed", observed, "1/s");
  bench.Add("observability_overhead_pct", overhead_pct, "%");
  std::string error;
  const std::string path = bench.WriteFile(".", &error);
  if (path.empty()) {
    std::fprintf(stderr, "bench record not written: %s\n", error.c_str());
  } else {
    std::printf("\nScheduler: %.0f events/s plain, %.0f events/s observed (%.1f%% overhead)\n",
                plain, observed, overhead_pct);
    std::printf("Wrote %s\n", path.c_str());
  }
}

}  // namespace
}  // namespace centsim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  centsim::WriteEngineBenchRecord();
  return 0;
}
