// P1 — engine microbenchmarks (google-benchmark): event-queue throughput,
// RNG, hazard sampling, radio airtime math, energy integration, and the
// DESIGN.md ablation of lazy next-failure sampling vs per-tick hazard
// evaluation.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "src/energy/harvester.h"
#include "src/radio/lora.h"
#include "src/radio/phy_802154.h"
#include "src/reliability/component.h"
#include "src/reliability/hazard.h"
#include "src/sim/random.h"
#include "src/sim/scheduler.h"

namespace centsim {
namespace {

void BM_SchedulerThroughput(benchmark::State& state) {
  const int64_t batch = state.range(0);
  for (auto _ : state) {
    Scheduler sched;
    uint64_t sink = 0;
    for (int64_t i = 0; i < batch; ++i) {
      sched.ScheduleAt(SimTime::Micros(i % 1000), [&sink] { ++sink; });
    }
    sched.RunUntil(SimTime::Seconds(1));
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SchedulerThroughput)->Arg(1000)->Arg(100000);

void BM_SchedulerSelfRescheduling(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler sched;
    uint64_t ticks = 0;
    std::function<void()> tick = [&] {
      if (++ticks < 100000) {
        sched.ScheduleAfter(SimTime::Micros(10), tick);
      }
    };
    sched.ScheduleAfter(SimTime::Micros(10), tick);
    sched.RunUntil(SimTime::Seconds(10));
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SchedulerSelfRescheduling);

// DESIGN.md ablation 1: binary-heap event queue vs naive sorted insertion.
// The naive structure keeps a sorted vector and inserts via binary search +
// mid-vector shift: O(n) per insert where the heap pays O(log n).
void BM_NaiveSortedQueue(benchmark::State& state) {
  const int64_t batch = state.range(0);
  RandomStream rng(5);
  for (auto _ : state) {
    std::vector<std::pair<int64_t, uint64_t>> queue;  // (time, id), sorted desc.
    queue.reserve(batch);
    for (int64_t i = 0; i < batch; ++i) {
      const int64_t at = static_cast<int64_t>(rng.NextBelow(1000000));
      auto it = std::lower_bound(
          queue.begin(), queue.end(), at,
          [](const std::pair<int64_t, uint64_t>& e, int64_t t) { return e.first > t; });
      queue.insert(it, {at, static_cast<uint64_t>(i)});
    }
    uint64_t sink = 0;
    while (!queue.empty()) {
      sink += queue.back().second;
      queue.pop_back();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_NaiveSortedQueue)->Arg(1000)->Arg(100000);

void BM_RngUniform(benchmark::State& state) {
  RandomStream rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextDouble());
  }
}
BENCHMARK(BM_RngUniform);

void BM_RngWeibull(benchmark::State& state) {
  RandomStream rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Weibull(3.0, 15.0));
  }
}
BENCHMARK(BM_RngWeibull);

void BM_SeriesSystemLifeDraw(benchmark::State& state) {
  const SeriesSystem bom = SeriesSystem::EnergyHarvestingNode();
  RandomStream rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bom.SampleLife(rng).life);
  }
}
BENCHMARK(BM_SeriesSystemLifeDraw);

// DESIGN.md ablation 3: lazy next-failure sampling vs per-tick Bernoulli.
// Both compute "when does this component fail" across a simulated century;
// lazy sampling is one draw, ticking is 36,525 daily hazard evaluations.
void BM_CenturyFailure_LazySampling(benchmark::State& state) {
  WeibullHazard hazard(3.0, SimTime::Years(15));
  RandomStream rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hazard.SampleLife(rng));
  }
}
BENCHMARK(BM_CenturyFailure_LazySampling);

void BM_CenturyFailure_PerTick(benchmark::State& state) {
  WeibullHazard hazard(3.0, SimTime::Years(15));
  RandomStream rng(1);
  for (auto _ : state) {
    // Daily Bernoulli against the discrete hazard for up to 100 years.
    SimTime failed_at = SimTime::Max();
    double prev_survival = 1.0;
    for (int day = 1; day <= 36525; ++day) {
      const double s = hazard.Survival(SimTime::Days(day));
      const double p_fail_today = prev_survival > 0 ? 1.0 - s / prev_survival : 1.0;
      prev_survival = s;
      if (rng.NextBool(p_fail_today)) {
        failed_at = SimTime::Days(day);
        break;
      }
    }
    benchmark::DoNotOptimize(failed_at);
  }
}
BENCHMARK(BM_CenturyFailure_PerTick);

void BM_LoraAirtime(benchmark::State& state) {
  LoraConfig cfg;
  cfg.sf = LoraSf::kSf9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LoraPhy::Airtime(cfg, 24));
  }
}
BENCHMARK(BM_LoraAirtime);

void BM_Phy802154Per(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Phy802154::PacketErrorRate(2.0, 64));
  }
}
BENCHMARK(BM_Phy802154Per);

void BM_SolarEnergyIntegralOneHour(benchmark::State& state) {
  SolarHarvester::Params p;
  SolarHarvester sun(p);
  SimTime t;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sun.EnergyOver(t, t + SimTime::Hours(1)));
    t += SimTime::Hours(1);
  }
}
BENCHMARK(BM_SolarEnergyIntegralOneHour);

}  // namespace
}  // namespace centsim

BENCHMARK_MAIN();
