// E1 — paper §4: the 50-year experiment, simulated end to end. Devices are
// never touched while alive (failed units are documented and replaced);
// owned 802.15.4 gateways are maintained within a budget; Helium hotspots
// churn with their owners; the wallet is prepaid; the domain must be
// renewed every 10 years. Headline metric: "some data arrives ... up to
// once a week" at the public endpoint.

#include <iostream>

#include "src/core/experiment.h"
#include "src/telemetry/bench_record.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;
  std::cout << "=== E1: the 50-year experiment, simulated (paper SS4) ===\n\n";

  FiftyYearConfig cfg;
  cfg.seed = 2021;
  cfg.devices_802154 = 6;
  cfg.devices_lora = 6;
  cfg.owned_gateways = 2;
  cfg.helium_hotspots = 5;
  cfg.report_interval = SimTime::Hours(1);  // The paper's Helium costing cadence.
  cfg.horizon = SimTime::Years(50);

  std::cout << "Simulating " << (cfg.devices_802154 + cfg.devices_lora) << " devices x "
            << cfg.horizon.ToString() << " at 1 report/hour...\n\n";
  const FiftyYearReport report = RunFiftyYearExperiment(cfg);

  Table headline({"metric", "value"});
  headline.AddRow({"weekly end-to-end uptime (paper's metric)",
                   FormatPercent(report.weekly_uptime, 2)});
  headline.AddRow({"longest dark gap", std::to_string(report.longest_gap_weeks) + " weeks"});
  headline.AddRow({"packets received", FormatCount(report.total_packets)});
  headline.AddRow({"simulation events", FormatCount(report.events_executed)});
  headline.Print(std::cout);

  std::cout << "\nPer-path comparison (owned vs third-party infrastructure, SS4.2-4.3):\n";
  Table paths({"path", "delivery rate", "path weekly uptime", "mean device weekly uptime"});
  paths.AddRow({"802.15.4 via owned gateways", FormatPercent(report.owned_path.DeliveryRate()),
                FormatPercent(report.owned_path.group_weekly_uptime),
                FormatPercent(report.owned_path.mean_device_weekly_uptime)});
  paths.AddRow({"LoRa via Helium hotspots", FormatPercent(report.helium_path.DeliveryRate()),
                FormatPercent(report.helium_path.group_weekly_uptime),
                FormatPercent(report.helium_path.mean_device_weekly_uptime)});
  paths.Print(std::cout);

  std::cout << "\nLoss attribution by tier (Figure 1 reliance structure):\n";
  Table tiers({"tier", "lost attempts"});
  for (int t = 0; t < kTierCount; ++t) {
    tiers.AddRow({TierName(static_cast<Tier>(t)), FormatCount(report.tier_attribution[t])});
  }
  tiers.Print(std::cout);

  std::cout << "\nLiving study (SS4.4-4.5):\n";
  Table living({"quantity", "value"});
  living.AddRow({"device failures (documented+replaced)",
                 std::to_string(report.device_failures)});
  living.AddRow({"device median unit life",
                 report.device_survival.MedianSurvival()
                     ? report.device_survival.MedianSurvival()->ToString()
                     : std::string("beyond horizon")});
  living.AddRow({"owned gateway failures / crew repairs",
                 std::to_string(report.owned_gateway_failures) + " / " +
                     std::to_string(report.maintenance_repairs)});
  living.AddRow({"maintenance person-hours (50 y)", FormatDouble(report.maintenance_hours, 1)});
  living.AddRow({"maintenance cost", FormatUsd(report.maintenance_cost_usd)});
  living.AddRow({"hotspot failures (owner churn)", std::to_string(report.hotspot_failures)});
  living.AddRow({"data credits provisioned/spent",
                 FormatCount(report.credits_provisioned) + " / " +
                     FormatCount(report.credits_spent)});
  living.AddRow({"packets refused for credits", FormatCount(report.credits_refused)});
  living.AddRow({"LoRaWAN dedup: mean witnesses/frame",
                 FormatDouble(report.mean_witnesses, 2) + " (" +
                     FormatCount(report.frames_deduplicated) + " duplicates suppressed)"});
  living.AddRow({"domain renewals (lapses)", std::to_string(report.domain_renewals) + " (" +
                                                 std::to_string(report.domain_lapses) + ")"});
  living.AddRow({"custodian handovers / final knowledge",
                 std::to_string(report.custodian_handovers) + " / " +
                     FormatPercent(report.final_knowledge)});
  living.AddRow({"forged/replayed packets rejected",
                 FormatCount(report.auth_rejected) + " / " + FormatCount(report.replay_rejected)});
  living.Print(std::cout);

  std::cout << "\nDiary by decade (failures / maintenance / warnings):\n";
  for (const auto& d : report.diary_decades) {
    std::printf("  years %2u0s: %4u / %4u / %4u\n", d.decade, d.failures, d.maintenance_actions,
                d.warnings);
  }

  BenchReport bench("e1_fifty_year");
  bench.Add("weekly_uptime", report.weekly_uptime, "fraction");
  bench.Add("longest_gap_weeks", static_cast<double>(report.longest_gap_weeks), "weeks");
  bench.Add("packets_received", static_cast<double>(report.total_packets), "count");
  bench.Add("events_executed", static_cast<double>(report.events_executed), "count");
  bench.Add("wall_seconds", report.wall_seconds, "s");
  bench.Add("events_per_sec",
            report.wall_seconds > 0 ? report.events_executed / report.wall_seconds : 0.0, "1/s");
  bench.Add("maintenance_hours", report.maintenance_hours, "h");
  RunManifest manifest;
  manifest.run_name = "e1_fifty_year";
  manifest.seed = cfg.seed;
  manifest.horizon = cfg.horizon;
  manifest.wall_seconds = report.wall_seconds;
  manifest.events_executed = report.events_executed;
  bench.SetManifest(std::move(manifest));
  const std::string path = bench.WriteFile();
  if (!path.empty()) {
    std::cout << "\nWrote " << path << "\n";
  }
  return 0;
}
