// E4 — paper §3.3.2/§3.4: spectrum sunset. "In some cases, such as the
// sunset of 2G wireless technologies, device owners have no option: a
// fixed resource (spectrum) that they do not own or control is taken away,
// and devices must be replaced." Wires do not have this cliff.
//
// Scenario: identical gateway fleets on (a) cellular backhaul bound to the
// current generation, and (b) owned fiber. We track fleet-level delivery
// availability across 50 years of generation sunsets.

#include <iostream>
#include <memory>

#include "src/econ/labor.h"
#include "src/net/backhaul.h"
#include "src/reliability/obsolescence.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;
  std::cout << "=== E4: spectrum sunset vs wired backhaul (paper SS3.3-3.4) ===\n\n";

  const TechnologyTimeline timeline = TechnologyTimeline::UsCellularDefault();
  std::cout << "Cellular generation sunsets (deployment-relative):\n";
  Table sunsets({"technology", "sunset at"});
  for (const auto& e : timeline.events()) {
    sunsets.AddRow({e.technology, e.at.ToString()});
  }
  sunsets.Print(std::cout);

  // A fleet deployed on 3G at t=0 (the San Diego situation), vs fiber.
  CellularBackhaul cellular("3g", timeline, RandomStream(21), 25.0);
  auto fiber = MakeFiberBackhaul(RandomStream(22));

  std::cout << "\nYearly availability of each backhaul (hourly probes):\n";
  Table avail({"year", "cellular (3G-bound)", "owned fiber"});
  for (int year = 0; year <= 50; year += 5) {
    int cell_up = 0;
    int fiber_up = 0;
    const int probes = 500;
    for (int p = 0; p < probes; ++p) {
      const SimTime t = SimTime::Years(year) + SimTime::Hours(p * 17);
      cell_up += cellular.IsUpAt(t) ? 1 : 0;
      fiber_up += fiber->IsUp(t) ? 1 : 0;
    }
    avail.AddRow({std::to_string(year),
                  FormatPercent(static_cast<double>(cell_up) / probes),
                  FormatPercent(static_cast<double>(fiber_up) / probes)});
  }
  avail.Print(std::cout);

  std::cout << "\nCellular terminated: "
            << (cellular.terminated() ? cellular.termination_reason() : "(still up)") << "\n";

  // The replacement bill each sunset forces on a device fleet.
  TruckRollModel labor;
  const uint64_t fleet = 50000;
  const double swap_cost =
      fleet * 40.0 /*device*/ + labor.LaborCostUsd(fleet);
  std::cout << "\nEach sunset obsoletes the attached fleet. For " << FormatCount(fleet)
            << " cellular-bound devices, one forced migration costs "
            << FormatUsd(swap_cost) << " (hardware + truck rolls) —\n"
            << "repeated every generation, vs zero forced migrations on fiber.\n";

  Table bill({"backhaul", "forced fleet migrations in 50 y", "forced migration cost"});
  uint32_t sunsets_hit = 0;
  for (const auto& e : timeline.events()) {
    if (e.at <= SimTime::Years(50)) {
      ++sunsets_hit;
    }
  }
  // A fleet re-homed at each sunset onto the next generation.
  bill.AddRow({"cellular (re-homed each sunset)", std::to_string(sunsets_hit - 1),
               FormatUsd(swap_cost * (sunsets_hit - 1))});
  bill.AddRow({"owned fiber", "0", FormatUsd(0)});
  bill.Print(std::cout);

  std::cout << "\nShape check: availability of the generation-bound backhaul\n"
               "collapses to zero at its sunset and never recovers; the wired\n"
               "path persists with only transient outages.\n";
  return 0;
}
