// E6 — district-scale rollout: the municipal composition of the paper's
// pieces. 4,000 sensor sites over 25 km², gateways planned from the radio
// range, devices replaced only when the roadworks batch reaches their zone
// (§1), gateways repaired by the municipal crew. Scored on *service*
// availability (device alive AND covered), which separates device losses
// from the gateway-tier losses Figure 1 warns about.

#include <chrono>
#include <iostream>

#include "src/core/district.h"
#include "src/telemetry/bench_record.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;
  std::cout << "=== E6: district-scale 50-year rollout ===\n\n";

  DistrictConfig cfg;
  cfg.seed = 42;
  cfg.device_count = 4000;
  cfg.area_km2 = 25.0;
  cfg.horizon = SimTime::Years(50);
  cfg.batch_cycle = SimTime::Years(8);

  const auto wall_start = std::chrono::steady_clock::now();
  const auto base = RunDistrictScenario(cfg);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  Table t({"quantity", "value"});
  t.AddRow({"sensor sites", FormatCount(cfg.device_count)});
  t.AddRow({"gateways planned", FormatCount(base.gateway_count)});
  t.AddRow({"planned coverage", FormatPercent(base.initial_coverage)});
  t.AddRow({"mean device availability (50 y)", FormatPercent(base.mean_device_availability)});
  t.AddRow({"mean service availability (50 y)", FormatPercent(base.mean_service_availability)});
  t.AddRow({"availability lost to gateway tier", FormatPercent(base.CoverageLoss())});
  t.AddRow({"worst single year", FormatPercent(base.min_yearly_service)});
  t.AddRow({"device failures / replacements",
            FormatCount(base.device_failures) + " / " + FormatCount(base.device_replacements)});
  t.AddRow({"gateway failures / repairs",
            FormatCount(base.gateway_failures) + " / " + FormatCount(base.gateway_repairs)});
  t.Print(std::cout);

  std::cout << "\nAblation: batch cadence x gateway repair speed (service availability):\n";
  Table abl({"batch cycle", "gw repair 3d", "gw repair 14d", "gw repair 120d"});
  for (double cycle : {4.0, 8.0, 16.0}) {
    std::vector<std::string> row = {FormatDouble(cycle, 0) + " y"};
    for (double repair_days : {3.0, 14.0, 120.0}) {
      DistrictConfig c = cfg;
      c.batch_cycle = SimTime::Years(cycle);
      c.gateway_repair_delay = SimTime::Days(repair_days);
      row.push_back(FormatPercent(RunDistrictScenario(c).mean_service_availability));
    }
    abl.AddRow(row);
  }
  abl.Print(std::cout);

  std::cout << "\nBattery vs harvesting fleet at district scale:\n";
  Table fleet({"device class", "service availability", "device failures"});
  for (auto cls : {DeviceClassKind::kEnergyHarvesting, DeviceClassKind::kBatteryPowered}) {
    DistrictConfig c = cfg;
    c.device_class = cls;
    const auto r = RunDistrictScenario(c);
    fleet.AddRow({cls == DeviceClassKind::kEnergyHarvesting ? "energy harvesting" : "battery",
                  FormatPercent(r.mean_service_availability), FormatCount(r.device_failures)});
  }
  fleet.Print(std::cout);

  std::cout << "\nShape: the batch cadence (how fast dead devices get revisited)\n"
               "dominates service availability; the gateway tier is nearly free to\n"
               "keep healthy (16 repairable units vs 4,000 untouchable ones) until\n"
               "repairs slow to months — Figure 1's asymmetry, quantified: fix the\n"
               "few serviceable things promptly, and design the many unserviceable\n"
               "things to not need fixing.\n";

  BenchReport bench("e6_district");
  bench.Add("mean_service_availability", base.mean_service_availability, "fraction");
  bench.Add("mean_device_availability", base.mean_device_availability, "fraction");
  bench.Add("min_yearly_service", base.min_yearly_service, "fraction");
  bench.Add("device_failures", static_cast<double>(base.device_failures), "count");
  bench.Add("gateway_repairs", static_cast<double>(base.gateway_repairs), "count");
  bench.Add("base_run_wall_seconds", wall_seconds, "s");
  RunManifest manifest;
  manifest.run_name = "e6_district";
  manifest.seed = cfg.seed;
  manifest.horizon = cfg.horizon;
  manifest.wall_seconds = wall_seconds;
  bench.SetManifest(std::move(manifest));
  const std::string path = bench.WriteFile();
  if (!path.empty()) {
    std::cout << "\nWrote " << path << "\n";
  }
  return 0;
}
