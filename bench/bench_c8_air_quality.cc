// C8 — paper §2: "Instrumenting one intersection will not give city
// planners an accurate picture of the overall city traffic. Air pollution
// is highly localized, and requires measurement at city-block
// granularity." The bench sweeps sensor density over a synthetic pollution
// field and reports map error and hotspot recall — the quantitative case
// for scale.

#include <iostream>

#include "src/city/air_quality.h"
#include "src/telemetry/report.h"
#include "src/telemetry/sensors.h"

int main() {
  using namespace centsim;
  std::cout << "=== C8: sensing density for localized phenomena (paper SS2) ===\n\n";

  PollutionField::Params fp;
  fp.area_km2 = 25.0;
  const PollutionField field(fp, RandomStream(99));

  std::cout << "25 km^2 district, plume length scale ~1-2 blocks.\n\n";
  Table t({"sensors", "per km^2", "mean map error (ug/m^3)", "p95 error", "hotspot recall"});
  for (uint32_t n : {5u, 25u, 100u, 400u, 1600u, 6400u}) {
    const auto r = EvaluateSensorDensity(field, n, RandomStream(7));
    t.AddRow({FormatCount(n), FormatDouble(r.sensors_per_km2, 1),
              FormatDouble(r.mean_abs_error, 2), FormatDouble(r.p95_abs_error, 2),
              FormatPercent(r.hotspot_recall)});
  }
  t.Print(std::cout);

  std::cout << "\nBlock-granularity check: one sensor per ~(250 m)^2 cell is 16/km^2\n"
               "-> the 400-sensor row. Hotspot recall only saturates around that\n"
               "density, matching the paper's city-block-granularity claim.\n";

  std::cout << "\nSampling-rate requirement by phenomenon (mean |reconstruction error|\n"
               "of a single sensor, zero-order hold):\n";
  Table rates({"phenomenon", "hourly sampling", "daily sampling", "weekly sampling"});
  for (SensorKind kind : {SensorKind::kAirQuality, SensorKind::kTemperature,
                          SensorKind::kConcreteHealth}) {
    SensorModel m(kind, 5);
    rates.AddRow({SensorKindName(kind),
                  FormatDouble(ReconstructionError(m, SimTime::Hours(1), SimTime::Days(28)), 2),
                  FormatDouble(ReconstructionError(m, SimTime::Days(1), SimTime::Days(28)), 2),
                  FormatDouble(ReconstructionError(m, SimTime::Weeks(1), SimTime::Days(28)), 2)});
  }
  rates.Print(std::cout);
  std::cout << "\nFast, local phenomena (air quality) need density AND rate; slow\n"
               "ones (concrete health) are served by sparse hourly reporters —\n"
               "which is why a 24-byte hourly uplink is a viable century-scale\n"
               "design point for infrastructure health.\n";
  return 0;
}
