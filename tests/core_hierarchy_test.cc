#include "src/core/hierarchy.h"

#include <gtest/gtest.h>

#include <cmath>

namespace centsim {
namespace {

TEST(HierarchyTest, TierNames) {
  EXPECT_STREQ(TierName(Tier::kDevice), "device");
  EXPECT_STREQ(TierName(Tier::kCloud), "cloud");
}

TEST(HierarchyTest, EveryOutcomeMapsToATier) {
  for (int i = 0; i < kDeliveryOutcomeCount; ++i) {
    const auto tier = TierForOutcome(static_cast<DeliveryOutcome>(i));
    EXPECT_GE(static_cast<int>(tier), 0);
    EXPECT_LT(static_cast<int>(tier), kTierCount);
  }
}

TEST(HierarchyTest, SpecificMappings) {
  EXPECT_EQ(TierForOutcome(DeliveryOutcome::kNoEnergy), Tier::kDevice);
  EXPECT_EQ(TierForOutcome(DeliveryOutcome::kCollision), Tier::kAccessChannel);
  EXPECT_EQ(TierForOutcome(DeliveryOutcome::kNoCredits), Tier::kGateway);
  EXPECT_EQ(TierForOutcome(DeliveryOutcome::kBackhaulDown), Tier::kBackhaul);
  EXPECT_EQ(TierForOutcome(DeliveryOutcome::kEndpointDown), Tier::kCloud);
}

TEST(HierarchyTest, EndToEndIsProductWithoutRedundancy) {
  TierAvailability a;
  a.device = 0.9;
  a.access = 0.9;
  a.gateway = 0.9;
  a.backhaul = 0.9;
  a.cloud = 0.9;
  FanoutSpec fanout;
  fanout.redundancy_gateways = 1;
  fanout.redundancy_backhauls = 1;
  EXPECT_NEAR(EndToEndAvailability(a, fanout), std::pow(0.9, 5), 1e-12);
}

TEST(HierarchyTest, RedundancyImprovesAvailability) {
  TierAvailability a;
  a.gateway = 0.9;
  FanoutSpec one;
  FanoutSpec two = one;
  two.redundancy_gateways = 2;
  EXPECT_GT(EndToEndAvailability(a, two), EndToEndAvailability(a, one));
}

TEST(HierarchyTest, TwoGatewaysNearlyEliminateGatewayTerm) {
  // Paper Figure 1: "Smart devices rely on one or two gateways" — with two
  // 95%-available gateways, the gateway term is 1-(0.05)^2 = 99.75%.
  TierAvailability a;
  a.device = 1.0;
  a.access = 1.0;
  a.gateway = 0.95;
  a.backhaul = 1.0;
  a.cloud = 1.0;
  FanoutSpec fanout;
  fanout.redundancy_gateways = 2;
  EXPECT_NEAR(EndToEndAvailability(a, fanout), 0.9975, 1e-9);
}

TEST(HierarchyTest, BlastRadiusGrowsUpTheHierarchy) {
  FanoutSpec fanout;
  fanout.devices_per_gateway = 1000;
  fanout.gateways_per_backhaul = 1000;
  EXPECT_EQ(BlastRadius(Tier::kDevice, fanout), 1u);
  EXPECT_EQ(BlastRadius(Tier::kGateway, fanout), 1000u);
  EXPECT_EQ(BlastRadius(Tier::kBackhaul, fanout), 1000000u);
  EXPECT_GE(BlastRadius(Tier::kCloud, fanout), BlastRadius(Tier::kBackhaul, fanout));
}

TEST(HierarchyTest, ZeroRedundancyTreatedAsOne) {
  TierAvailability a;
  FanoutSpec fanout;
  fanout.redundancy_gateways = 0;
  EXPECT_GT(EndToEndAvailability(a, fanout), 0.0);
}

}  // namespace
}  // namespace centsim
