#include "src/net/commissioning.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

class CommissioningFixture : public ::testing::Test {
 protected:
  CommissioningFixture()
      : sim_(3),
        backhaul_("bh", {SimTime::Years(1000), SimTime::Hours(1)}, RandomStream(1)) {}

  Gateway MakeGateway(const std::string& name, bool vendor_locked = false,
                      const std::string& vendor = "") {
    GatewayConfig cfg;
    cfg.name = name;
    cfg.vendor_locked = vendor_locked;
    cfg.vendor = vendor;
    return Gateway(sim_, cfg, SeriesSystem::RaspberryPiGateway());
  }

  Simulation sim_;
  Backhaul backhaul_;
};

TEST_F(CommissioningFixture, TtpPathUsedWhenOutgoingAlive) {
  Gateway old_gw = MakeGateway("old");
  old_gw.AttachBackhaul(&backhaul_);
  old_gw.Deploy();
  Gateway new_gw = MakeGateway("new");
  const auto result = CommissionGateway(sim_, new_gw, &old_gw);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.method, CommissionMethod::kTrustedThirdParty);
  EXPECT_LT(result.duration, SimTime::Hours(1));
  EXPECT_EQ(new_gw.backhaul(), &backhaul_);  // Inherited via TTP.
}

TEST_F(CommissioningFixture, FreshBootstrapWhenNoOutgoing) {
  Gateway new_gw = MakeGateway("new");
  new_gw.AttachBackhaul(&backhaul_);
  const auto result = CommissionGateway(sim_, new_gw, nullptr);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.method, CommissionMethod::kFreshSecureBootstrap);
}

TEST_F(CommissioningFixture, FreshBootstrapWhenOutgoingDead) {
  Gateway old_gw = MakeGateway("old");  // Never deployed: not operational.
  Gateway new_gw = MakeGateway("new");
  new_gw.AttachBackhaul(&backhaul_);
  const auto result = CommissionGateway(sim_, new_gw, &old_gw);
  EXPECT_EQ(result.method, CommissionMethod::kFreshSecureBootstrap);
}

TEST_F(CommissioningFixture, FailsWithoutAnyBackhaul) {
  Gateway new_gw = MakeGateway("new");
  const auto result = CommissionGateway(sim_, new_gw, nullptr);
  EXPECT_FALSE(result.success);
}

std::vector<DeviceBinding> MixedFleet() {
  return {
      {1, DeviceCoupling::kStandardsCompliant, ""},
      {2, DeviceCoupling::kStandardsCompliant, ""},
      {3, DeviceCoupling::kInstanceBound, ""},
      {4, DeviceCoupling::kVendorBound, "acme"},
      {5, DeviceCoupling::kVendorBound, "globex"},
  };
}

TEST_F(CommissioningFixture, StandardsCompliantAlwaysMigrate) {
  Gateway old_gw = MakeGateway("old");
  Gateway new_gw = MakeGateway("new");
  new_gw.Deploy();
  // Outgoing gateway dead: instance-bound devices strand.
  const auto report = MigrateDevices(sim_, &old_gw, new_gw, MixedFleet());
  // Standards (2) + both vendor-bound (open incoming gateway) = 4.
  EXPECT_EQ(report.migrated, 4u);
  EXPECT_EQ(report.stranded, 1u);
  EXPECT_EQ(report.stranded_ids, std::vector<uint32_t>{3});
}

TEST_F(CommissioningFixture, TtpRescuesInstanceBound) {
  Gateway old_gw = MakeGateway("old");
  old_gw.Deploy();
  Gateway new_gw = MakeGateway("new");
  new_gw.Deploy();
  const auto report = MigrateDevices(sim_, &old_gw, new_gw, MixedFleet());
  EXPECT_EQ(report.migrated, 5u);
  EXPECT_EQ(report.stranded, 0u);
}

TEST_F(CommissioningFixture, VendorLockStrandsForeignDevices) {
  Gateway old_gw = MakeGateway("old");
  old_gw.Deploy();
  Gateway new_gw = MakeGateway("new", /*vendor_locked=*/true, "acme");
  new_gw.Deploy();
  const auto report = MigrateDevices(sim_, &old_gw, new_gw, MixedFleet());
  // Standards devices: migrate (coupling independent of gateway lock in
  // this model — they speak the standard the gateway must still route).
  // Instance-bound: TTP alive -> migrate. Vendor "globex": stranded.
  EXPECT_EQ(report.stranded, 1u);
  EXPECT_EQ(report.stranded_ids, std::vector<uint32_t>{5});
  EXPECT_NEAR(report.StrandedFraction(), 0.2, 1e-12);
}

}  // namespace
}  // namespace centsim
