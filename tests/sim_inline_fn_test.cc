// InlineFn: the generalized small-buffer callable behind fleet failure
// hooks and device callbacks — captures up to the inline budget must never
// heap-allocate, larger ones fall back to the heap, and moved-from
// callables empty out cleanly.

#include "src/sim/inline_fn.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "src/sim/alloc_probe.h"

namespace centsim {
namespace {

TEST(InlineFnTest, DefaultIsEmpty) {
  InlineFn<int()> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFnTest, InvokesWithArgumentsAndReturn) {
  InlineFn<int(int, int)> fn = [](int a, int b) { return a * 10 + b; };
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_EQ(fn(4, 2), 42);
}

TEST(InlineFnTest, SmallCapturesStayInline) {
  int target = 0;
  int* p = &target;
  uint64_t a = 1, b = 2, c = 3;  // 32 bytes of capture: inside the buffer.
  InlineFn<void()> fn = [p, a, b, c] { *p = static_cast<int>(a + b + c); };
  EXPECT_TRUE(fn.is_inline());
  fn();
  EXPECT_EQ(target, 6);
}

TEST(InlineFnTest, SmallCapturesDoNotAllocate) {
  if (!AllocProbeEnabled()) {
    GTEST_SKIP() << "allocation probe disabled (sanitizer build)";
  }
  int sink = 0;
  int* p = &sink;
  AllocScope scope;
  InlineFn<void()> fn = [p] { ++*p; };
  fn();
  InlineFn<void()> moved = std::move(fn);
  moved();
  EXPECT_EQ(scope.delta(), 0u);
  EXPECT_EQ(sink, 2);
}

TEST(InlineFnTest, OversizedCapturesFallBackToHeap) {
  struct Big {
    char bytes[128] = {};
  };
  Big big;
  big.bytes[0] = 7;
  InlineFn<int()> fn = [big] { return static_cast<int>(big.bytes[0]); };
  EXPECT_FALSE(fn.is_inline());
  EXPECT_EQ(fn(), 7);
}

TEST(InlineFnTest, MoveTransfersStateAndEmptiesSource) {
  auto counter = std::make_shared<int>(0);
  InlineFn<void()> fn = [counter] { ++*counter; };
  InlineFn<void()> other = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(other));
  other();
  EXPECT_EQ(*counter, 1);
  // Move assignment over a live target destroys the old callable.
  InlineFn<void()> third = [counter] { *counter += 10; };
  third = std::move(other);
  third();
  EXPECT_EQ(*counter, 2);
}

TEST(InlineFnTest, NullptrAssignmentClears) {
  InlineFn<void()> fn = [] {};
  EXPECT_TRUE(static_cast<bool>(fn));
  fn = nullptr;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFnTest, DestroysCaptureExactlyOnce) {
  auto token = std::make_shared<int>(1);
  EXPECT_EQ(token.use_count(), 1);
  {
    InlineFn<void()> fn = [token] {};
    EXPECT_EQ(token.use_count(), 2);
    InlineFn<void()> moved = std::move(fn);
    EXPECT_EQ(token.use_count(), 2);  // Moved, not copied.
  }
  EXPECT_EQ(token.use_count(), 1);
}

}  // namespace
}  // namespace centsim
