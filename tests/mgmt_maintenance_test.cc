#include "src/mgmt/maintenance.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace centsim {
namespace {

TEST(MaintenanceTest, RepairCompletesAfterResponseAndWork) {
  Simulation sim(1);
  MaintenancePolicy policy;
  MaintenanceCrew crew(sim, policy);
  const SimTime done = crew.RequestRepair(SimTime::Days(100));
  EXPECT_GT(done, SimTime::Days(100));
  EXPECT_LT(done, SimTime::Days(200));
  EXPECT_EQ(crew.repairs_completed(), 1u);
}

TEST(MaintenanceTest, DisabledCrewRefuses) {
  Simulation sim(1);
  MaintenancePolicy policy;
  policy.enabled = false;
  MaintenanceCrew crew(sim, policy);
  EXPECT_EQ(crew.RequestRepair(SimTime::Days(1)), SimTime::Max());
  EXPECT_EQ(crew.repairs_refused(), 1u);
}

TEST(MaintenanceTest, AnnualBudgetDefersIntoLaterYears) {
  Simulation sim(2);
  MaintenancePolicy policy;
  policy.annual_budget_hours = 10.0;
  policy.mean_repair = SimTime::Hours(3);
  MaintenanceCrew crew(sim, policy);
  SimTime latest;
  int refused = 0;
  for (int i = 0; i < 50; ++i) {
    const SimTime done = crew.RequestRepair(SimTime::Days(i));
    if (done == SimTime::Max()) {
      // An Exponential(3 h) draw above the whole 10 h budget is refused
      // outright (~3.6% of draws); everything else must be scheduled.
      ++refused;
      continue;
    }
    latest = std::max(latest, done);
  }
  EXPECT_LT(refused, 10);
  // ~3-4 repairs fit per 10-hour year; 50 repairs spill years ahead.
  EXPECT_GT(crew.repairs_deferred(), 30u);
  EXPECT_GT(latest, SimTime::Years(5));
  // No year's ledger exceeds its budget.
  for (uint32_t y = 0; y < 30; ++y) {
    EXPECT_LE(crew.HoursInYear(y), 10.0 + 1e-9);
  }
}

TEST(MaintenanceTest, OversizedJobRefused) {
  Simulation sim(7);
  MaintenancePolicy policy;
  policy.annual_budget_hours = 0.001;  // Any realistic draw exceeds this.
  MaintenanceCrew crew(sim, policy);
  EXPECT_EQ(crew.RequestRepair(SimTime::Days(1)), SimTime::Max());
  EXPECT_EQ(crew.repairs_refused(), 1u);
}

TEST(MaintenanceTest, BudgetResetsEachYear) {
  Simulation sim(3);
  MaintenancePolicy policy;
  policy.annual_budget_hours = 5.0;
  policy.mean_repair = SimTime::Hours(4);
  MaintenanceCrew crew(sim, policy);
  // Exhaust year 0.
  for (int i = 0; i < 10; ++i) {
    crew.RequestRepair(SimTime::Days(10 + i));
  }
  // Year 1 has fresh budget.
  const SimTime done = crew.RequestRepair(SimTime::Years(1) + SimTime::Days(1));
  EXPECT_LT(done, SimTime::Max());
}

TEST(MaintenanceTest, HoursAccumulate) {
  Simulation sim(4);
  MaintenancePolicy policy;
  MaintenanceCrew crew(sim, policy);
  crew.RequestRepair(SimTime::Days(1));
  crew.RequestRepair(SimTime::Days(2));
  EXPECT_GT(crew.total_hours(), 0.0);
  EXPECT_DOUBLE_EQ(crew.TotalCostUsd(), crew.total_hours() * policy.hourly_rate_usd);
}

TEST(MaintenanceTest, RepairPolicyAdapterWorks) {
  Simulation sim(5);
  MaintenancePolicy policy;
  MaintenanceCrew crew(sim, policy);
  auto repair = crew.AsRepairPolicy();
  const SimTime done = repair(SimTime::Days(5));
  EXPECT_GT(done, SimTime::Days(5));
  EXPECT_EQ(crew.repairs_completed(), 1u);
}

}  // namespace
}  // namespace centsim
