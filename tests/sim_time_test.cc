#include "src/sim/time.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

TEST(SimTimeTest, DefaultIsZero) {
  SimTime t;
  EXPECT_EQ(t.micros(), 0);
  EXPECT_DOUBLE_EQ(t.ToSeconds(), 0.0);
}

TEST(SimTimeTest, UnitConstructorsAgree) {
  EXPECT_EQ(SimTime::Millis(1).micros(), 1000);
  EXPECT_EQ(SimTime::Seconds(1).micros(), 1000000);
  EXPECT_EQ(SimTime::Minutes(1).micros(), 60 * 1000000LL);
  EXPECT_EQ(SimTime::Hours(1).micros(), 3600 * 1000000LL);
  EXPECT_EQ(SimTime::Days(1).micros(), 86400 * 1000000LL);
  EXPECT_EQ(SimTime::Weeks(1).micros(), 7 * 86400 * 1000000LL);
}

TEST(SimTimeTest, JulianYearConvention) {
  EXPECT_DOUBLE_EQ(SimTime::Years(1).ToDays(), 365.25);
  EXPECT_NEAR(SimTime::Years(100).ToYears(), 100.0, 1e-9);
}

TEST(SimTimeTest, CenturyFitsWithHeadroom) {
  const SimTime century = SimTime::Years(100);
  EXPECT_GT(century.micros(), 0);
  // 1000x a century still fits in the representation.
  EXPECT_GT((century * 1000.0).micros(), 0);
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::Hours(2);
  const SimTime b = SimTime::Minutes(30);
  EXPECT_EQ((a + b).micros(), SimTime::Minutes(150).micros());
  EXPECT_EQ((a - b).micros(), SimTime::Minutes(90).micros());
  EXPECT_EQ((b * 4.0).micros(), a.micros());
}

TEST(SimTimeTest, CompoundAssignment) {
  SimTime t = SimTime::Seconds(10);
  t += SimTime::Seconds(5);
  EXPECT_DOUBLE_EQ(t.ToSeconds(), 15.0);
  t -= SimTime::Seconds(1);
  EXPECT_DOUBLE_EQ(t.ToSeconds(), 14.0);
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime::Seconds(1), SimTime::Seconds(2));
  EXPECT_LE(SimTime::Hours(24), SimTime::Days(1));
  EXPECT_GE(SimTime::Days(1), SimTime::Hours(24));
  EXPECT_EQ(SimTime::Days(7), SimTime::Weeks(1));
}

TEST(SimTimeTest, MaxIsSentinel) {
  EXPECT_GT(SimTime::Max(), SimTime::Years(100000));
  EXPECT_EQ(SimTime::Max().ToString(), "inf");
}

TEST(SimTimeTest, ToStringPicksUnits) {
  EXPECT_EQ(SimTime::Years(3).ToString(), "3.00y");
  EXPECT_EQ(SimTime::Days(2).ToString(), "2.00d");
  EXPECT_EQ(SimTime::Hours(5).ToString(), "5.00h");
  EXPECT_EQ(SimTime::Seconds(2.5).ToString(), "2.500s");
  EXPECT_EQ(SimTime::Millis(12).ToString(), "12.000ms");
  EXPECT_EQ(SimTime::Micros(7).ToString(), "7us");
}

TEST(SimTimeTest, ConversionRoundTrips) {
  for (double v : {0.001, 0.5, 1.0, 17.25, 1234.75}) {
    EXPECT_NEAR(SimTime::Hours(v).ToHours(), v, 1e-9);
    EXPECT_NEAR(SimTime::Days(v).ToDays(), v, 1e-9);
    EXPECT_NEAR(SimTime::Years(v).ToYears(), v, 1e-9);
  }
}

}  // namespace
}  // namespace centsim
