// Shard-engine substrate tests: the Scheduler's barrier API, the SPSC
// inbox/bus fabric, and the windowed-barrier coordinator over fake lanes.
// These pin the invariants the sharded drivers are built on — quiescence
// at barriers, exact send-order delivery, plane isolation, and barrier
// placement against the checkpoint grid.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/sim/scheduler.h"
#include "src/sim/shard_bus.h"
#include "src/sim/shard_coordinator.h"
#include "src/sim/thread_pool.h"
#include "src/sim/time.h"

namespace centsim {
namespace {

constexpr int64_t kInfUs = std::numeric_limits<int64_t>::max();

// --- Scheduler barrier API ------------------------------------------------

TEST(SchedulerBarrierTest, EarliestPendingEmptyIsSentinel) {
  Scheduler sched;
  EXPECT_EQ(sched.EarliestPending().micros(), kInfUs);
}

TEST(SchedulerBarrierTest, DrainToBarrierRunsInclusiveAndLeavesClockAtBarrier) {
  Scheduler sched;
  std::vector<int> ran;
  sched.ScheduleAt(SimTime::Micros(10), [&] { ran.push_back(10); });
  sched.ScheduleAt(SimTime::Micros(20), [&] { ran.push_back(20); });
  sched.ScheduleAt(SimTime::Micros(21), [&] { ran.push_back(21); });

  const uint64_t n = sched.DrainToBarrier(SimTime::Micros(20));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(ran, (std::vector<int>{10, 20}));  // Inclusive of the barrier.
  EXPECT_EQ(sched.Now().micros(), 20);
  // Quiescent: everything still queued is strictly later.
  EXPECT_EQ(sched.EarliestPending().micros(), 21);

  sched.DrainToBarrier(SimTime::Micros(100));
  EXPECT_EQ(ran.size(), 3u);
  EXPECT_EQ(sched.Now().micros(), 100);
  EXPECT_EQ(sched.EarliestPending().micros(), kInfUs);
}

TEST(SchedulerBarrierTest, EarliestPendingSeesHeapLadderAndFarOccupancy) {
  Scheduler sched;
  // Push well past kDirectLoadMax (512) so the staged front-end engages:
  // entries land in ladder rungs and the far stage, not just the heap.
  constexpr int kEvents = 4096;
  int ran = 0;
  for (int i = 0; i < kEvents; ++i) {
    // Spread over ~11 years so the far stage is exercised too.
    sched.ScheduleAt(SimTime::Hours(1 + 24ll * i), [&] { ++ran; });
  }
  EXPECT_EQ(sched.EarliestPending(), SimTime::Hours(1));

  // Drain half; the probe must track the frontier wherever it sits.
  const SimTime mid = SimTime::Hours(1 + 24ll * (kEvents / 2));
  sched.DrainToBarrier(mid);
  EXPECT_EQ(ran, kEvents / 2 + 1);
  EXPECT_GT(sched.EarliestPending(), mid);
  EXPECT_LT(sched.EarliestPending().micros(), kInfUs);

  sched.DrainToBarrier(SimTime::Hours(1 + 24ll * kEvents));
  EXPECT_EQ(ran, kEvents);
  EXPECT_EQ(sched.EarliestPending().micros(), kInfUs);
}

TEST(SchedulerBarrierTest, StaleCancelledEntryPinsBoundEarlyNeverLate) {
  Scheduler sched;
  int ran = 0;
  const EventId id = sched.ScheduleAt(SimTime::Micros(50), [&] { ++ran; });
  sched.ScheduleAt(SimTime::Micros(80), [&] { ++ran; });
  ASSERT_TRUE(sched.Cancel(id));
  // The cancelled entry is still queued (lazy cancellation); the probe may
  // report 50 — early is safe for a lookahead bound — but never past the
  // earliest live event.
  EXPECT_LE(sched.EarliestPending().micros(), 80);
  sched.DrainToBarrier(SimTime::Micros(100));
  EXPECT_EQ(ran, 1);
}

TEST(SchedulerBarrierTest, DrainToBarrierRunsSameTimestampFloodToQuiescence) {
  Scheduler sched;
  // Events that chain more work at the SAME timestamp: the barrier drain
  // must finish the whole cascade, not stop at the first quiescence probe.
  int ran = 0;
  std::function<void()> chain = [&] {
    ++ran;
    if (ran < 100) {
      sched.ScheduleAt(sched.Now(), chain);
    }
  };
  sched.ScheduleAt(SimTime::Micros(7), chain);
  sched.DrainToBarrier(SimTime::Micros(7));
  EXPECT_EQ(ran, 100);
  EXPECT_EQ(sched.Now().micros(), 7);
  EXPECT_EQ(sched.EarliestPending().micros(), kInfUs);
}

// --- SPSC inbox and bus ---------------------------------------------------

TEST(SpscInboxTest, PreservesPushOrderAcrossRingAndSpill) {
  SpscInbox inbox(/*capacity=*/8);
  constexpr uint32_t kMessages = 50;  // Ring (8) + spill (42).
  for (uint32_t i = 0; i < kMessages; ++i) {
    inbox.Push(ShardMessage{int64_t(i), i, i, i});
  }
  EXPECT_EQ(inbox.pushed(), kMessages);
  EXPECT_GT(inbox.spilled(), 0u);

  std::vector<uint32_t> got;
  inbox.Drain([&](const ShardMessage& m) { got.push_back(m.kind); });
  ASSERT_EQ(got.size(), kMessages);
  for (uint32_t i = 0; i < kMessages; ++i) {
    EXPECT_EQ(got[i], i);
  }

  // Reusable after a drain; spill is cleared.
  inbox.Push(ShardMessage{1, 99, 0, 0});
  got.clear();
  inbox.Drain([&](const ShardMessage& m) { got.push_back(m.kind); });
  EXPECT_EQ(got, (std::vector<uint32_t>{99}));
}

TEST(ShardBusTest, PlaneIsolationAndFixedMergeOrder) {
  ShardBus bus(3);
  // Window w: lanes publish onto the write plane.
  bus.Send(0, 2, ShardMessage{10, 1, 0, 0});
  bus.Send(1, 2, ShardMessage{11, 2, 0, 0});

  // Same window: the read plane (previous window) is empty.
  int drained = 0;
  bus.DrainInto(2, [&](const ShardMessage&) { ++drained; });
  EXPECT_EQ(drained, 0);

  // Barrier: flip. Now window w's messages are on the read plane, drained
  // in ascending source order regardless of send interleaving.
  bus.FlipPlanes();
  std::vector<uint32_t> kinds;
  bus.DrainInto(2, [&](const ShardMessage& m) { kinds.push_back(m.kind); });
  EXPECT_EQ(kinds, (std::vector<uint32_t>{1, 2}));

  const ShardBus::Stats stats = bus.TotalStats();
  EXPECT_EQ(stats.pushed, 2u);
  EXPECT_EQ(stats.spilled, 0u);
}

TEST(ShardBusTest, BroadcastSkipsSelf) {
  ShardBus bus(3);
  bus.Broadcast(1, ShardMessage{5, 7, 0, 0});
  bus.FlipPlanes();
  for (uint32_t dst = 0; dst < 3; ++dst) {
    int got = 0;
    bus.DrainInto(dst, [&](const ShardMessage&) { ++got; });
    EXPECT_EQ(got, dst == 1 ? 0 : 1) << "dst " << dst;
  }
}

// --- Coordinator over fake lanes -----------------------------------------

// A lane that runs a fixed schedule of local events and records every
// (barrier, cover) window the coordinator hands it.
class RecordingLane final : public ShardLane {
 public:
  RecordingLane(std::vector<int64_t> event_times_us, ShardBus* bus, uint32_t lane,
                uint32_t lanes)
      : event_times_us_(std::move(event_times_us)), bus_(bus), lane_(lane), lanes_(lanes) {}

  void Setup(SimTime cover) override {
    setup_cover_us_ = cover.micros();
    for (const int64_t t : event_times_us_) {
      sched_.ScheduleAt(SimTime::Micros(t), [this, t] { executed_at_.push_back(t); });
    }
  }

  SimTime NextBound() override { return sched_.EarliestPending(); }

  void RunWindow(SimTime barrier, SimTime cover) override {
    if (bus_ != nullptr) {
      bus_->DrainInto(lane_, [&](const ShardMessage& m) {
        received_.push_back(m);
        // Conservative contract: a drained message is strictly in this
        // lane's future.
        EXPECT_GT(m.at_us, sched_.Now().micros());
      });
    }
    windows_.push_back({barrier.micros(), cover.micros()});
    sched_.DrainToBarrier(barrier);
  }

  void AtCheckpointBarrier(SimTime barrier) override {
    checkpoints_us_.push_back(barrier.micros());
  }

  Scheduler& sched() override { return sched_; }

  struct Window {
    int64_t barrier_us;
    int64_t cover_us;
  };

  Scheduler sched_;
  std::vector<int64_t> event_times_us_;
  ShardBus* bus_;
  uint32_t lane_;
  uint32_t lanes_;
  int64_t setup_cover_us_ = -1;
  std::vector<int64_t> executed_at_;
  std::vector<Window> windows_;
  std::vector<int64_t> checkpoints_us_;
  std::vector<ShardMessage> received_;
};

TEST(ShardCoordinatorTest, LanesEndAtHorizonAndCountExecuted) {
  RecordingLane a({100, 2500, 9000}, nullptr, 0, 2);
  RecordingLane b({300, 7000}, nullptr, 1, 2);
  std::vector<ShardLane*> lanes{&a, &b};
  ThreadPool pool(2);

  ShardWindowOptions opts;
  opts.horizon = SimTime::Micros(10000);
  opts.window = SimTime::Micros(1000);
  const uint64_t executed = RunShardWindows(pool, lanes, opts);

  EXPECT_EQ(executed, 5u);
  EXPECT_EQ(a.sched_.Now().micros(), 10000);
  EXPECT_EQ(b.sched_.Now().micros(), 10000);
  EXPECT_EQ(a.executed_at_, (std::vector<int64_t>{100, 2500, 9000}));
  EXPECT_EQ(b.executed_at_, (std::vector<int64_t>{300, 7000}));
  // Every window's cover extends one full window past its barrier (clamped
  // at the horizon), and barriers are monotone.
  for (const auto& w : a.windows_) {
    EXPECT_EQ(w.cover_us, std::min<int64_t>(w.barrier_us + 1000, 10000));
  }
  for (size_t i = 1; i < a.windows_.size(); ++i) {
    EXPECT_GT(a.windows_[i].barrier_us, a.windows_[i - 1].barrier_us);
  }
  EXPECT_EQ(a.windows_.back().barrier_us, 10000);
}

TEST(ShardCoordinatorTest, BarriersSkipQuiescentStretchesButStayBelowNextBound) {
  // One lane with a huge gap: after draining t=100, the next barrier may
  // jump ahead, but never to or past the earliest pending event minus the
  // one-microsecond consistency margin.
  RecordingLane a({100, 1000000}, nullptr, 0, 1);
  std::vector<ShardLane*> lanes{&a};
  ThreadPool pool(1);

  ShardWindowOptions opts;
  opts.horizon = SimTime::Micros(2000000);
  opts.window = SimTime::Micros(10);
  RunShardWindows(pool, lanes, opts);

  EXPECT_EQ(a.executed_at_, (std::vector<int64_t>{100, 1000000}));
  // Far fewer windows than the 200000 a fixed 10us cadence would take.
  EXPECT_LT(a.windows_.size(), 50u);
  // No barrier lands in the open gap at or past a pending event's time
  // while that event is still pending: the skip target is bound - 1.
  for (const auto& w : a.windows_) {
    EXPECT_TRUE(w.barrier_us < 1000000 || w.barrier_us >= 1000000)
        << "vacuous";  // Structure check below is the real assertion.
  }
  bool saw_pre_event_barrier = false;
  for (const auto& w : a.windows_) {
    if (w.barrier_us == 1000000 - 1) {
      saw_pre_event_barrier = true;
    }
  }
  EXPECT_TRUE(saw_pre_event_barrier);
}

TEST(ShardCoordinatorTest, CheckpointGridAlwaysGetsABarrier) {
  RecordingLane a({100, 950000}, nullptr, 0, 1);
  std::vector<ShardLane*> lanes{&a};
  ThreadPool pool(1);

  std::vector<int64_t> hooks_us;
  ShardWindowOptions opts;
  opts.horizon = SimTime::Micros(1000000);
  opts.window = SimTime::Micros(1000);
  opts.checkpoint_every = SimTime::Micros(300000);
  opts.on_checkpoint = [&](SimTime at) { hooks_us.push_back(at.micros()); };
  RunShardWindows(pool, lanes, opts);

  // Grid points strictly below the horizon each get a checkpoint, even
  // though the lane is quiescent across most of them (skips clamp to the
  // grid).
  EXPECT_EQ(hooks_us, (std::vector<int64_t>{300000, 600000, 900000}));
  EXPECT_EQ(a.checkpoints_us_, hooks_us);
  EXPECT_EQ(a.executed_at_, (std::vector<int64_t>{100, 950000}));
}

TEST(ShardCoordinatorTest, BusMessagesArriveOneWindowLater) {
  // Lane 0 broadcasts a message during window w; lane 1 must observe it at
  // the start of window w+1, timestamped in its future.
  ShardBus bus(2);

  class SenderLane final : public ShardLane {
   public:
    SenderLane(ShardBus* bus, uint32_t lane) : bus_(bus), lane_(lane) {}
    void Setup(SimTime cover) override {
      // Publish an effect two windows out, like a gateway owner would.
      bus_->Broadcast(lane_, ShardMessage{cover.micros() + 500, 1, 42, 0});
      sched_.ScheduleAt(SimTime::Micros(1), [] {});
    }
    SimTime NextBound() override { return sched_.EarliestPending(); }
    void RunWindow(SimTime barrier, SimTime cover) override {
      bus_->DrainInto(lane_, [](const ShardMessage&) {});
      sched_.DrainToBarrier(barrier);
      (void)cover;
    }
    Scheduler& sched() override { return sched_; }
    Scheduler sched_;
    ShardBus* bus_;
    uint32_t lane_;
  };

  SenderLane sender(&bus, 0);
  RecordingLane receiver({200}, &bus, 1, 2);
  std::vector<ShardLane*> lanes{&sender, &receiver};
  ThreadPool pool(2);

  ShardWindowOptions opts;
  opts.horizon = SimTime::Micros(5000);
  opts.window = SimTime::Micros(1000);
  opts.on_barrier = [&] { bus.FlipPlanes(); };
  RunShardWindows(pool, lanes, opts);

  ASSERT_EQ(receiver.received_.size(), 1u);
  EXPECT_EQ(receiver.received_[0].a, 42u);
}

TEST(ShardCoordinatorTest, PublishesLaneAndReplicaProgress) {
  RecordingLane a({100, 4000}, nullptr, 0, 1);
  std::vector<ShardLane*> lanes{&a};
  ThreadPool pool(1);

  ProgressCell lane_cell;
  ProgressCell replica_cell;
  ShardWindowOptions opts;
  opts.horizon = SimTime::Micros(5000);
  opts.window = SimTime::Micros(1000);
  opts.progress = {&lane_cell};
  opts.replica_progress = &replica_cell;
  RunShardWindows(pool, lanes, opts);

  const ProgressCell::View lane_view = lane_cell.Load();
  EXPECT_TRUE(lane_view.done);
  EXPECT_EQ(lane_view.executed, 2u);
  const ProgressCell::View replica_view = replica_cell.Load();
  EXPECT_TRUE(replica_view.done);
  EXPECT_EQ(replica_view.sim_us, 5000);
}

}  // namespace
}  // namespace centsim
