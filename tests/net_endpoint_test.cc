#include "src/net/cloud_endpoint.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

UplinkPacket From(uint32_t device) {
  UplinkPacket pkt;
  pkt.device_id = device;
  return pkt;
}

TEST(EndpointTest, RecordsPackets) {
  CloudEndpoint ep;
  EXPECT_TRUE(ep.Record(From(1), SimTime::Hours(1)));
  EXPECT_TRUE(ep.Record(From(2), SimTime::Hours(2)));
  EXPECT_EQ(ep.total_packets(), 2u);
  EXPECT_EQ(ep.DeviceCount(), 2u);
  EXPECT_EQ(ep.PacketsFrom(1), 1u);
  EXPECT_EQ(ep.PacketsFrom(99), 0u);
}

TEST(EndpointTest, LastSeenTracks) {
  CloudEndpoint ep;
  ep.Record(From(1), SimTime::Hours(1));
  ep.Record(From(1), SimTime::Hours(5));
  EXPECT_EQ(ep.LastSeen(1), SimTime::Hours(5));
  EXPECT_EQ(ep.LastSeen(2), SimTime());
}

TEST(EndpointTest, DownEndpointLosesPackets) {
  CloudEndpoint ep;
  ep.SetOperational(false);
  EXPECT_FALSE(ep.Record(From(1), SimTime::Hours(1)));
  EXPECT_EQ(ep.total_packets(), 0u);
  EXPECT_EQ(ep.packets_lost_down(), 1u);
}

TEST(EndpointTest, WeeklyUptimePerfectWhenEveryWeekHasData) {
  CloudEndpoint ep;
  for (int w = 0; w < 52; ++w) {
    ep.Record(From(1), SimTime::Weeks(w) + SimTime::Days(2));
  }
  EXPECT_DOUBLE_EQ(ep.WeeklyUptime(SimTime::Weeks(52)), 1.0);
  EXPECT_EQ(ep.LongestGapWeeks(SimTime::Weeks(52)), 0u);
}

TEST(EndpointTest, WeeklyUptimeCountsGaps) {
  CloudEndpoint ep;
  // Data in weeks 0-9 and 20-51; dark for weeks 10-19.
  for (int w = 0; w < 52; ++w) {
    if (w < 10 || w >= 20) {
      ep.Record(From(1), SimTime::Weeks(w) + SimTime::Days(1));
    }
  }
  EXPECT_NEAR(ep.WeeklyUptime(SimTime::Weeks(52)), 42.0 / 52.0, 1e-12);
  EXPECT_EQ(ep.LongestGapWeeks(SimTime::Weeks(52)), 10u);
}

TEST(EndpointTest, UptimeOnlyCountsElapsedWeeks) {
  CloudEndpoint ep;
  ep.Record(From(1), SimTime::Days(1));
  // Half a week elapsed: zero complete weeks => vacuous 1.0.
  EXPECT_DOUBLE_EQ(ep.WeeklyUptime(SimTime::Days(3)), 1.0);
  EXPECT_DOUBLE_EQ(ep.WeeklyUptime(SimTime::Weeks(1)), 1.0);
}

TEST(EndpointTest, PerDeviceWeeklyUptime) {
  CloudEndpoint ep;
  for (int w = 0; w < 10; ++w) {
    ep.Record(From(1), SimTime::Weeks(w) + SimTime::Hours(1));
    if (w % 2 == 0) {
      ep.Record(From(2), SimTime::Weeks(w) + SimTime::Hours(2));
    }
  }
  EXPECT_DOUBLE_EQ(ep.DeviceWeeklyUptime(1, SimTime::Weeks(10)), 1.0);
  EXPECT_DOUBLE_EQ(ep.DeviceWeeklyUptime(2, SimTime::Weeks(10)), 0.5);
  EXPECT_DOUBLE_EQ(ep.DeviceWeeklyUptime(3, SimTime::Weeks(10)), 0.0);
}

TEST(EndpointTest, GroupUptimeIsUnionOfDevices) {
  CloudEndpoint ep;
  // Device 1 covers even weeks, device 2 covers odd weeks.
  for (int w = 0; w < 20; ++w) {
    ep.Record(From(w % 2 == 0 ? 1 : 2), SimTime::Weeks(w) + SimTime::Hours(1));
  }
  EXPECT_DOUBLE_EQ(ep.DeviceWeeklyUptime(1, SimTime::Weeks(20)), 0.5);
  EXPECT_DOUBLE_EQ(ep.GroupWeeklyUptime({1, 2}, SimTime::Weeks(20)), 1.0);
  EXPECT_DOUBLE_EQ(ep.GroupWeeklyUptime({1}, SimTime::Weeks(20)), 0.5);
  EXPECT_DOUBLE_EQ(ep.GroupWeeklyUptime({}, SimTime::Weeks(20)), 0.0);
}

TEST(EndpointTest, RecoveryAfterOutageResumesCounting) {
  CloudEndpoint ep;
  ep.Record(From(1), SimTime::Weeks(0) + SimTime::Days(1));
  ep.SetOperational(false);
  EXPECT_FALSE(ep.Record(From(1), SimTime::Weeks(1) + SimTime::Days(1)));
  ep.SetOperational(true);
  EXPECT_TRUE(ep.Record(From(1), SimTime::Weeks(2) + SimTime::Days(1)));
  EXPECT_NEAR(ep.WeeklyUptime(SimTime::Weeks(3)), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace centsim
