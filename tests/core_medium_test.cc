// Medium API redesign coverage: Offer/DeliveryReport, the MediumConfig
// fidelity knobs (grid buckets, SIR capture, CAD), class B/C device
// behavior, and the snapshot round trip for medium-owned state + timers.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/device.h"
#include "src/core/fleet.h"
#include "src/core/network_fabric.h"
#include "src/energy/harvester.h"
#include "src/net/backhaul.h"
#include "src/snapshot/timer_table.h"

namespace centsim {
namespace {

class MediumFixture : public ::testing::Test {
 protected:
  MediumFixture()
      : sim_(29),
        fabric_(sim_),
        backhaul_("bh", {SimTime::Years(1000), SimTime::Hours(1)}, RandomStream(2)) {
    fabric_.SetEndpoint(&endpoint_);
  }

  Gateway& AddGateway(RadioTech tech, double x, double y, uint32_t id,
                      NetworkFabric* fabric = nullptr) {
    GatewayConfig cfg;
    cfg.id = id;
    cfg.tech = tech;
    cfg.x_m = x;
    cfg.y_m = y;
    cfg.name = "gw-" + std::to_string(id);
    gateways_.push_back(
        std::make_unique<Gateway>(sim_, cfg, SeriesSystem::RaspberryPiGateway()));
    Gateway& gw = *gateways_.back();
    gw.AttachBackhaul(&backhaul_);
    gw.Deploy();
    (fabric != nullptr ? *fabric : fabric_).AddGateway(&gw);
    return gw;
  }

  NetworkFabric::TxRequest LoraRequest(uint32_t device, double x, double y) {
    NetworkFabric::TxRequest req;
    req.packet.device_id = device;
    req.packet.tech = RadioTech::kLoRa;
    req.packet.payload_bytes = 12;
    req.params.x_m = x;
    req.params.y_m = y;
    req.params.tx_power_dbm = 14.0;
    return req;
  }

  Simulation sim_;
  NetworkFabric fabric_;
  CloudEndpoint endpoint_;
  Backhaul backhaul_;
  std::vector<std::unique_ptr<Gateway>> gateways_;
};

TEST_F(MediumFixture, OfferReportsPhysicalDetail) {
  AddGateway(RadioTech::kLoRa, 0, 0, 7);
  RandomStream rng(1);
  const DeliveryReport report = fabric_.Offer(LoraRequest(1, 40, 0), rng);
  ASSERT_TRUE(report.Delivered());
  EXPECT_EQ(report.gateway_id, 7u);
  EXPECT_EQ(report.witnesses, 1u);
  EXPECT_FALSE(report.captured);
  EXPECT_LT(report.rssi_dbm, 0.0);
  EXPECT_GT(report.rssi_dbm, -120.0);
  // SNR is RSSI above the LoRa noise floor at 125 kHz (NF 6 dB).
  EXPECT_NEAR(report.snr_db, report.rssi_dbm - NoiseFloorDbm(125e3, 6.0), 1e-12);
}

TEST_F(MediumFixture, AttemptUplinkShimMatchesOffer) {
  AddGateway(RadioTech::kLoRa, 0, 0, 7);
  fabric_.AddOfferedLoad(RadioTech::kLoRa, 5000.0);
  RandomStream rng_a(9);
  RandomStream rng_b(9);
  const NetworkFabric::TxRequest req = LoraRequest(3, 900, 0);
  for (int i = 0; i < 50; ++i) {
    const DeliveryOutcome via_shim = fabric_.AttemptUplink(req.packet, req.params, rng_a);
    const DeliveryOutcome via_offer = fabric_.Offer(req, rng_b).outcome;
    EXPECT_EQ(via_shim, via_offer);
  }
}

TEST_F(MediumFixture, CadDefersWhenBandSaturated) {
  AddGateway(RadioTech::kLoRa, 0, 0, 7);
  MediumConfig medium;
  medium.cad = true;
  fabric_.ConfigureMedium(medium);
  // ~30 frames/s of SF9 airtime: P(idle) = exp(-load * airtime) ~ 0.
  fabric_.AddOfferedLoad(RadioTech::kLoRa, 30.0 * 3600.0);
  RandomStream rng(4);
  uint64_t busy = 0;
  for (int i = 0; i < 100; ++i) {
    busy += fabric_.Offer(LoraRequest(1, 50, 0), rng).outcome == DeliveryOutcome::kCadBusy;
  }
  EXPECT_GT(busy, 95u);
  EXPECT_EQ(fabric_.OutcomeCount(DeliveryOutcome::kCadBusy), busy);
  // CAD never touches 802.15.4 (it is a LoRa radio feature here).
  AddGateway(RadioTech::k802154, 0, 0, 8);
  NetworkFabric::TxRequest wpan;
  wpan.packet.tech = RadioTech::k802154;
  wpan.params.x_m = 20;
  wpan.params.tx_power_dbm = 4.0;
  EXPECT_NE(fabric_.Offer(wpan, rng).outcome, DeliveryOutcome::kCadBusy);
}

TEST_F(MediumFixture, SirCaptureFavorsTheStrongSignal) {
  AddGateway(RadioTech::kLoRa, 0, 0, 7);
  MediumConfig medium;
  medium.sir_capture = true;
  fabric_.ConfigureMedium(medium);
  // Saturate: essentially every frame overlaps an interferer.
  fabric_.AddOfferedLoad(RadioTech::kLoRa, 30.0 * 3600.0);
  RandomStream rng(6);
  // Traffic mix: one near (strong) frame per eight far (weak) ones. The
  // gateway's ambient estimate settles well below the strong frames and
  // far above the weak ones, so capture is signal strength, not a coin.
  // (A device that *dominates* the traffic pulls the ambient up to its own
  // level and stops capturing — that is the intended self-limit, so the
  // strong sender must stay a minority here.)
  uint64_t strong_attempts = 0, strong_delivered = 0;
  uint64_t weak_attempts = 0, weak_delivered = 0;
  for (int i = 0; i < 88; ++i) {
    const bool strong = i % 8 == 0;
    const DeliveryReport r =
        fabric_.Offer(LoraRequest(strong ? 1 : 2, strong ? 10.0 : 1500.0, 0), rng);
    if (strong) {
      ++strong_attempts;
      if (r.Delivered()) {
        ++strong_delivered;
        EXPECT_TRUE(r.captured);
      }
    } else {
      ++weak_attempts;
      weak_delivered += r.Delivered();
    }
  }
  EXPECT_EQ(strong_attempts, 11u);
  EXPECT_GE(strong_delivered, 10u);
  // The weak frames cannot clear the SIR margin over that ambient.
  EXPECT_LT(weak_delivered, weak_attempts / 8);
}

TEST_F(MediumFixture, GridBucketsLimitCandidatesToNeighborhood) {
  // Two gateways 30 km apart give the grid real extent (a lone gateway
  // collapses to one cell, whose clamped neighborhood covers everything).
  AddGateway(RadioTech::kLoRa, 0, 0, 7);
  AddGateway(RadioTech::kLoRa, 30000, 0, 9);
  RandomStream rng(8);
  // Full scan: a 2.5 km LoRa link works.
  EXPECT_TRUE(fabric_.Offer(LoraRequest(1, 2500, 0), rng).Delivered());
  // Grid with 500 m cells: the 3x3 neighborhood around the transmitter's
  // cell reaches at most ~1 km, so it sees no gateway at all.
  MediumConfig medium;
  medium.grid_buckets = true;
  medium.grid_cell_m = 500.0;
  fabric_.ConfigureMedium(medium);
  EXPECT_EQ(fabric_.Offer(LoraRequest(1, 2500, 0), rng).outcome,
            DeliveryOutcome::kNoGatewayInRange);
  // With cells sized to the radio range the link is back.
  medium.grid_cell_m = 3000.0;
  fabric_.ConfigureMedium(medium);
  EXPECT_TRUE(fabric_.Offer(LoraRequest(1, 2500, 0), rng).Delivered());
}

TEST_F(MediumFixture, LocalOfferedLoadIsPerNeighborhood) {
  MediumConfig medium;
  medium.grid_buckets = true;
  medium.grid_cell_m = 1000.0;
  fabric_.ConfigureMedium(medium);
  fabric_.AddOfferedLoadAt(RadioTech::kLoRa, 3600.0, 100.0, 100.0);
  fabric_.AddOfferedLoadAt(RadioTech::kLoRa, 7200.0, 50000.0, 50000.0);
  // Global aggregate sees both registrations.
  EXPECT_NEAR(fabric_.OfferedLoadHz(RadioTech::kLoRa), 3.0 / 3600.0 * 3600.0, 1e-9);
  // Each neighborhood sees only its own.
  EXPECT_NEAR(fabric_.LocalOfferedLoadHz(RadioTech::kLoRa, 120.0, 120.0), 1.0, 1e-9);
  EXPECT_NEAR(fabric_.LocalOfferedLoadHz(RadioTech::kLoRa, 50100.0, 50100.0), 2.0, 1e-9);
  EXPECT_NEAR(fabric_.LocalOfferedLoadHz(RadioTech::kLoRa, 25000.0, 25000.0), 0.0, 1e-12);
  fabric_.RemoveOfferedLoadAt(RadioTech::kLoRa, 3600.0, 100.0, 100.0);
  EXPECT_NEAR(fabric_.LocalOfferedLoadHz(RadioTech::kLoRa, 120.0, 120.0), 0.0, 1e-12);
}

TEST_F(MediumFixture, ClassCLoadProfileRaisesSleepFloor) {
  EdgeDeviceConfig cfg;
  cfg.tech = RadioTech::kLoRa;
  cfg.tx_power_dbm = 14.0;
  const double base_sleep = LoadProfileFor(cfg).sleep_power_w;
  cfg.lora_class = LoraDeviceClass::kClassC;
  const double class_c_sleep = LoadProfileFor(cfg).sleep_power_w;
  EXPECT_NEAR(class_c_sleep - base_sleep, LoraPhy::kRxListenPowerW, 1e-12);
  // 802.15.4 ignores the LoRa receive class.
  cfg.tech = RadioTech::k802154;
  cfg.tx_power_dbm = 4.0;
  EXPECT_EQ(LoadProfileFor(cfg).sleep_power_w, base_sleep);
}

TEST_F(MediumFixture, ClassBBeaconsChargeListenersThroughTimerTable) {
  AddGateway(RadioTech::kLoRa, 0, 0, 7);
  DeviceFleet fleet(sim_);
  TimerTable timers(sim_.scheduler());
  fabric_.RegisterMediumTimers(timers, &fleet);

  EdgeDeviceConfig cfg;
  cfg.id = 1;
  cfg.x_m = 40;
  cfg.tech = RadioTech::kLoRa;
  cfg.tx_power_dbm = 14.0;
  cfg.lora_class = LoraDeviceClass::kClassB;
  cfg.report_interval = SimTime::Days(30);  // Reports out of the picture.
  // No harvest: every joule spent is visible in the charge level.
  EnergyManager energy(HarvesterModel::Constant(0.0), EnergyStorage::Supercap(),
                       LoadProfileFor(cfg));
  EdgeDevice dev(sim_, cfg, fabric_, fleet, std::move(energy),
                 SeriesSystem::EnergyHarvestingNode());
  dev.Deploy();
  EXPECT_EQ(fabric_.beacon_listener_count(), 1u);

  fabric_.StartClassBBeacons();
  const double charge_before = dev.energy().storage().charge_j();
  sim_.RunUntil(SimTime::Hours(6));
  // 6 h at one beacon per 128 s.
  EXPECT_GE(fabric_.beacons_sent(), 167u);
  EXPECT_LE(fabric_.beacons_sent(), 169u);
  const double drop = charge_before - dev.energy().storage().charge_j();
  const double beacon_total =
      static_cast<double>(fabric_.beacons_sent()) * LoraPhy::kBeaconRxEnergyJ;
  EXPECT_GE(drop, beacon_total);            // Beacons were paid for...
  EXPECT_LE(drop, beacon_total + 0.3);      // ...plus sleep and at most one report.
}

TEST_F(MediumFixture, MediumStateAndTimersRoundTripThroughSnapshot) {
  // Build a medium with a pending beacon and a pending CAD retry, save at
  // t = 300 s, restore into a fresh fabric, and check the continuation
  // fires the same timers and reports the same counters.
  TimerTable timers(sim_.scheduler());
  fabric_.RegisterMediumTimers(timers, nullptr);
  std::vector<uint64_t> retried;
  fabric_.SetCadRetryHandler([&](uint64_t key) { retried.push_back(key); });
  fabric_.StartClassBBeacons();                        // Fires at 128, 256, ...
  fabric_.ScheduleCadRetry(SimTime::Seconds(50), 77);  // Fires pre-save.
  sim_.RunUntil(SimTime::Seconds(300));
  fabric_.ScheduleCadRetry(SimTime::Seconds(400), 99);  // Pending at save.
  ASSERT_EQ(retried, std::vector<uint64_t>({77}));
  EXPECT_EQ(fabric_.beacons_sent(), 2u);

  // Save: medium chunk + timer records.
  ByteWriter w;
  fabric_.SaveMediumState(w);
  const std::vector<TimerRecord> records = timers.Save();
  ASSERT_EQ(records.size(), 2u);  // One beacon, one CAD retry.

  // Restore into a fresh simulation/fabric.
  Simulation sim2(29);
  NetworkFabric fabric2(sim2);
  TimerTable timers2(sim2.scheduler());
  fabric2.RegisterMediumTimers(timers2, nullptr);
  std::vector<uint64_t> retried2;
  fabric2.SetCadRetryHandler([&](uint64_t key) { retried2.push_back(key); });
  ByteReader r(w.bytes().data(), w.bytes().size());
  ASSERT_TRUE(fabric2.RestoreMediumState(r));
  EXPECT_EQ(fabric2.beacons_sent(), 2u);
  EXPECT_EQ(timers2.Restore(records), 0u);  // No unknown tags.

  // Both runs continue to t = 600 s: beacon at 384 and 512, CAD at 400.
  sim_.RunUntil(SimTime::Seconds(600));
  sim2.RunUntil(SimTime::Seconds(600));
  EXPECT_EQ(fabric_.beacons_sent(), 4u);
  EXPECT_EQ(fabric2.beacons_sent(), 4u);
  EXPECT_EQ(retried2, std::vector<uint64_t>({99}));
}

TEST_F(MediumFixture, CaptureEwmaSurvivesSnapshotBitExactly) {
  // Prime a SIR-capture fabric's ambient estimate, save the medium chunk,
  // restore into a twin, and drive both with identical RNG streams: every
  // report must match bit-for-bit, which only happens if the EWMA columns
  // round-tripped exactly.
  MediumConfig medium;
  medium.sir_capture = true;
  fabric_.ConfigureMedium(medium);
  AddGateway(RadioTech::kLoRa, 0, 0, 7);
  fabric_.AddOfferedLoad(RadioTech::kLoRa, 30.0 * 3600.0);
  RandomStream prime_rng(11);
  for (int i = 0; i < 25; ++i) {
    fabric_.Offer(LoraRequest(2, 1200, 0), prime_rng);
  }

  ByteWriter w;
  fabric_.SaveMediumState(w);

  NetworkFabric fabric2(sim_);
  fabric2.SetEndpoint(&endpoint_);  // Same server path as the original.
  fabric2.ConfigureMedium(medium);
  AddGateway(RadioTech::kLoRa, 0, 0, 7, &fabric2);
  fabric2.AddOfferedLoad(RadioTech::kLoRa, 30.0 * 3600.0);
  ByteReader r(w.bytes().data(), w.bytes().size());
  ASSERT_TRUE(fabric2.RestoreMediumState(r));

  RandomStream rng_a(21);
  RandomStream rng_b(21);
  for (int i = 0; i < 40; ++i) {
    const uint32_t device = i % 2 == 0 ? 1 : 2;
    const double x = device == 1 ? 10.0 : 1200.0;
    const DeliveryReport a = fabric_.Offer(LoraRequest(device, x, 0), rng_a);
    const DeliveryReport b = fabric2.Offer(LoraRequest(device, x, 0), rng_b);
    EXPECT_EQ(a.outcome, b.outcome) << i;
    EXPECT_EQ(a.rssi_dbm, b.rssi_dbm) << i;
    EXPECT_EQ(a.captured, b.captured) << i;
    EXPECT_EQ(a.witnesses, b.witnesses) << i;
  }
}

}  // namespace
}  // namespace centsim
