#include "src/econ/tariff.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

TEST(CellularTariffTest, CumulativeGrowsWithTime) {
  CellularTariff cell;
  double prev = 0.0;
  for (double t : {0.0, 1.0, 5.0, 20.0, 50.0}) {
    const double cost = cell.CumulativeCostUsd(10, t, 0);
    EXPECT_GE(cost, prev);
    prev = cost;
  }
}

TEST(CellularTariffTest, YearZeroIsModemCapex) {
  CellularTariff cell;
  EXPECT_DOUBLE_EQ(cell.CumulativeCostUsd(10, 0.0, 0), cell.modem_capex_usd * 10);
}

TEST(CellularTariffTest, SunsetSwapsCost) {
  CellularTariff cell;
  const double without = cell.CumulativeCostUsd(10, 20.0, 0);
  const double with = cell.CumulativeCostUsd(10, 20.0, 2);
  EXPECT_DOUBLE_EQ(with - without, 2 * cell.sunset_swap_cost_usd * 10);
}

TEST(CellularTariffTest, EscalationCompounds) {
  CellularTariff flat;
  flat.annual_escalation = 0.0;
  CellularTariff rising;
  rising.annual_escalation = 0.05;
  EXPECT_GT(rising.CumulativeCostUsd(1, 20.0, 0), flat.CumulativeCostUsd(1, 20.0, 0));
}

TEST(FiberBuildTest, SharedDigIsCheaper) {
  FiberBuild shared;
  shared.coordinate_with_roadworks = true;
  FiberBuild solo = shared;
  solo.coordinate_with_roadworks = false;
  EXPECT_LT(shared.CapexUsd(10000, 10), solo.CapexUsd(10000, 10));
}

TEST(FiberBuildTest, TransceiverRefreshesAccrue) {
  FiberBuild fiber;
  fiber.transceiver_refresh_years = 10.0;
  const double at9 = fiber.CumulativeCostUsd(1000, 5, 9.9);
  const double at11 = fiber.CumulativeCostUsd(1000, 5, 11.0);
  EXPECT_GT(at11 - at9, fiber.transceiver_usd_per_site * 5 * 0.9);
}

TEST(FiberBuildTest, LeaseRevenueOffsetsCost) {
  FiberBuild plain;
  FiberBuild leased = plain;
  leased.lease_revenue_per_site_monthly_usd = 50.0;
  EXPECT_LT(leased.CumulativeCostUsd(10000, 10, 20.0),
            plain.CumulativeCostUsd(10000, 10, 20.0));
}

TEST(CrossoverTest, FiberWinsWithinFiftyYears) {
  // The §3.3 story (San Diego's planned cellular->wired transition): for a
  // municipal-scale gateway fleet with shared-trench fiber, opex-free glass
  // beats escalating subscriptions well before 50 years.
  FiberBuild fiber;
  CellularTariff cell;
  const double crossover = FiberCellularCrossoverYears(fiber, /*route_m=*/20000, cell,
                                                       /*sites=*/100, /*horizon_years=*/50);
  EXPECT_GT(crossover, 0.0);
  EXPECT_LT(crossover, 50.0);
}

TEST(CrossoverTest, TinyDeploymentsFavorCellular) {
  // One site, a long dedicated trench: fiber never catches up in 50 years.
  FiberBuild fiber;
  fiber.coordinate_with_roadworks = false;
  CellularTariff cell;
  const double crossover =
      FiberCellularCrossoverYears(fiber, /*route_m=*/30000, cell, /*sites=*/1, 50);
  EXPECT_LT(crossover, 0.0);  // Sentinel: never.
}

TEST(CrossoverTest, MoreSitesCrossoverSooner) {
  FiberBuild fiber;
  CellularTariff cell;
  const double few =
      FiberCellularCrossoverYears(fiber, 20000, cell, /*sites=*/20, /*horizon_years=*/100);
  const double many =
      FiberCellularCrossoverYears(fiber, 20000, cell, /*sites=*/500, /*horizon_years=*/100);
  ASSERT_GT(few, 0.0);
  ASSERT_GT(many, 0.0);
  EXPECT_LE(many, few);
}

}  // namespace
}  // namespace centsim
