#include "src/reliability/survival.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/reliability/component.h"
#include "src/reliability/hazard.h"
#include "src/sim/random.h"

namespace centsim {
namespace {

TEST(KaplanMeierTest, NoCensoringMatchesEmpiricalSurvival) {
  KaplanMeier km;
  // Failures at 1..10 years, no censoring: S(t) is the empirical fraction.
  for (int i = 1; i <= 10; ++i) {
    km.Observe(SimTime::Years(i), true);
  }
  EXPECT_DOUBLE_EQ(km.SurvivalAt(SimTime::Years(0.5)), 1.0);
  EXPECT_NEAR(km.SurvivalAt(SimTime::Years(5)), 0.5, 1e-12);
  EXPECT_NEAR(km.SurvivalAt(SimTime::Years(10)), 0.0, 1e-12);
}

TEST(KaplanMeierTest, AllCensoredStaysAtOne) {
  KaplanMeier km;
  for (int i = 1; i <= 5; ++i) {
    km.Observe(SimTime::Years(i), false);
  }
  EXPECT_DOUBLE_EQ(km.SurvivalAt(SimTime::Years(10)), 1.0);
  EXPECT_FALSE(km.MedianSurvival().has_value());
  EXPECT_EQ(km.failure_count(), 0u);
}

TEST(KaplanMeierTest, CensoringReducesAtRisk) {
  // 4 subjects: fail@2, censor@3, fail@4, censor@5.
  KaplanMeier km;
  km.Observe(SimTime::Years(2), true);
  km.Observe(SimTime::Years(3), false);
  km.Observe(SimTime::Years(4), true);
  km.Observe(SimTime::Years(5), false);
  // S(2) = 3/4; S(4) = 3/4 * (1 - 1/2) = 3/8.
  EXPECT_NEAR(km.SurvivalAt(SimTime::Years(2)), 0.75, 1e-12);
  EXPECT_NEAR(km.SurvivalAt(SimTime::Years(4)), 0.375, 1e-12);
}

TEST(KaplanMeierTest, MedianSurvival) {
  KaplanMeier km;
  for (int i = 1; i <= 100; ++i) {
    km.Observe(SimTime::Years(i), true);
  }
  const auto median = km.MedianSurvival();
  ASSERT_TRUE(median.has_value());
  EXPECT_NEAR(median->ToYears(), 50.0, 1.0);
}

TEST(KaplanMeierTest, RecoversWeibullMedian) {
  // Property: KM over draws from a known distribution recovers its median.
  WeibullHazard h(3.0, SimTime::Years(15));
  RandomStream rng(2024);
  KaplanMeier km;
  for (int i = 0; i < 5000; ++i) {
    km.Observe(h.SampleLife(rng), true);
  }
  const double expected_median = 15.0 * std::pow(std::log(2.0), 1.0 / 3.0);
  const auto median = km.MedianSurvival();
  ASSERT_TRUE(median.has_value());
  EXPECT_NEAR(median->ToYears(), expected_median, 0.4);
}

TEST(KaplanMeierTest, HeavyCensoringStillUnbiased) {
  // Censor half the population at random times; KM handles it where a
  // naive mean of observed failure times would be biased low.
  WeibullHazard h(2.0, SimTime::Years(10));
  RandomStream rng(77);
  KaplanMeier km;
  for (int i = 0; i < 8000; ++i) {
    const SimTime life = h.SampleLife(rng);
    const SimTime censor = SimTime::Years(rng.Uniform(0.0, 20.0));
    if (censor < life) {
      km.Observe(censor, false);
    } else {
      km.Observe(life, true);
    }
  }
  const double expected_median = 10.0 * std::pow(std::log(2.0), 1.0 / 2.0);
  const auto median = km.MedianSurvival();
  ASSERT_TRUE(median.has_value());
  EXPECT_NEAR(median->ToYears(), expected_median, 0.5);
}

TEST(KaplanMeierTest, RestrictedMeanOfConstantSurvival) {
  KaplanMeier km;
  km.Observe(SimTime::Years(100), false);  // Never fails within horizon.
  EXPECT_NEAR(km.RestrictedMean(SimTime::Years(10)).ToYears(), 10.0, 1e-9);
}

TEST(KaplanMeierTest, RestrictedMeanKnownCase) {
  // Single subject failing at 4y: S = 1 until 4, 0 after.
  KaplanMeier km;
  km.Observe(SimTime::Years(4), true);
  EXPECT_NEAR(km.RestrictedMean(SimTime::Years(10)).ToYears(), 4.0, 1e-9);
}

TEST(KaplanMeierTest, CurveAtRiskCountsDecrease) {
  KaplanMeier km;
  RandomStream rng(3);
  for (int i = 0; i < 100; ++i) {
    km.Observe(SimTime::Years(rng.Uniform(0.1, 30.0)), rng.NextBool(0.7));
  }
  uint64_t prev_at_risk = UINT64_MAX;
  for (const auto& pt : km.Curve()) {
    EXPECT_LE(pt.at_risk, prev_at_risk);
    prev_at_risk = pt.at_risk;
    EXPECT_GT(pt.events, 0u);
  }
}

// --- SurvivalTable (the sampled engine's one-draw life sampler) -------------

TEST(SurvivalTableTest, RecoversExponentialDistribution) {
  const double tau_years = 5.0;
  const SurvivalTable table = SurvivalTable::Build(
      [&](SimTime t) { return std::exp(-t.ToYears() / tau_years); });

  // The table's S(t) readback matches the source within grid resolution.
  for (const double y : {0.5, 2.0, 5.0, 10.0, 20.0}) {
    EXPECT_NEAR(table.SurvivalAt(SimTime::Years(y)), std::exp(-y / tau_years), 2e-3);
  }

  RandomStream rng(777);
  double sum_years = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    sum_years += table.Sample(rng).ToYears();
  }
  EXPECT_NEAR(sum_years / kDraws, tau_years, 0.15);
}

TEST(SurvivalTableTest, ConditionalSamplingIsMemorylessForExponential) {
  const double tau_years = 4.0;
  const SurvivalTable table = SurvivalTable::Build(
      [&](SimTime t) { return std::exp(-t.ToYears() / tau_years); });
  RandomStream rng(1234);
  double sum_remaining = 0.0;
  constexpr int kDraws = 20000;
  const SimTime age = SimTime::Years(6);
  for (int i = 0; i < kDraws; ++i) {
    const SimTime remaining = table.SampleConditional(rng, age);
    EXPECT_GE(remaining, SimTime());
    sum_remaining += remaining.ToYears();
  }
  // Exponential remaining life is age-independent: still tau.
  EXPECT_NEAR(sum_remaining / kDraws, tau_years, 0.15);
}

TEST(SurvivalTableTest, ExactlyOneDrawPerSample) {
  // The sampled drivers key one stream per entity and rely on Sample
  // consuming exactly one uniform — two identical streams, one sampled
  // through the table and one drained manually, must stay in lockstep.
  const SurvivalTable table =
      SurvivalTable::Build([](SimTime t) { return std::exp(-t.ToYears() / 3.0); });
  RandomStream a(42);
  RandomStream b(42);
  for (int i = 0; i < 100; ++i) {
    (void)table.Sample(a);
    (void)b.NextDouble();
  }
  EXPECT_EQ(a.NextDouble(), b.NextDouble());
}

TEST(SurvivalTableTest, MatchesComponentSamplerInDistribution) {
  // Century-sampled parity at the distribution level: a table built from
  // SeriesSystem::Survival must draw the same life distribution the serial
  // engine's SampleLife draws component by component.
  const SeriesSystem hardware = SeriesSystem::EnergyHarvestingNode();
  const SurvivalTable table =
      SurvivalTable::Build([&](SimTime t) { return hardware.Survival(t); });

  RandomStream table_rng(9001);
  RandomStream direct_rng(9002);
  constexpr int kDraws = 8000;
  double table_sum = 0.0, direct_sum = 0.0;
  std::vector<double> table_lives, direct_lives;
  table_lives.reserve(kDraws);
  direct_lives.reserve(kDraws);
  for (int i = 0; i < kDraws; ++i) {
    const double t = table.Sample(table_rng).ToYears();
    const double d = hardware.SampleLife(direct_rng).life.ToYears();
    table_sum += t;
    direct_sum += d;
    table_lives.push_back(t);
    direct_lives.push_back(d);
  }
  const double table_mean = table_sum / kDraws;
  const double direct_mean = direct_sum / kDraws;
  EXPECT_LT(std::fabs(table_mean - direct_mean) / direct_mean, 0.05)
      << "table " << table_mean << " direct " << direct_mean;

  std::sort(table_lives.begin(), table_lives.end());
  std::sort(direct_lives.begin(), direct_lives.end());
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double tq = table_lives[static_cast<size_t>(q * (kDraws - 1))];
    const double dq = direct_lives[static_cast<size_t>(q * (kDraws - 1))];
    EXPECT_LT(std::fabs(tq - dq) / dq, 0.08) << "quantile " << q;
  }
}

}  // namespace
}  // namespace centsim
