#include "src/reliability/survival.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/reliability/hazard.h"
#include "src/sim/random.h"

namespace centsim {
namespace {

TEST(KaplanMeierTest, NoCensoringMatchesEmpiricalSurvival) {
  KaplanMeier km;
  // Failures at 1..10 years, no censoring: S(t) is the empirical fraction.
  for (int i = 1; i <= 10; ++i) {
    km.Observe(SimTime::Years(i), true);
  }
  EXPECT_DOUBLE_EQ(km.SurvivalAt(SimTime::Years(0.5)), 1.0);
  EXPECT_NEAR(km.SurvivalAt(SimTime::Years(5)), 0.5, 1e-12);
  EXPECT_NEAR(km.SurvivalAt(SimTime::Years(10)), 0.0, 1e-12);
}

TEST(KaplanMeierTest, AllCensoredStaysAtOne) {
  KaplanMeier km;
  for (int i = 1; i <= 5; ++i) {
    km.Observe(SimTime::Years(i), false);
  }
  EXPECT_DOUBLE_EQ(km.SurvivalAt(SimTime::Years(10)), 1.0);
  EXPECT_FALSE(km.MedianSurvival().has_value());
  EXPECT_EQ(km.failure_count(), 0u);
}

TEST(KaplanMeierTest, CensoringReducesAtRisk) {
  // 4 subjects: fail@2, censor@3, fail@4, censor@5.
  KaplanMeier km;
  km.Observe(SimTime::Years(2), true);
  km.Observe(SimTime::Years(3), false);
  km.Observe(SimTime::Years(4), true);
  km.Observe(SimTime::Years(5), false);
  // S(2) = 3/4; S(4) = 3/4 * (1 - 1/2) = 3/8.
  EXPECT_NEAR(km.SurvivalAt(SimTime::Years(2)), 0.75, 1e-12);
  EXPECT_NEAR(km.SurvivalAt(SimTime::Years(4)), 0.375, 1e-12);
}

TEST(KaplanMeierTest, MedianSurvival) {
  KaplanMeier km;
  for (int i = 1; i <= 100; ++i) {
    km.Observe(SimTime::Years(i), true);
  }
  const auto median = km.MedianSurvival();
  ASSERT_TRUE(median.has_value());
  EXPECT_NEAR(median->ToYears(), 50.0, 1.0);
}

TEST(KaplanMeierTest, RecoversWeibullMedian) {
  // Property: KM over draws from a known distribution recovers its median.
  WeibullHazard h(3.0, SimTime::Years(15));
  RandomStream rng(2024);
  KaplanMeier km;
  for (int i = 0; i < 5000; ++i) {
    km.Observe(h.SampleLife(rng), true);
  }
  const double expected_median = 15.0 * std::pow(std::log(2.0), 1.0 / 3.0);
  const auto median = km.MedianSurvival();
  ASSERT_TRUE(median.has_value());
  EXPECT_NEAR(median->ToYears(), expected_median, 0.4);
}

TEST(KaplanMeierTest, HeavyCensoringStillUnbiased) {
  // Censor half the population at random times; KM handles it where a
  // naive mean of observed failure times would be biased low.
  WeibullHazard h(2.0, SimTime::Years(10));
  RandomStream rng(77);
  KaplanMeier km;
  for (int i = 0; i < 8000; ++i) {
    const SimTime life = h.SampleLife(rng);
    const SimTime censor = SimTime::Years(rng.Uniform(0.0, 20.0));
    if (censor < life) {
      km.Observe(censor, false);
    } else {
      km.Observe(life, true);
    }
  }
  const double expected_median = 10.0 * std::pow(std::log(2.0), 1.0 / 2.0);
  const auto median = km.MedianSurvival();
  ASSERT_TRUE(median.has_value());
  EXPECT_NEAR(median->ToYears(), expected_median, 0.5);
}

TEST(KaplanMeierTest, RestrictedMeanOfConstantSurvival) {
  KaplanMeier km;
  km.Observe(SimTime::Years(100), false);  // Never fails within horizon.
  EXPECT_NEAR(km.RestrictedMean(SimTime::Years(10)).ToYears(), 10.0, 1e-9);
}

TEST(KaplanMeierTest, RestrictedMeanKnownCase) {
  // Single subject failing at 4y: S = 1 until 4, 0 after.
  KaplanMeier km;
  km.Observe(SimTime::Years(4), true);
  EXPECT_NEAR(km.RestrictedMean(SimTime::Years(10)).ToYears(), 4.0, 1e-9);
}

TEST(KaplanMeierTest, CurveAtRiskCountsDecrease) {
  KaplanMeier km;
  RandomStream rng(3);
  for (int i = 0; i < 100; ++i) {
    km.Observe(SimTime::Years(rng.Uniform(0.1, 30.0)), rng.NextBool(0.7));
  }
  uint64_t prev_at_risk = UINT64_MAX;
  for (const auto& pt : km.Curve()) {
    EXPECT_LE(pt.at_risk, prev_at_risk);
    prev_at_risk = pt.at_risk;
    EXPECT_GT(pt.events, 0u);
  }
}

}  // namespace
}  // namespace centsim
