#include "src/radio/phy_802154.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

TEST(Phy802154Test, AirtimeOfTwelveBytePayload) {
  // 12 + 11 MAC + 6 PHY = 29 bytes = 232 bits @ 250 kb/s = 928 us.
  EXPECT_EQ(Phy802154::Airtime(12).micros(), 928);
}

TEST(Phy802154Test, AirtimeScalesLinearly) {
  const auto t20 = Phy802154::Airtime(20);
  const auto t40 = Phy802154::Airtime(40);
  EXPECT_EQ((t40 - t20).micros(), 20 * 8 * 1000000 / 250000);
}

TEST(Phy802154Test, PayloadClampedToMax) {
  EXPECT_EQ(Phy802154::Airtime(127), Phy802154::Airtime(500));
}

TEST(Phy802154Test, BerDecreasesWithSnr) {
  double prev = 1.0;
  for (double snr : {-10.0, -5.0, 0.0, 2.0, 5.0}) {
    const double ber = Phy802154::BitErrorRate(snr);
    EXPECT_LE(ber, prev);
    prev = ber;
  }
}

TEST(Phy802154Test, BerNegligibleAtHighSnr) {
  EXPECT_LT(Phy802154::BitErrorRate(10.0), 1e-9);
}

TEST(Phy802154Test, BerBounded) {
  for (double snr = -30.0; snr <= 30.0; snr += 1.0) {
    const double ber = Phy802154::BitErrorRate(snr);
    EXPECT_GE(ber, 0.0);
    EXPECT_LE(ber, 0.5);
  }
}

TEST(Phy802154Test, PerWorseForLongerFrames) {
  const double snr = 1.0;  // Mid-waterfall.
  EXPECT_GT(Phy802154::PacketErrorRate(snr, 100), Phy802154::PacketErrorRate(snr, 10));
}

TEST(Phy802154Test, PerNearZeroAtStrongSignal) {
  EXPECT_LT(Phy802154::PacketErrorRate(15.0, 100), 1e-6);
}

TEST(Phy802154Test, PerNearOneBelowSensitivity) {
  EXPECT_GT(Phy802154::PacketErrorRate(-10.0, 12), 0.99);
}

TEST(Phy802154Test, TxEnergyPositiveAndOrdered) {
  const double low = Phy802154::TxEnergyJoules(0.0, 12);
  const double high = Phy802154::TxEnergyJoules(8.0, 12);
  EXPECT_GT(low, 0.0);
  EXPECT_GT(high, low);
  // Sub-millijoule-scale for a short frame: sanity band.
  EXPECT_LT(high, 0.01);
}

class PayloadSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PayloadSweep, AirtimeMatchesBitArithmetic) {
  const size_t payload = GetParam();
  const size_t total_bytes = payload + 6 + 11;
  EXPECT_EQ(Phy802154::Airtime(payload).micros(),
            static_cast<int64_t>(total_bytes * 8 * 4));  // 4 us/bit @ 250 kb/s.
}

INSTANTIATE_TEST_SUITE_P(Payloads, PayloadSweep, ::testing::Values(1, 12, 24, 64, 100, 127));

}  // namespace
}  // namespace centsim
