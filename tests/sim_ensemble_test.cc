#include "src/sim/ensemble.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/random.h"
#include "src/telemetry/json.h"

namespace centsim {
namespace {

// Minimal experiment following the unified Experiment API, self-contained
// so the engine is testable without the core library. The run draws a few
// variates so seed quality differences are visible, bumps a metric when a
// registry is attached, and sleeps longer for *earlier* replicas so that
// completion order inverts submission order.
std::atomic<uint32_t> g_finish_stamp{0};

EnsembleOptions Opts(uint32_t replicas, uint32_t threads, bool collect_metrics = false) {
  EnsembleOptions options;
  options.replicas = replicas;
  options.threads = threads;
  options.collect_metrics = collect_metrics;
  return options;
}

struct ToyConfig {
  uint64_t seed = 1;
  SimTime horizon = SimTime::Hours(1);
  uint32_t draws = 8;
  bool stagger = false;  // Invert completion order vs replica index.
  MetricsRegistry* metrics = nullptr;

  std::vector<std::string> Validate() const {
    std::vector<std::string> diagnostics;
    if (draws == 0) {
      diagnostics.push_back("draws must be positive");
    }
    if (horizon.micros() <= 0) {
      diagnostics.push_back("non-positive horizon");
    }
    return diagnostics;
  }
};

struct ToyReport {
  double sum = 0.0;
  uint64_t first_draw = 0;
  uint64_t events_executed = 0;
  uint32_t finish_stamp = 0;
};

struct ToyExperiment {
  using Config = ToyConfig;
  using Report = ToyReport;
  static const char* Name() { return "toy"; }
  static Report Run(const Config& config) {
    if (config.stagger) {
      // Sleep keyed on the (derived) seed so replicas finish in an order
      // unrelated to their submission order.
      std::this_thread::sleep_for(std::chrono::milliseconds(config.seed % 8));
    }
    RandomStream rng(config.seed);
    Report report;
    report.first_draw = rng.Derive(1).NextUint64();
    for (uint32_t i = 0; i < config.draws; ++i) {
      report.sum += rng.NextDouble();
    }
    report.events_executed = config.draws;
    report.finish_stamp = g_finish_stamp.fetch_add(1) + 1;
    MetricInc(config.metrics != nullptr ? config.metrics->GetCounter("toy.runs") : nullptr);
    if (config.metrics != nullptr) {
      config.metrics->GetHistogram("toy.sum")->Observe(report.sum);
    }
    return report;
  }
};

TEST(DeriveReplicaSeedTest, DistinctAndStable) {
  std::set<uint64_t> seeds;
  for (uint32_t i = 0; i < 1000; ++i) {
    seeds.insert(DeriveReplicaSeed(42, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);
  // Deterministic across calls.
  EXPECT_EQ(DeriveReplicaSeed(42, 7), DeriveReplicaSeed(42, 7));
  // Not the old additive scheme.
  EXPECT_NE(DeriveReplicaSeed(42, 1), 43u);
}

TEST(DeriveReplicaSeedTest, NeighbouringBasesDecorrelate) {
  // The hazard the stream split fixes: sweeping base seeds 0..N-1 while
  // replicating each must not make replica j of base s collide with
  // replica j-1 of base s+1 (which `seed + i` guarantees).
  std::set<uint64_t> seeds;
  for (uint64_t base = 0; base < 32; ++base) {
    for (uint32_t replica = 0; replica < 32; ++replica) {
      seeds.insert(DeriveReplicaSeed(base, replica));
    }
  }
  EXPECT_EQ(seeds.size(), 32u * 32u);
}

TEST(EnsembleRunnerTest, ReplicaSlotsOrderedByIndexNotCompletion) {
  ToyConfig base;
  base.seed = 99;
  base.draws = 6;
  base.stagger = true;
  EnsembleOptions options;
  options.replicas = 12;
  options.threads = 4;
  const auto result = EnsembleRunner<ToyExperiment>::Run(base, options);
  ASSERT_EQ(result.replicas.size(), 12u);
  for (uint32_t i = 0; i < 12; ++i) {
    EXPECT_EQ(result.replicas[i].index, i);
    EXPECT_EQ(result.replicas[i].seed, DeriveReplicaSeed(99, i));
    EXPECT_EQ(result.replicas[i].events_executed, 6u);
  }
}

TEST(EnsembleRunnerTest, BitIdenticalAcrossThreadCounts) {
  ToyConfig base;
  base.seed = 2024;
  base.draws = 32;
  base.stagger = true;
  for (uint32_t threads : {2u, 4u, 8u}) {
    const auto a = EnsembleRunner<ToyExperiment>::Run(base, Opts(16, 1));
    const auto b = EnsembleRunner<ToyExperiment>::Run(base, Opts(16, threads));
    ASSERT_EQ(a.replicas.size(), b.replicas.size());
    for (size_t i = 0; i < a.replicas.size(); ++i) {
      EXPECT_EQ(a.replicas[i].seed, b.replicas[i].seed);
      EXPECT_EQ(a.replicas[i].report.first_draw, b.replicas[i].report.first_draw);
      EXPECT_EQ(a.replicas[i].report.sum, b.replicas[i].report.sum);
    }
  }
}

TEST(EnsembleRunnerTest, MergedMetricsIdenticalAcrossThreadCounts) {
  ToyConfig base;
  base.seed = 7;
  base.draws = 16;
  base.stagger = true;
  const auto a = EnsembleRunner<ToyExperiment>::Run(base, Opts(10, 1, /*collect_metrics=*/true));
  const auto b = EnsembleRunner<ToyExperiment>::Run(base, Opts(10, 8, /*collect_metrics=*/true));
  ASSERT_NE(a.metrics, nullptr);
  ASSERT_NE(b.metrics, nullptr);
  const Counter* runs_a = a.metrics->FindCounter("toy.runs");
  const Counter* runs_b = b.metrics->FindCounter("toy.runs");
  ASSERT_NE(runs_a, nullptr);
  ASSERT_NE(runs_b, nullptr);
  EXPECT_DOUBLE_EQ(runs_a->value(), 10.0);
  EXPECT_DOUBLE_EQ(runs_b->value(), 10.0);
  const HistogramMetric* sum_a = a.metrics->FindHistogram("toy.sum");
  const HistogramMetric* sum_b = b.metrics->FindHistogram("toy.sum");
  ASSERT_NE(sum_a, nullptr);
  ASSERT_NE(sum_b, nullptr);
  // Bitwise-equal Welford state: same samples folded in the same order.
  EXPECT_EQ(sum_a->stats().count(), sum_b->stats().count());
  EXPECT_EQ(sum_a->stats().mean(), sum_b->stats().mean());
  EXPECT_EQ(sum_a->stats().variance(), sum_b->stats().variance());
  EXPECT_EQ(sum_a->stats().min(), sum_b->stats().min());
  EXPECT_EQ(sum_a->stats().max(), sum_b->stats().max());
}

TEST(EnsembleRunnerTest, ExecutionOrderActuallyVaried) {
  // Sanity check on the stagger device: with >1 thread and inverted
  // sleeps, at least one replica must finish out of index order —
  // otherwise the determinism tests above prove nothing.
  ToyConfig base;
  base.seed = 5;
  base.draws = 13;
  base.stagger = true;
  const auto result = EnsembleRunner<ToyExperiment>::Run(base, Opts(8, 8));
  bool out_of_order = false;
  for (size_t i = 1; i < result.replicas.size(); ++i) {
    if (result.replicas[i].report.finish_stamp < result.replicas[i - 1].report.finish_stamp) {
      out_of_order = true;
    }
  }
  // On a single-core machine the workers can still serialize in index
  // order; accept either but record the observation.
  if (!out_of_order) {
    GTEST_LOG_(INFO) << "replicas completed in index order (low parallelism host)";
  }
  SUCCEED();
}

TEST(EnsembleRunnerTest, ManifestAggregatesReplicaRuns) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "centsim_ensemble_test";
  std::error_code ec;
  fs::remove_all(dir, ec);

  ToyConfig base;
  base.seed = 11;
  base.draws = 4;
  EnsembleOptions options;
  options.replicas = 5;
  options.threads = 2;
  options.collect_metrics = true;
  options.artifacts_dir = dir.string();
  options.run_name = "toy_ensemble";
  const auto result = EnsembleRunner<ToyExperiment>::Run(base, options);

  EXPECT_EQ(result.manifest.run_name, "toy_ensemble");
  EXPECT_EQ(result.manifest.experiment, "toy");
  EXPECT_EQ(result.manifest.base_seed, 11u);
  EXPECT_EQ(result.manifest.replicas, 5u);
  EXPECT_EQ(result.manifest.threads, 2u);
  ASSERT_EQ(result.manifest.replica_runs.size(), 5u);
  EXPECT_EQ(result.manifest.TotalEventsExecuted(), 5u * 4u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result.manifest.replica_runs[i].index, i);
    EXPECT_EQ(result.manifest.replica_runs[i].seed, DeriveReplicaSeed(11, i));
  }

  ASSERT_FALSE(result.manifest_path.empty());
  ASSERT_FALSE(result.metrics_path.empty());
  std::ifstream in(result.manifest_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  std::string error;
  EXPECT_TRUE(JsonLint(buf.str(), &error)) << error;
  EXPECT_NE(buf.str().find("\"seed_derivation\": \"splitmix64-stream\""), std::string::npos);
  fs::remove_all(dir, ec);
}

TEST(EnsembleRunnerTest, ThreadsCappedAtReplicas) {
  ToyConfig base;
  EnsembleOptions options;
  options.replicas = 3;
  options.threads = 64;
  const auto result = EnsembleRunner<ToyExperiment>::Run(base, options);
  EXPECT_EQ(result.threads_used, 3u);
}

TEST(EnsembleRunnerTest, InvalidConfigDies) {
  ToyConfig bad;
  bad.draws = 0;
  EnsembleOptions options;
  options.replicas = 2;
  EXPECT_DEATH(EnsembleRunner<ToyExperiment>::Run(bad, options), "invalid config");
}

}  // namespace
}  // namespace centsim
