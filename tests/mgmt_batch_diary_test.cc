#include <gtest/gtest.h>

#include "src/mgmt/batch_project.h"
#include "src/mgmt/diary.h"

namespace centsim {
namespace {

TEST(BatchProjectTest, EveryZoneVisitedEachCycle) {
  Simulation sim(1);
  BatchProjectParams params;
  params.zone_count = 8;
  params.cycle_period = SimTime::Years(8);
  params.visit_jitter = SimTime::Days(10);
  std::vector<int> visits(8, 0);
  BatchProjectScheduler sched(sim, params, [&](uint32_t zone, uint32_t) { ++visits[zone]; });
  sched.ScheduleThrough(SimTime::Years(24));
  sim.RunUntil(SimTime::Years(24));
  for (int v : visits) {
    EXPECT_GE(v, 2);  // ~3 cycles; jitter may push one past the horizon.
    EXPECT_LE(v, 3);
  }
}

TEST(BatchProjectTest, VisitsStaggeredAcrossCycle) {
  Simulation sim(2);
  BatchProjectParams params;
  params.zone_count = 4;
  params.cycle_period = SimTime::Years(4);
  params.visit_jitter = SimTime::Days(1);
  std::vector<SimTime> times;
  BatchProjectScheduler sched(sim, params, [&](uint32_t, uint32_t) { times.push_back(sim.Now()); });
  sched.ScheduleThrough(SimTime::Years(4));
  sim.RunUntil(SimTime::Years(4));
  ASSERT_GE(times.size(), 4u);
  // Zones are spread ~1 year apart, not clustered at cycle start.
  EXPECT_GT((times[1] - times[0]).ToDays(), 300.0);
}

TEST(BatchProjectTest, CyclePassedToCallback) {
  Simulation sim(3);
  BatchProjectParams params;
  params.zone_count = 2;
  params.cycle_period = SimTime::Years(2);
  params.visit_jitter = SimTime::Days(1);
  uint32_t max_cycle = 0;
  BatchProjectScheduler sched(sim, params,
                              [&](uint32_t, uint32_t cycle) { max_cycle = std::max(max_cycle, cycle); });
  sched.ScheduleThrough(SimTime::Years(7));
  sim.RunUntil(SimTime::Years(7));
  EXPECT_GE(max_cycle, 2u);
}

TEST(DiaryTest, HarvestsMaintenanceRecords) {
  TraceLog trace(TraceLevel::kDebug);
  trace.Emit(SimTime::Years(1), TraceLevel::kInfo, "dev", "routine");
  trace.Emit(SimTime::Years(2), TraceLevel::kMaintenance, "gw", "PSU swap");
  trace.Emit(SimTime::Years(12), TraceLevel::kFailure, "gw", "SD card died");
  trace.Emit(SimTime::Years(25), TraceLevel::kWarning, "wallet", "low credits");
  const auto diary = ExperimentDiary::FromTrace(trace);
  EXPECT_EQ(diary.entries().size(), 3u);  // Info excluded.
}

TEST(DiaryTest, DecadeSummaries) {
  TraceLog trace(TraceLevel::kDebug);
  trace.Emit(SimTime::Years(2), TraceLevel::kMaintenance, "a", "x");
  trace.Emit(SimTime::Years(12), TraceLevel::kFailure, "b", "y");
  trace.Emit(SimTime::Years(15), TraceLevel::kFailure, "c", "z");
  trace.Emit(SimTime::Years(29), TraceLevel::kWarning, "d", "w");
  const auto by_decade = ExperimentDiary::FromTrace(trace).ByDecade();
  ASSERT_EQ(by_decade.size(), 3u);
  EXPECT_EQ(by_decade[0].maintenance_actions, 1u);
  EXPECT_EQ(by_decade[1].failures, 2u);
  EXPECT_EQ(by_decade[2].warnings, 1u);
}

TEST(DiaryTest, RenderSubsamples) {
  ExperimentDiary diary;
  for (int i = 0; i < 200; ++i) {
    diary.Append({SimTime::Days(i), TraceLevel::kMaintenance, "c", "entry"});
  }
  const std::string rendered = diary.Render(20);
  EXPECT_NE(rendered.find("200 entries total"), std::string::npos);
}

TEST(DiaryTest, EmptyTraceEmptyDiary) {
  TraceLog trace;
  const auto diary = ExperimentDiary::FromTrace(trace);
  EXPECT_TRUE(diary.entries().empty());
  EXPECT_TRUE(diary.ByDecade().empty());
}

}  // namespace
}  // namespace centsim
