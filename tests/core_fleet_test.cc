// DeviceFleet tests: generation-tagged handle semantics, class interning,
// fleet-level metrics, the zero-allocation steady report path, and
// golden-digest parity pins for the fleet-backed district and century
// drivers against reports captured from the object-graph seed.

#include "src/core/fleet.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "src/core/device.h"
#include "src/core/district.h"
#include "src/core/network_fabric.h"
#include "src/core/theseus.h"
#include "src/sim/alloc_probe.h"
#include "src/sim/metrics.h"
#include "src/telemetry/run_manifest.h"

namespace centsim {
namespace {

DeviceClassSpec TestSpec(const char* name = "test-class") {
  DeviceClassSpec spec;
  spec.name = name;
  spec.hardware = SeriesSystem::EnergyHarvestingNode();
  return spec;
}

TEST(DeviceHandleTest, PackRoundTrips) {
  const DeviceHandle h = DeviceFleet::Pack(7, 42);
  EXPECT_EQ(DeviceFleet::SlotOf(h), 7u);
  EXPECT_EQ(DeviceFleet::GenerationOf(h), 42u);
  EXPECT_NE(h, kInvalidDeviceHandle);
}

TEST(DeviceFleetTest, AddAssignsSequentialSlotsOnFreshFleet) {
  Simulation sim(1);
  DeviceFleet fleet(sim);
  const uint32_t cls = fleet.InternClass(TestSpec());
  for (uint32_t i = 0; i < 10; ++i) {
    const DeviceHandle h = fleet.Add(cls, i, 0.0, 0, HarvesterModel());
    EXPECT_EQ(DeviceFleet::SlotOf(h), i);
    EXPECT_TRUE(fleet.IsLive(h));
  }
  EXPECT_EQ(fleet.size(), 10u);
}

TEST(DeviceFleetTest, RemoveStalesHandleAndRecyclesSlotLifo) {
  Simulation sim(1);
  DeviceFleet fleet(sim);
  const uint32_t cls = fleet.InternClass(TestSpec());
  const DeviceHandle a = fleet.Add(cls, 0, 0, 0, HarvesterModel());
  const DeviceHandle b = fleet.Add(cls, 1, 0, 0, HarvesterModel());
  fleet.Remove(b);
  EXPECT_FALSE(fleet.IsLive(b));
  EXPECT_TRUE(fleet.IsLive(a));

  // LIFO recycling: the freed slot is reused with a bumped generation, so
  // the old handle stays stale forever.
  const DeviceHandle c = fleet.Add(cls, 2, 0, 0, HarvesterModel());
  EXPECT_EQ(DeviceFleet::SlotOf(c), DeviceFleet::SlotOf(b));
  EXPECT_NE(DeviceFleet::GenerationOf(c), DeviceFleet::GenerationOf(b));
  EXPECT_TRUE(fleet.IsLive(c));
  EXPECT_FALSE(fleet.IsLive(b));
  EXPECT_DOUBLE_EQ(fleet.x(DeviceFleet::SlotOf(c)), 2.0);
}

TEST(DeviceFleetTest, ReusedSlotStateIsFullyReinitialized) {
  Simulation sim(1);
  DeviceFleet fleet(sim);
  const uint32_t cls = fleet.InternClass(TestSpec());
  const DeviceHandle a = fleet.Add(cls, 0, 0, 0, HarvesterModel());
  const uint32_t slot = DeviceFleet::SlotOf(a);
  fleet.DeployAt(slot);
  fleet.MarkFailedAt(slot);
  EXPECT_EQ(fleet.unit_generation(slot), 1u);
  fleet.Remove(a);

  const DeviceHandle b = fleet.Add(cls, 5, 6, 3, HarvesterModel::Constant(0.01));
  ASSERT_EQ(DeviceFleet::SlotOf(b), slot);
  EXPECT_FALSE(fleet.alive(slot));
  EXPECT_EQ(fleet.unit_generation(slot), 0u);
  EXPECT_EQ(fleet.zone(slot), 3u);
  EXPECT_EQ(fleet.tx_granted(slot), 0u);
  EXPECT_EQ(fleet.failure_event(slot), kInvalidEventId);
}

TEST(DeviceFleetTest, HandlesSurviveColumnGrowth) {
  Simulation sim(1);
  DeviceFleet fleet(sim);
  const uint32_t cls = fleet.InternClass(TestSpec());
  const DeviceHandle first = fleet.Add(cls, 123.0, 456.0, 0, HarvesterModel());
  // Grow far past any initial vector capacity; handles are indices, so the
  // first handle must stay live and its columns intact.
  for (uint32_t i = 0; i < 5000; ++i) {
    fleet.Add(cls, i, i, 0, HarvesterModel());
  }
  EXPECT_TRUE(fleet.IsLive(first));
  EXPECT_DOUBLE_EQ(fleet.x(DeviceFleet::SlotOf(first)), 123.0);
  EXPECT_DOUBLE_EQ(fleet.y(DeviceFleet::SlotOf(first)), 456.0);
  EXPECT_EQ(fleet.size(), 5001u);
}

TEST(DeviceFleetTest, InternClassDeduplicatesByContent) {
  Simulation sim(1);
  DeviceFleet fleet(sim);
  const uint32_t a = fleet.InternClass(TestSpec());
  const uint32_t b = fleet.InternClass(TestSpec());
  EXPECT_EQ(a, b);
  DeviceClassSpec other = TestSpec();
  other.tx_power_dbm = 14.0;
  EXPECT_NE(fleet.InternClass(other), a);
  EXPECT_EQ(fleet.class_count(), 2u);
}

TEST(DeviceFleetTest, LifecycleTransitionsTrackAliveAndCoveredCounts) {
  Simulation sim(1);
  DeviceFleet fleet(sim);
  const uint32_t cls = fleet.InternClass(TestSpec());
  fleet.Add(cls, 0, 0, 0, HarvesterModel());
  fleet.Add(cls, 1, 0, 0, HarvesterModel());
  fleet.DeployAt(0);
  fleet.DeployAt(1);
  EXPECT_EQ(fleet.alive_count(), 2u);
  fleet.AddCoveringAt(0, 1);
  EXPECT_EQ(fleet.covered_count(), 1u);
  fleet.AddCoveringAt(0, 1);
  EXPECT_EQ(fleet.covered_count(), 1u);  // Still one covered site.
  fleet.AddCoveringAt(0, -2);
  EXPECT_EQ(fleet.covered_count(), 0u);
  fleet.MarkFailedAt(0);
  fleet.RetireAt(1);
  EXPECT_EQ(fleet.alive_count(), 0u);
}

TEST(DeviceFleetTest, FailureHookFiresWithLiveHandle) {
  Simulation sim(1);
  DeviceFleet fleet(sim);
  const uint32_t cls = fleet.InternClass(TestSpec());
  const DeviceHandle h = fleet.Add(cls, 0, 0, 0, HarvesterModel());
  fleet.DeployAt(0);
  DeviceHandle seen = kInvalidDeviceHandle;
  fleet.SetFailureHook([&seen](DeviceHandle failed, SimTime) { seen = failed; });
  fleet.MarkFailedAt(0);
  EXPECT_EQ(seen, h);
}

TEST(DeviceFleetTest, FleetMetricsExposeGaugesWithoutPerDeviceCardinality) {
  Simulation sim(1);
  MetricsRegistry registry;
  sim.SetMetrics(&registry);
  DeviceFleet fleet(sim);
  const uint32_t cls = fleet.InternClass(TestSpec("acme-v1"));
  for (uint32_t i = 0; i < 100; ++i) {
    fleet.Add(cls, i, 0, 0, HarvesterModel());
    fleet.DeployAt(i);
  }
  fleet.EnableFleetMetrics();
  Gauge* alive = registry.GetGauge("fleet.alive_devices", {});
  ASSERT_NE(alive, nullptr);
  EXPECT_EQ(alive->value(), 100);
  fleet.MarkFailedAt(7);
  EXPECT_EQ(alive->value(), 99);
  fleet.CountReplacementAt(7);
  Counter* repl = registry.GetCounter("fleet.replacements", {{"class", "acme-v1"}});
  ASSERT_NE(repl, nullptr);
  EXPECT_EQ(repl->value(), 1.0);
  EXPECT_EQ(fleet.class_replacements(cls), 1u);
  // 100 devices, a handful of instruments: no per-device label explosion.
  EXPECT_LT(registry.size(), 16u);
  sim.SetMetrics(nullptr);
}

TEST(DeviceFleetTest, PerDeviceColumnFootprintStaysUnderBudget) {
  Simulation sim(1);
  DeviceFleet fleet(sim);
  const uint32_t cls = fleet.InternClass(TestSpec());
  fleet.Reserve(10000);
  for (uint32_t i = 0; i < 10000; ++i) {
    fleet.Add(cls, i, 0, 0, HarvesterModel());
  }
  // The ISSUE budget: <= ~200 bytes of fleet state per device.
  EXPECT_LE(fleet.BytesPerDevice(), 200.0);
  EXPECT_GT(fleet.BytesPerDevice(), 0.0);
}

// --- Facade handle semantics --------------------------------------------

class FleetDeviceFixture : public ::testing::Test {
 protected:
  FleetDeviceFixture() : sim_(99), fabric_(sim_) {}

  std::unique_ptr<EdgeDevice> MakeDevice(uint32_t id) {
    EdgeDeviceConfig cfg;
    cfg.id = id;
    cfg.tech = RadioTech::k802154;
    cfg.tx_power_dbm = 4.0;
    cfg.report_interval = SimTime::Hours(1);
    EnergyManager energy(HarvesterModel::Constant(0.05), EnergyStorage::Supercap(),
                         LoadProfileFor(cfg));
    return std::make_unique<EdgeDevice>(sim_, cfg, fabric_, fleet_, std::move(energy),
                                        SeriesSystem::EnergyHarvestingNode());
  }

  Simulation sim_;
  NetworkFabric fabric_;
  DeviceFleet fleet_{sim_};
};

TEST_F(FleetDeviceFixture, ReplaceUnitKeepsHandleAndBumpsUnitGeneration) {
  auto dev = MakeDevice(1);
  const DeviceHandle h = dev->handle();
  dev->Deploy();
  EXPECT_EQ(dev->unit_generation(), 1u);
  dev->ReplaceUnit();
  // A unit swap at the same site does NOT stale the site handle — the slot
  // and handle generation are untouched; only the unit generation moves.
  EXPECT_EQ(dev->handle(), h);
  EXPECT_TRUE(fleet_.IsLive(h));
  EXPECT_EQ(dev->unit_generation(), 2u);
}

TEST_F(FleetDeviceFixture, DestructionStalesHandle) {
  auto dev = MakeDevice(2);
  const DeviceHandle h = dev->handle();
  dev->Deploy();
  ASSERT_TRUE(fleet_.IsLive(h));
  dev.reset();
  EXPECT_FALSE(fleet_.IsLive(h));
  EXPECT_EQ(fleet_.size(), 0u);
}

TEST_F(FleetDeviceFixture, DevicesOfSameMakeShareOneClass) {
  auto d1 = MakeDevice(1);
  auto d2 = MakeDevice(2);
  EXPECT_EQ(d1->device_class(), d2->device_class());
  EXPECT_EQ(fleet_.class_count(), 1u);
}

TEST_F(FleetDeviceFixture, SteadyStateReportPathAddsZeroHeapAllocations) {
  if (!AllocProbeEnabled()) {
    GTEST_SKIP() << "allocation probe disabled (sanitizer build)";
  }
  auto dev = MakeDevice(3);
  dev->Deploy();
  // Warm up: first reports grow the event pool and any lazy structures.
  sim_.RunUntil(SimTime::Days(10));
  AllocScope scope;
  sim_.RunUntil(SimTime::Days(40));
  EXPECT_GT(dev->attempts(), 700u);  // ~24/day for 30 days.
  EXPECT_EQ(scope.delta(), 0u);
}

// --- Golden parity pins ---------------------------------------------------
//
// Report digests captured from the object-graph seed (commit a761589, seed
// 20260806) before the fleet refactor; the fleet-backed drivers must
// reproduce every bit. Re-pin only with a statistical-equivalence
// justification in DESIGN.md.
constexpr const char* kGoldenDistrictDigest = "838a9e16cbe806c2";
constexpr const char* kGoldenCenturyDigest = "716acb8421dbc328";

TEST(FleetGoldenTest, DistrictReportMatchesObjectGraphSeed) {
  DistrictConfig cfg;
  cfg.seed = 20260806;
  cfg.device_count = 1500;
  cfg.area_km2 = 9.0;
  cfg.zone_grid = 3;
  cfg.horizon = SimTime::Years(50);
  const DistrictReport r = RunDistrictScenario(cfg);
  std::ostringstream out;
  out << std::hexfloat;
  out << r.gateway_count << '|' << r.initial_coverage << '|' << r.mean_device_availability
      << '|' << r.mean_service_availability << '|' << r.min_yearly_service << '|'
      << r.device_failures << '|' << r.device_replacements << '|' << r.gateway_failures
      << '|' << r.gateway_repairs;
  for (double v : r.yearly_service) {
    out << '|' << v;
  }
  const std::string digest = ConfigDigest(out.str());
  std::printf("district parity digest: %s\n", digest.c_str());
  EXPECT_EQ(digest, kGoldenDistrictDigest);
}

TEST(FleetGoldenTest, CenturyReportMatchesObjectGraphSeed) {
  CenturyConfig cfg;
  cfg.seed = 20260806;
  cfg.fleet_size = 800;
  cfg.horizon = SimTime::Years(100);
  cfg.proactive_refresh_age = SimTime::Years(25);
  cfg.life_improvement_per_decade = 1.05;
  const CenturyReport r = RunCenturyScenario(cfg);
  std::ostringstream out;
  out << std::hexfloat;
  out << r.mean_availability << '|' << r.min_yearly_availability << '|' << r.total_failures
      << '|' << r.total_replacements << '|' << r.proactive_replacements << '|'
      << r.units_deployed << '|' << r.max_unit_generations;
  for (double v : r.yearly_availability) {
    out << '|' << v;
  }
  const std::string digest = ConfigDigest(out.str());
  std::printf("century parity digest: %s\n", digest.c_str());
  EXPECT_EQ(digest, kGoldenCenturyDigest);
}

}  // namespace
}  // namespace centsim
