#include "src/sim/trace.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

TEST(TraceTest, RetainsAcceptedRecords) {
  TraceLog log(TraceLevel::kInfo);
  log.Emit(SimTime::Seconds(1), TraceLevel::kInfo, "gw", "up");
  log.Emit(SimTime::Seconds(2), TraceLevel::kFailure, "gw", "down");
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[0].message, "up");
  EXPECT_EQ(log.records()[1].level, TraceLevel::kFailure);
}

TEST(TraceTest, MinLevelFilters) {
  TraceLog log(TraceLevel::kWarning);
  log.Emit(SimTime(), TraceLevel::kInfo, "x", "dropped");
  log.Emit(SimTime(), TraceLevel::kWarning, "x", "kept");
  EXPECT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.emitted_count(), 1u);
}

TEST(TraceTest, SinkSeesRecords) {
  TraceLog log(TraceLevel::kDebug);
  int seen = 0;
  log.AddSink([&](const TraceRecord&) { ++seen; });
  log.Emit(SimTime(), TraceLevel::kInfo, "x", "a");
  log.Emit(SimTime(), TraceLevel::kDebug, "x", "b");
  EXPECT_EQ(seen, 2);
}

TEST(TraceTest, RetentionCanBeDisabled) {
  TraceLog log(TraceLevel::kDebug);
  log.EnableRetention(false);
  log.Emit(SimTime(), TraceLevel::kInfo, "x", "a");
  EXPECT_TRUE(log.records().empty());
  EXPECT_EQ(log.emitted_count(), 1u);
}

TEST(TraceTest, FilterAtLeast) {
  TraceLog log(TraceLevel::kDebug);
  log.Emit(SimTime(), TraceLevel::kInfo, "x", "i");
  log.Emit(SimTime(), TraceLevel::kMaintenance, "x", "m");
  log.Emit(SimTime(), TraceLevel::kFailure, "x", "f");
  const auto maint_up = log.FilterAtLeast(TraceLevel::kMaintenance);
  EXPECT_EQ(maint_up.size(), 2u);
}

TEST(TraceTest, RecordToStringContainsParts) {
  TraceRecord rec{SimTime::Hours(2), TraceLevel::kMaintenance, "gw-1", "swapped PSU"};
  const std::string s = rec.ToString();
  EXPECT_NE(s.find("MAINT"), std::string::npos);
  EXPECT_NE(s.find("gw-1"), std::string::npos);
  EXPECT_NE(s.find("swapped PSU"), std::string::npos);
}

TEST(TraceTest, LevelNames) {
  EXPECT_STREQ(TraceLevelName(TraceLevel::kDebug), "DEBUG");
  EXPECT_STREQ(TraceLevelName(TraceLevel::kFailure), "FAIL");
}

TEST(TraceTest, ShouldEmitMatchesEmitFiltering) {
  TraceLog log(TraceLevel::kMaintenance);
  EXPECT_FALSE(log.ShouldEmit(TraceLevel::kDebug));
  EXPECT_FALSE(log.ShouldEmit(TraceLevel::kInfo));
  EXPECT_TRUE(log.ShouldEmit(TraceLevel::kMaintenance));
  EXPECT_TRUE(log.ShouldEmit(TraceLevel::kFailure));

  // The guard must agree with what Emit actually keeps, so call sites can
  // skip message formatting without changing what gets logged.
  log.Emit(SimTime(), TraceLevel::kInfo, "x", "dropped");
  log.Emit(SimTime(), TraceLevel::kFailure, "x", "kept");
  EXPECT_EQ(log.emitted_count(), 1u);

  log.set_min_level(TraceLevel::kDebug);
  EXPECT_TRUE(log.ShouldEmit(TraceLevel::kDebug));
}

}  // namespace
}  // namespace centsim
