// Cross-module integration tests: the full device -> radio -> gateway ->
// backhaul -> endpoint pipeline with authentication, sensing, energy, and
// maintenance running together.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/device.h"
#include "src/core/fleet.h"
#include "src/core/network_fabric.h"
#include "src/energy/harvester.h"
#include "src/mgmt/maintenance.h"
#include "src/net/backhaul.h"
#include "src/security/report_auth.h"
#include "src/security/signing.h"

namespace centsim {
namespace {

class PipelineFixture : public ::testing::Test {
 protected:
  PipelineFixture()
      : sim_(314),
        fabric_(sim_),
        backhaul_("bh", {SimTime::Years(500), SimTime::Hours(1)}, RandomStream(3)),
        crew_(sim_, MaintenancePolicy{}) {
    fabric_.SetEndpoint(&endpoint_);
    for (int i = 0; i < 16; ++i) {
      secret_[i] = static_cast<uint8_t>(i * 7 + 1);
    }
    endpoint_.RequireAuthentication(secret_);

    GatewayConfig gc;
    gc.id = 900;
    gc.tech = RadioTech::k802154;
    gc.name = "gw";
    gateway_ = std::make_unique<Gateway>(sim_, gc, SeriesSystem::RaspberryPiGateway());
    gateway_->AttachBackhaul(&backhaul_);
    gateway_->SetRepairPolicy(crew_.AsRepairPolicy());
    gateway_->Deploy();
    fabric_.AddGateway(gateway_.get());
  }

  std::unique_ptr<EdgeDevice> MakeDevice(uint32_t id, SensorKind kind) {
    EdgeDeviceConfig cfg;
    cfg.id = id;
    cfg.x_m = 40.0;
    cfg.tech = RadioTech::k802154;
    cfg.tx_power_dbm = 4.0;
    cfg.sensor_kind = kind;
    cfg.name = "dev-" + std::to_string(id);
    SolarHarvester::Params sp;
    sp.peak_power_w = 0.02;
    EnergyManager energy(HarvesterModel::Solar(sp), EnergyStorage::Supercap(),
                         LoadProfileFor(cfg));
    auto dev = std::make_unique<EdgeDevice>(sim_, cfg, fabric_, fleet_, std::move(energy),
                                            SeriesSystem::EnergyHarvestingNode());
    dev->EnableSigning(secret_);
    return dev;
  }

  Simulation sim_;
  NetworkFabric fabric_;
  CloudEndpoint endpoint_;
  Backhaul backhaul_;
  MaintenanceCrew crew_;
  std::unique_ptr<Gateway> gateway_;
  DeviceFleet fleet_{sim_};
  SipHashKey secret_;
};

TEST_F(PipelineFixture, SignedReportsFlowEndToEnd) {
  auto dev = MakeDevice(1, SensorKind::kTemperature);
  dev->Deploy();
  sim_.RunUntil(SimTime::Days(30));
  EXPECT_GT(endpoint_.PacketsFrom(1), 600u);
  EXPECT_EQ(endpoint_.auth_rejected(), 0u);
  EXPECT_EQ(endpoint_.replay_rejected(), 0u);
}

TEST_F(PipelineFixture, ForgedPacketRejectedAtEndpoint) {
  UplinkPacket forged;
  forged.device_id = 1;
  forged.sequence = 1;
  forged.authenticated = true;
  forged.auth_tag = 0xDEADBEEF;  // Attacker without the key.
  EXPECT_FALSE(endpoint_.Record(forged, SimTime::Hours(1)));
  EXPECT_EQ(endpoint_.auth_rejected(), 1u);
  EXPECT_EQ(endpoint_.total_packets(), 0u);
}

TEST_F(PipelineFixture, ReplayedPacketRejectedAtEndpoint) {
  // Capture a legitimately signed packet and replay it.
  const SipHashKey device_key = DeriveDeviceKey(secret_, 7);
  UplinkPacket pkt;
  pkt.device_id = 7;
  pkt.sequence = 5;
  pkt.reading.device_id = 7;
  pkt.reading.sequence = 5;
  pkt.authenticated = true;
  pkt.auth_tag = ComputeReadingTag(device_key, 7, 5, pkt.reading);
  EXPECT_TRUE(endpoint_.Record(pkt, SimTime::Hours(1)));
  EXPECT_FALSE(endpoint_.Record(pkt, SimTime::Hours(2)));  // Replay.
  EXPECT_EQ(endpoint_.replay_rejected(), 1u);
}

TEST_F(PipelineFixture, UnsignedPacketsPassWhenNotFlagged) {
  // Legacy/foreign devices that do not claim authentication still count
  // (the gateway blocklist, not the verifier, handles unwanted devices).
  UplinkPacket plain;
  plain.device_id = 99;
  EXPECT_TRUE(endpoint_.Record(plain, SimTime::Hours(1)));
}

TEST_F(PipelineFixture, ReadingsCarrySensorData) {
  auto dev = MakeDevice(2, SensorKind::kConcreteHealth);
  dev->Deploy();
  sim_.RunUntil(SimTime::Days(7));
  // The concrete-health index starts near 100 and declines very slowly:
  // delivered readings should be near 100*100 centi-units.
  EXPECT_GT(endpoint_.PacketsFrom(2), 100u);
}

TEST_F(PipelineFixture, TwoDevicesShareOneGateway) {
  auto a = MakeDevice(10, SensorKind::kTemperature);
  auto b = MakeDevice(11, SensorKind::kVibration);
  a->Deploy();
  b->Deploy();
  sim_.RunUntil(SimTime::Days(14));
  EXPECT_GT(endpoint_.PacketsFrom(10), 300u);
  EXPECT_GT(endpoint_.PacketsFrom(11), 300u);
  EXPECT_EQ(gateway_->forwarded(), endpoint_.total_packets());
}

TEST_F(PipelineFixture, GatewayRepairCycleInvisibleAtWeeklyGranularity) {
  auto dev = MakeDevice(20, SensorKind::kTemperature);
  dev->SetFailureCallback([this](EdgeDevice& d, SimTime) {
    sim_.scheduler().ScheduleAfter(SimTime::Days(14), [&d] { d.ReplaceUnit(); });
  });
  dev->Deploy();
  sim_.RunUntil(SimTime::Years(10));
  // Gateway fails multiple times over a decade; the 3-day crew keeps
  // weekly uptime near perfect anyway.
  EXPECT_GT(gateway_->failure_count(), 0u);
  EXPECT_GT(endpoint_.DeviceWeeklyUptime(20, SimTime::Years(10)), 0.93);
}

}  // namespace
}  // namespace centsim
