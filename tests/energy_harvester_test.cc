#include "src/energy/harvester.h"

#include <gtest/gtest.h>

#include <cmath>

namespace centsim {
namespace {

SolarHarvester MakeSolar() {
  SolarHarvester::Params p;
  p.peak_power_w = 0.010;
  return SolarHarvester(p);
}

TEST(SolarTest, ZeroAtNight) {
  SolarHarvester sun = MakeSolar();
  // Midnight on several days.
  for (int d = 0; d < 5; ++d) {
    EXPECT_DOUBLE_EQ(sun.PowerAt(SimTime::Days(d)), 0.0);
    EXPECT_DOUBLE_EQ(sun.PowerAt(SimTime::Days(d) + SimTime::Hours(3)), 0.0);
  }
}

TEST(SolarTest, PositiveAtNoon) {
  SolarHarvester sun = MakeSolar();
  for (int d = 0; d < 30; ++d) {
    EXPECT_GT(sun.PowerAt(SimTime::Days(d) + SimTime::Hours(12)), 0.0);
  }
}

TEST(SolarTest, NoonBeatsMorning) {
  SolarHarvester sun = MakeSolar();
  const SimTime day = SimTime::Days(10);
  EXPECT_GT(sun.PowerAt(day + SimTime::Hours(12)), sun.PowerAt(day + SimTime::Hours(7)));
}

TEST(SolarTest, DegradationReducesOutputOverDecades) {
  SolarHarvester sun = MakeSolar();
  // Compare mean power of year 0 vs year 40 (same seasonal window).
  const double early = sun.MeanPower(SimTime(), SimTime::Years(1));
  const double late = sun.MeanPower(SimTime::Years(40), SimTime::Years(41));
  EXPECT_LT(late, early);
  // 0.5%/yr for 40 years ~ 18% loss.
  EXPECT_NEAR(late / early, std::pow(0.995, 40.0), 0.05);
}

TEST(SolarTest, MeanPowerIsReasonableFractionOfPeak) {
  SolarHarvester sun = MakeSolar();
  const double mean = sun.MeanPower(SimTime(), SimTime::Years(1));
  EXPECT_GT(mean, 0.01 * 0.05);  // > 5% of peak.
  EXPECT_LT(mean, 0.01 * 0.5);   // < 50% of peak.
}

TEST(SolarTest, WeatherVariesAcrossDays) {
  SolarHarvester sun = MakeSolar();
  const double d1 = sun.PowerAt(SimTime::Days(100) + SimTime::Hours(12));
  const double d2 = sun.PowerAt(SimTime::Days(101) + SimTime::Hours(12));
  const double d3 = sun.PowerAt(SimTime::Days(140) + SimTime::Hours(12));
  EXPECT_TRUE(d1 != d2 || d2 != d3);
}

TEST(HarvesterTest, EnergyOverIsAdditive) {
  SolarHarvester sun = MakeSolar();
  const SimTime a = SimTime::Hours(6);
  const SimTime b = SimTime::Hours(12);
  const SimTime c = SimTime::Hours(18);
  const double whole = sun.EnergyOver(a, c);
  const double split = sun.EnergyOver(a, b) + sun.EnergyOver(b, c);
  EXPECT_NEAR(whole, split, whole * 0.02 + 1e-9);
}

TEST(HarvesterTest, EnergyOverEmptyIntervalIsZero) {
  SolarHarvester sun = MakeSolar();
  EXPECT_DOUBLE_EQ(sun.EnergyOver(SimTime::Hours(5), SimTime::Hours(5)), 0.0);
}

TEST(CorrosionTest, NearConstantOutput) {
  CorrosionHarvester::Params p;
  CorrosionHarvester rebar(p);
  EXPECT_DOUBLE_EQ(rebar.PowerAt(SimTime()), 300e-6);
  EXPECT_GT(rebar.PowerAt(SimTime::Years(25)), 150e-6);
}

TEST(CorrosionTest, DecaysToEndOfLifeFraction) {
  CorrosionHarvester::Params p;
  p.initial_power_w = 300e-6;
  p.structure_life = SimTime::Years(50);
  p.end_of_life_fraction = 0.4;
  CorrosionHarvester rebar(p);
  EXPECT_NEAR(rebar.PowerAt(SimTime::Years(50)), 120e-6, 1e-9);
  // Holds the trickle after the structure's design life.
  EXPECT_NEAR(rebar.PowerAt(SimTime::Years(80)), 120e-6, 1e-9);
}

TEST(CorrosionTest, ClosedFormMatchesNumericIntegral) {
  CorrosionHarvester::Params p;
  CorrosionHarvester rebar(p);
  const SimTime from = SimTime::Years(10);
  const SimTime to = SimTime::Years(60);  // Spans the ramp/flat boundary.
  const double closed = rebar.EnergyOver(from, to);
  // Generic trapezoid from the base class.
  const double numeric = rebar.Harvester::EnergyOver(from, to);
  EXPECT_NEAR(closed, numeric, closed * 0.001);
}

TEST(ThermalTest, AfternoonPeak) {
  ThermalHarvester::Params p;
  ThermalHarvester teg(p);
  const SimTime day = SimTime::Days(3);
  EXPECT_GT(teg.PowerAt(day + SimTime::Hours(15)), teg.PowerAt(day + SimTime::Hours(4)));
  EXPECT_GT(teg.PowerAt(day + SimTime::Hours(4)), 0.0);  // Baseline, not zero.
}

TEST(VibrationTest, RushHourBeatsNight) {
  VibrationHarvester::Params p;
  VibrationHarvester vib(p);
  const SimTime monday = SimTime::Days(7);  // Day 7 = Monday again.
  EXPECT_GT(vib.PowerAt(monday + SimTime::Hours(8)), vib.PowerAt(monday + SimTime::Hours(2)));
}

TEST(VibrationTest, WeekendQuieterThanWeekday) {
  VibrationHarvester::Params p;
  VibrationHarvester vib(p);
  const SimTime mon = SimTime::Days(0) + SimTime::Hours(8);
  const SimTime sat = SimTime::Days(5) + SimTime::Hours(8);
  EXPECT_GT(vib.PowerAt(mon), vib.PowerAt(sat));
}

}  // namespace
}  // namespace centsim
