#include "src/energy/harvester.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

namespace centsim {
namespace {

SolarHarvester MakeSolar() {
  SolarHarvester::Params p;
  p.peak_power_w = 0.010;
  return SolarHarvester(p);
}

TEST(SolarTest, ZeroAtNight) {
  SolarHarvester sun = MakeSolar();
  // Midnight on several days.
  for (int d = 0; d < 5; ++d) {
    EXPECT_DOUBLE_EQ(sun.PowerAt(SimTime::Days(d)), 0.0);
    EXPECT_DOUBLE_EQ(sun.PowerAt(SimTime::Days(d) + SimTime::Hours(3)), 0.0);
  }
}

TEST(SolarTest, PositiveAtNoon) {
  SolarHarvester sun = MakeSolar();
  for (int d = 0; d < 30; ++d) {
    EXPECT_GT(sun.PowerAt(SimTime::Days(d) + SimTime::Hours(12)), 0.0);
  }
}

TEST(SolarTest, NoonBeatsMorning) {
  SolarHarvester sun = MakeSolar();
  const SimTime day = SimTime::Days(10);
  EXPECT_GT(sun.PowerAt(day + SimTime::Hours(12)), sun.PowerAt(day + SimTime::Hours(7)));
}

TEST(SolarTest, DegradationReducesOutputOverDecades) {
  SolarHarvester sun = MakeSolar();
  // Compare mean power of year 0 vs year 40 (same seasonal window).
  const double early = sun.MeanPower(SimTime(), SimTime::Years(1));
  const double late = sun.MeanPower(SimTime::Years(40), SimTime::Years(41));
  EXPECT_LT(late, early);
  // 0.5%/yr for 40 years ~ 18% loss.
  EXPECT_NEAR(late / early, std::pow(0.995, 40.0), 0.05);
}

TEST(SolarTest, MeanPowerIsReasonableFractionOfPeak) {
  SolarHarvester sun = MakeSolar();
  const double mean = sun.MeanPower(SimTime(), SimTime::Years(1));
  EXPECT_GT(mean, 0.01 * 0.05);  // > 5% of peak.
  EXPECT_LT(mean, 0.01 * 0.5);   // < 50% of peak.
}

TEST(SolarTest, WeatherVariesAcrossDays) {
  SolarHarvester sun = MakeSolar();
  const double d1 = sun.PowerAt(SimTime::Days(100) + SimTime::Hours(12));
  const double d2 = sun.PowerAt(SimTime::Days(101) + SimTime::Hours(12));
  const double d3 = sun.PowerAt(SimTime::Days(140) + SimTime::Hours(12));
  EXPECT_TRUE(d1 != d2 || d2 != d3);
}

TEST(HarvesterTest, EnergyOverIsAdditive) {
  SolarHarvester sun = MakeSolar();
  const SimTime a = SimTime::Hours(6);
  const SimTime b = SimTime::Hours(12);
  const SimTime c = SimTime::Hours(18);
  const double whole = sun.EnergyOver(a, c);
  const double split = sun.EnergyOver(a, b) + sun.EnergyOver(b, c);
  EXPECT_NEAR(whole, split, whole * 0.02 + 1e-9);
}

TEST(HarvesterTest, EnergyOverEmptyIntervalIsZero) {
  SolarHarvester sun = MakeSolar();
  EXPECT_DOUBLE_EQ(sun.EnergyOver(SimTime::Hours(5), SimTime::Hours(5)), 0.0);
}

TEST(CorrosionTest, NearConstantOutput) {
  CorrosionHarvester::Params p;
  CorrosionHarvester rebar(p);
  EXPECT_DOUBLE_EQ(rebar.PowerAt(SimTime()), 300e-6);
  EXPECT_GT(rebar.PowerAt(SimTime::Years(25)), 150e-6);
}

TEST(CorrosionTest, DecaysToEndOfLifeFraction) {
  CorrosionHarvester::Params p;
  p.initial_power_w = 300e-6;
  p.structure_life = SimTime::Years(50);
  p.end_of_life_fraction = 0.4;
  CorrosionHarvester rebar(p);
  EXPECT_NEAR(rebar.PowerAt(SimTime::Years(50)), 120e-6, 1e-9);
  // Holds the trickle after the structure's design life.
  EXPECT_NEAR(rebar.PowerAt(SimTime::Years(80)), 120e-6, 1e-9);
}

TEST(CorrosionTest, ClosedFormMatchesNumericIntegral) {
  CorrosionHarvester::Params p;
  CorrosionHarvester rebar(p);
  const SimTime from = SimTime::Years(10);
  const SimTime to = SimTime::Years(60);  // Spans the ramp/flat boundary.
  const double closed = rebar.EnergyOver(from, to);
  // Generic trapezoid from the base class.
  const double numeric = rebar.Harvester::EnergyOver(from, to);
  EXPECT_NEAR(closed, numeric, closed * 0.001);
}

TEST(ThermalTest, AfternoonPeak) {
  ThermalHarvester::Params p;
  ThermalHarvester teg(p);
  const SimTime day = SimTime::Days(3);
  EXPECT_GT(teg.PowerAt(day + SimTime::Hours(15)), teg.PowerAt(day + SimTime::Hours(4)));
  EXPECT_GT(teg.PowerAt(day + SimTime::Hours(4)), 0.0);  // Baseline, not zero.
}

TEST(VibrationTest, RushHourBeatsNight) {
  VibrationHarvester::Params p;
  VibrationHarvester vib(p);
  const SimTime monday = SimTime::Days(7);  // Day 7 = Monday again.
  EXPECT_GT(vib.PowerAt(monday + SimTime::Hours(8)), vib.PowerAt(monday + SimTime::Hours(2)));
}

TEST(VibrationTest, WeekendQuieterThanWeekday) {
  VibrationHarvester::Params p;
  VibrationHarvester vib(p);
  const SimTime mon = SimTime::Days(0) + SimTime::Hours(8);
  const SimTime sat = SimTime::Days(5) + SimTime::Hours(8);
  EXPECT_GT(vib.PowerAt(mon), vib.PowerAt(sat));
}

// --- Closed-form integrals vs a refined reference integrator ---------------
//
// The sampled engine's fast-forward banks multi-year spans through the
// closed forms (EnergyOverAnalytic), so these must match the *true*
// integral of PowerAt to near machine precision. The default EnergyOver
// trapezoid caps its step count and is only ~1e-3 accurate over long
// spans, so the 1e-9 reference here is an adaptive Simpson run piecewise
// between the power models' smooth-piece boundaries (day edges, the
// daylight/thermal-lobe/traffic gates, and the rush-hour hump centers).

double SimpsonEstimate(double a, double b, double fa, double fm, double fb) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double AdaptiveStep(const std::function<double(double)>& f, double a, double b, double fa,
                    double fb, double fm, double whole, double eps, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = SimpsonEstimate(a, m, fa, flm, fm);
  const double right = SimpsonEstimate(m, b, fm, frm, fb);
  const double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * eps) {
    return left + right + delta / 15.0;
  }
  return AdaptiveStep(f, a, m, fa, fm, flm, left, 0.5 * eps, depth - 1) +
         AdaptiveStep(f, m, b, fm, fb, frm, right, 0.5 * eps, depth - 1);
}

double AdaptiveSimpson(const std::function<double(double)>& f, double a, double b, double eps) {
  if (!(b > a)) {
    return 0.0;
  }
  const double fa = f(a);
  const double fb = f(b);
  const double fm = f(0.5 * (a + b));
  return AdaptiveStep(f, a, b, fa, fb, fm, SimpsonEstimate(a, b, fa, fm, fb), eps, 48);
}

// Integrates PowerAt over [from, to] with breakpoints at every day edge
// and every within-day piece boundary, targeting ~1e-11 relative accuracy
// (scale is the closed form's own magnitude — it only sets tolerances).
double ReferenceEnergy(const std::function<double(SimTime)>& power_at, SimTime from, SimTime to,
                       double scale_j) {
  constexpr double kDay = 24.0 * 3600.0;
  // Gates and kinks of the three periodic models, as day fractions:
  // solar daylight (0.25, 0.75), thermal lobe (0.375, 0.875), traffic
  // window (0.25, 0.95), rush-hour hump centers (08:00, 17:30).
  const double kCuts[] = {0.25, 8.0 / 24.0, 0.375, 17.5 / 24.0, 0.75, 0.875, 0.95};
  const double t0 = from.ToSeconds();
  const double t1 = to.ToSeconds();
  std::vector<double> cuts;
  cuts.push_back(t0);
  const int64_t last_day = static_cast<int64_t>(t1 / kDay);
  for (int64_t day = static_cast<int64_t>(t0 / kDay); day <= last_day; ++day) {
    const double day_start = static_cast<double>(day) * kDay;
    const double edges[] = {day_start,
                            day_start + kCuts[0] * kDay,
                            day_start + kCuts[1] * kDay,
                            day_start + kCuts[2] * kDay,
                            day_start + kCuts[3] * kDay,
                            day_start + kCuts[4] * kDay,
                            day_start + kCuts[5] * kDay,
                            day_start + kCuts[6] * kDay};
    for (const double e : edges) {
      if (e > t0 && e < t1) {
        cuts.push_back(e);
      }
    }
  }
  cuts.push_back(t1);
  std::sort(cuts.begin(), cuts.end());
  const auto f = [&](double s) { return power_at(SimTime::Seconds(s)); };
  const double eps_total = 1e-11 * std::max(std::fabs(scale_j), 1e-12);
  double total = 0.0;
  for (size_t i = 1; i < cuts.size(); ++i) {
    const double span = cuts[i] - cuts[i - 1];
    if (span <= 0.0) {
      continue;
    }
    total += AdaptiveSimpson(f, cuts[i - 1], cuts[i], eps_total * (span / (t1 - t0)));
  }
  return total;
}

void ExpectClosedFormMatchesReference(const HarvesterModel& model, SimTime from, SimTime to) {
  const double analytic = model.EnergyOverAnalytic(from, to);
  ASSERT_GT(analytic, 0.0);
  const double reference =
      ReferenceEnergy([&](SimTime t) { return model.PowerAt(t); }, from, to, analytic);
  EXPECT_LT(std::fabs(analytic - reference) / reference, 1e-9)
      << model.name() << " over [" << from.ToSeconds() << ", " << to.ToSeconds()
      << "]s: analytic " << analytic << " reference " << reference;
}

TEST(ClosedFormParityTest, SolarMatchesReferenceOverMultiYearSpans) {
  SolarHarvester::Params p;
  ExpectClosedFormMatchesReference(HarvesterModel::Solar(p), SimTime(), SimTime::Years(2));
  // Partial-day endpoints inside daylight, years in.
  ExpectClosedFormMatchesReference(HarvesterModel::Solar(p),
                                   SimTime::Days(100) + SimTime::Hours(7) + SimTime::Minutes(17),
                                   SimTime::Years(3) + SimTime::Hours(13));
  // Stressed parameters: deep seasonal swing, fast degradation, offset phase.
  SolarHarvester::Params hard;
  hard.seasonal_swing = 0.6;
  hard.degradation_per_year = 0.03;
  hard.latitude_phase = 1.1;
  hard.weather_seed = 99;
  ExpectClosedFormMatchesReference(HarvesterModel::Solar(hard), SimTime::Days(3),
                                   SimTime::Years(2) + SimTime::Days(11));
}

TEST(ClosedFormParityTest, ThermalMatchesReferenceOverMultiYearSpans) {
  ThermalHarvester::Params p;
  ExpectClosedFormMatchesReference(HarvesterModel::Thermal(p), SimTime(), SimTime::Years(2));
  p.baseline_fraction = 0.35;
  ExpectClosedFormMatchesReference(HarvesterModel::Thermal(p),
                                   SimTime::Days(40) + SimTime::Hours(11),
                                   SimTime::Years(2) + SimTime::Hours(5));
}

TEST(ClosedFormParityTest, VibrationMatchesReferenceOverMultiYearSpans) {
  VibrationHarvester::Params p;
  ExpectClosedFormMatchesReference(HarvesterModel::Vibration(p), SimTime(), SimTime::Years(2));
  p.weekend_factor = 0.3;
  p.night_fraction = 0.12;
  ExpectClosedFormMatchesReference(HarvesterModel::Vibration(p),
                                   SimTime::Days(6) + SimTime::Hours(9),  // Mid-weekend start.
                                   SimTime::Years(2) + SimTime::Days(4));
}

TEST(ClosedFormParityTest, CorrosionAndConstantAreExact) {
  CorrosionHarvester::Params p;
  const HarvesterModel corrosion = HarvesterModel::Corrosion(p);
  // Piecewise-linear power: reference with a breakpoint at structure life.
  const SimTime from = SimTime::Years(49);
  const SimTime to = SimTime::Years(51);  // Straddles the 50-year knee.
  const double analytic = corrosion.EnergyOverAnalytic(from, to);
  double reference =
      ReferenceEnergy([&](SimTime t) { return corrosion.PowerAt(t); }, from,
                      p.structure_life, analytic) +
      ReferenceEnergy([&](SimTime t) { return corrosion.PowerAt(t); }, p.structure_life, to,
                      analytic);
  EXPECT_LT(std::fabs(analytic - reference) / reference, 1e-9);

  const HarvesterModel constant = HarvesterModel::Constant(2.5e-3);
  EXPECT_DOUBLE_EQ(constant.EnergyOverAnalytic(SimTime::Days(1), SimTime::Days(3)),
                   2.5e-3 * 2.0 * 24.0 * 3600.0);
}

TEST(ClosedFormParityTest, VirtualAndModelClosedFormsAreBitIdentical) {
  // The virtual overrides, the free functions, and the tagged union all
  // share one implementation — equal params must produce equal doubles.
  SolarHarvester::Params sp;
  sp.seasonal_swing = 0.5;
  const SimTime from = SimTime::Days(200);
  const SimTime to = SimTime::Years(4);
  EXPECT_EQ(SolarHarvester(sp).EnergyOver(from, to),
            HarvesterModel::Solar(sp).EnergyOverAnalytic(from, to));
  EXPECT_EQ(SolarEnergyOverAnalytic(sp, from, to),
            HarvesterModel::Solar(sp).EnergyOverAnalytic(from, to));
  ThermalHarvester::Params tp;
  EXPECT_EQ(ThermalHarvester(tp).EnergyOver(from, to),
            HarvesterModel::Thermal(tp).EnergyOverAnalytic(from, to));
  VibrationHarvester::Params vp;
  EXPECT_EQ(VibrationHarvester(vp).EnergyOver(from, to),
            HarvesterModel::Vibration(vp).EnergyOverAnalytic(from, to));
}

TEST(ClosedFormParityTest, ZeroLengthSpanIsZero) {
  const SimTime t = SimTime::Days(123) + SimTime::Hours(10);
  EXPECT_DOUBLE_EQ(HarvesterModel::Solar(SolarHarvester::Params{}).EnergyOverAnalytic(t, t), 0.0);
  EXPECT_DOUBLE_EQ(HarvesterModel::Thermal(ThermalHarvester::Params{}).EnergyOverAnalytic(t, t),
                   0.0);
  EXPECT_DOUBLE_EQ(
      HarvesterModel::Vibration(VibrationHarvester::Params{}).EnergyOverAnalytic(t, t), 0.0);
}

TEST(ClosedFormParityTest, TrapezoidDefaultAgreesCoarsely) {
  // The serial engine's adaptive trapezoid is the digest-stable default;
  // it should sit within a couple percent of the exact integral.
  const SimTime from = SimTime::Days(10);
  const SimTime to = SimTime::Days(40);
  for (const HarvesterModel& model :
       {HarvesterModel::Solar(SolarHarvester::Params{}),
        HarvesterModel::Thermal(ThermalHarvester::Params{}),
        HarvesterModel::Vibration(VibrationHarvester::Params{})}) {
    const double analytic = model.EnergyOverAnalytic(from, to);
    const double trapezoid = model.EnergyOver(from, to);
    EXPECT_LT(std::fabs(trapezoid - analytic) / analytic, 2e-2) << model.name();
  }
}

}  // namespace
}  // namespace centsim
