#include "src/radio/phy_model.h"

#include <gtest/gtest.h>

#include "src/radio/link_budget.h"
#include "src/radio/medium.h"
#include "src/radio/phy_802154.h"

namespace centsim {
namespace {

// The unified surface must return the exact doubles of the per-tech
// statics it wraps: callers migrated from the branchy form may sit on
// golden-digest paths.

TEST(PhyModel, Matches802154Statics) {
  const PhyModel phy = PhyModel::For802154();
  EXPECT_EQ(phy.tech(), RadioTech::k802154);
  for (const size_t payload : {2u, 12u, 64u, 127u}) {
    EXPECT_EQ(phy.Airtime(payload).micros(), Phy802154::Airtime(payload).micros());
  }
  EXPECT_EQ(phy.SensitivityDbm(), Phy802154::kSensitivityDbm);
  const double noise = NoiseFloorDbm(Phy802154::kBandwidthHz, Phy802154::kNoiseFigureDb);
  EXPECT_EQ(phy.NoiseFloorDbm(), noise);
  for (const double rx : {-100.0, -95.0, -90.0, -80.0}) {
    EXPECT_EQ(phy.PacketErrorRate(rx, 12), Phy802154::PacketErrorRate(rx - noise, 12));
    EXPECT_EQ(phy.SnrDb(rx), rx - noise);
  }
  EXPECT_EQ(phy.TxEnergyJoules(4.0, 12), Phy802154::TxEnergyJoules(4.0, 12));
}

TEST(PhyModel, MatchesLoraStatics) {
  LoraConfig cfg;
  cfg.sf = LoraSf::kSf11;
  const PhyModel phy = PhyModel::ForLora(cfg);
  EXPECT_EQ(phy.tech(), RadioTech::kLoRa);
  for (const size_t payload : {2u, 12u, 51u}) {
    EXPECT_EQ(phy.Airtime(payload).micros(), LoraPhy::Airtime(cfg, payload).micros());
  }
  EXPECT_EQ(phy.SensitivityDbm(), LoraPhy::SensitivityDbm(cfg.sf, cfg.bandwidth_hz));
  for (const double rx : {-140.0, -130.0, -120.0, -100.0}) {
    EXPECT_EQ(phy.PacketErrorRate(rx, 12),
              LoraPhy::PacketErrorRate(cfg.sf, rx, cfg.bandwidth_hz));
  }
  EXPECT_EQ(phy.TxEnergyJoules(14.0, 12), LoraPhy::TxEnergyJoules(cfg, 14.0, 12));
}

TEST(PhyModel, ContentionDispatchesPerTech) {
  const PhyModel wpan = PhyModel::For802154();
  const PhyModel lora = PhyModel::ForLora(LoraConfig{});
  const double load_hz = 5.0;
  EXPECT_EQ(wpan.ContentionSuccessProbability(load_hz, 12),
            CsmaModel::SuccessProbability(load_hz, Phy802154::Airtime(12)));
  EXPECT_EQ(lora.ContentionSuccessProbability(load_hz, 12),
            AlohaModel::SuccessProbability(load_hz, LoraPhy::Airtime(LoraConfig{}, 12)));
  // CSMA backs off; ALOHA does not: under equal load and airtime ordering
  // may differ, but both must decay with load.
  EXPECT_LT(wpan.ContentionSuccessProbability(50.0, 12),
            wpan.ContentionSuccessProbability(1.0, 12));
  EXPECT_LT(lora.ContentionSuccessProbability(50.0, 12),
            lora.ContentionSuccessProbability(1.0, 12));
}

TEST(PhyModel, GenericFactoryAndCaptureMargin) {
  LoraConfig cfg;
  cfg.sf = LoraSf::kSf7;
  const PhyModel a = PhyModel::For(RadioTech::kLoRa, cfg);
  EXPECT_EQ(a.lora().sf, LoraSf::kSf7);
  EXPECT_EQ(a.CaptureMarginDb(), LoraPhy::kCaptureMarginDb);
  EXPECT_EQ(PhyModel::For(RadioTech::k802154, cfg).tech(), RadioTech::k802154);
}

TEST(PhyModel, DeviceClassNamesAndCadEnergy) {
  EXPECT_STREQ(LoraDeviceClassName(LoraDeviceClass::kClassA), "A");
  EXPECT_STREQ(LoraDeviceClassName(LoraDeviceClass::kClassB), "B");
  EXPECT_STREQ(LoraDeviceClassName(LoraDeviceClass::kClassC), "C");
  // A CAD scan costs two symbols of listen current: well under a TX, and
  // monotone in SF (slower symbols scan longer).
  LoraConfig sf7;
  sf7.sf = LoraSf::kSf7;
  LoraConfig sf12;
  sf12.sf = LoraSf::kSf12;
  EXPECT_GT(LoraPhy::CadEnergyJoules(sf12), LoraPhy::CadEnergyJoules(sf7));
  EXPECT_LT(LoraPhy::CadEnergyJoules(sf12), LoraPhy::TxEnergyJoules(sf12, 14.0, 12));
  EXPECT_GT(LoraPhy::kBeaconRxEnergyJ, 0.0);
}

}  // namespace
}  // namespace centsim
