#include "src/energy/intermittent.h"

#include <gtest/gtest.h>

#include "src/energy/harvester.h"

namespace centsim {
namespace {

class SteadyHarvester : public Harvester {
 public:
  explicit SteadyHarvester(double watts) : watts_(watts) {}
  double PowerAt(SimTime) const override { return watts_; }
  double EnergyOver(SimTime from, SimTime to) const override {
    return watts_ * (to - from).ToSeconds();
  }
  std::string name() const override { return "steady"; }

 private:
  double watts_;
};

TEST(IntermittentTest, NoHarvestNoBursts) {
  SteadyHarvester dead(0.0);
  IntermittentConfig cfg;
  const auto rep = SimulateIntermittent(dead, cfg, SimTime(), SimTime::Days(10));
  EXPECT_EQ(rep.bursts, 0u);
  EXPECT_EQ(rep.tasks_completed, 0u);
}

TEST(IntermittentTest, StrongHarvestCompletesTasks) {
  SteadyHarvester source(1e-3);  // 1 mW: charges 0.1 J bank in ~100 s.
  IntermittentConfig cfg;
  const auto rep = SimulateIntermittent(source, cfg, SimTime(), SimTime::Days(1));
  EXPECT_GT(rep.bursts, 0u);
  EXPECT_GT(rep.tasks_completed, 0u);
  EXPECT_GT(rep.TasksPerDay(), 1.0);
}

TEST(IntermittentTest, CheckpointingBeatsRestartForBigTasks) {
  // Task needs 0.020 J; burst budget is 0.07 J... make the task bigger
  // than one burst so restart-from-zero can never finish it.
  SteadyHarvester source(5e-4);
  IntermittentConfig cfg;
  cfg.storage_j = 0.05;
  cfg.turn_on_fraction = 0.9;
  cfg.brownout_fraction = 0.2;  // Burst budget 0.035 J.
  cfg.task_energy_j = 0.10;     // Needs ~3 bursts.
  cfg.checkpoint_interval_j = 0.008;
  cfg.checkpoint_energy_j = 0.0005;

  IntermittentConfig no_ckpt = cfg;
  no_ckpt.checkpointing_enabled = false;

  const auto with = SimulateIntermittent(source, cfg, SimTime(), SimTime::Days(7));
  const auto without = SimulateIntermittent(source, no_ckpt, SimTime(), SimTime::Days(7));
  EXPECT_GT(with.tasks_completed, 0u);
  EXPECT_EQ(without.tasks_completed, 0u);
  EXPECT_GT(without.energy_wasted_j, with.energy_wasted_j);
}

TEST(IntermittentTest, EfficiencyBounded) {
  SteadyHarvester source(1e-3);
  IntermittentConfig cfg;
  const auto rep = SimulateIntermittent(source, cfg, SimTime(), SimTime::Days(2));
  EXPECT_GE(rep.Efficiency(), 0.0);
  EXPECT_LE(rep.Efficiency(), 1.0);
}

TEST(IntermittentTest, CheckpointOverheadIsCharged) {
  SteadyHarvester source(1e-3);
  IntermittentConfig cfg;
  cfg.task_energy_j = 0.5;  // Long task: many checkpoints.
  cfg.checkpoint_interval_j = 0.005;
  cfg.checkpoint_energy_j = 0.001;
  const auto rep = SimulateIntermittent(source, cfg, SimTime(), SimTime::Days(2));
  EXPECT_GT(rep.energy_on_checkpoints_j, 0.0);
}

TEST(IntermittentTest, SolarNodeWorksDiurnally) {
  SolarHarvester::Params sp;
  sp.peak_power_w = 2e-3;
  SolarHarvester sun(sp);
  IntermittentConfig cfg;
  const auto rep = SimulateIntermittent(sun, cfg, SimTime(), SimTime::Days(30));
  EXPECT_GT(rep.tasks_completed, 0u);
  // Energy conservation: spent cannot exceed harvested.
  EXPECT_LE(rep.energy_on_work_j + rep.energy_on_checkpoints_j + rep.energy_wasted_j,
            rep.energy_harvested_j + cfg.storage_j);
}

TEST(IntermittentTest, DegenerateThresholdsYieldNothing) {
  SteadyHarvester source(1e-3);
  IntermittentConfig cfg;
  cfg.turn_on_fraction = 0.2;
  cfg.brownout_fraction = 0.9;  // Inverted: budget <= 0.
  const auto rep = SimulateIntermittent(source, cfg, SimTime(), SimTime::Days(1));
  EXPECT_EQ(rep.bursts, 0u);
}

}  // namespace
}  // namespace centsim
