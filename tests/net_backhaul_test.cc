#include "src/net/backhaul.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

TEST(BackhaulTest, StartsUp) {
  Backhaul b("test", {SimTime::Days(30), SimTime::Hours(4)}, RandomStream(1));
  EXPECT_TRUE(b.IsUp(SimTime()));
}

TEST(BackhaulTest, SteadyStateAvailabilityFormula) {
  Backhaul b("test", {SimTime::Days(30), SimTime::Hours(6)}, RandomStream(1));
  EXPECT_NEAR(b.SteadyStateAvailability(), 30.0 * 24 / (30.0 * 24 + 6), 1e-12);
}

TEST(BackhaulTest, ObservedAvailabilityMatchesSteadyState) {
  Backhaul b("test", {SimTime::Days(10), SimTime::Days(1)}, RandomStream(7));
  uint64_t up = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    if (b.IsUp(SimTime::Hours(i))) {
      ++up;
    }
  }
  EXPECT_NEAR(static_cast<double>(up) / samples, b.SteadyStateAvailability(), 0.03);
}

TEST(BackhaulTest, DeliverCountsBothWays) {
  Backhaul b("test", {SimTime::Days(1), SimTime::Days(1)}, RandomStream(3));
  UplinkPacket pkt;
  uint64_t delivered = 0;
  for (int i = 0; i < 1000; ++i) {
    if (b.Deliver(pkt, SimTime::Hours(i))) {
      ++delivered;
    }
  }
  EXPECT_EQ(b.delivered(), delivered);
  EXPECT_EQ(b.dropped(), 1000 - delivered);
  EXPECT_GT(delivered, 0u);
  EXPECT_GT(b.dropped(), 0u);
}

TEST(BackhaulTest, TerminationIsPermanent) {
  Backhaul b("test", {SimTime::Days(3650), SimTime::Hours(1)}, RandomStream(1));
  b.Terminate(SimTime::Days(1), "contract ended");
  EXPECT_FALSE(b.IsUp(SimTime::Days(2)));
  EXPECT_FALSE(b.IsUp(SimTime::Years(50)));
  EXPECT_TRUE(b.terminated());
  EXPECT_EQ(b.termination_reason(), "contract ended");
}

TEST(BackhaulTest, FiberIsHighlyAvailable) {
  auto fiber = MakeFiberBackhaul(RandomStream(5));
  EXPECT_GT(fiber->SteadyStateAvailability(), 0.999);
}

TEST(BackhaulTest, CampusIsGoodButBelowFiber) {
  auto campus = MakeCampusBackhaul(RandomStream(5));
  auto fiber = MakeFiberBackhaul(RandomStream(5));
  EXPECT_GT(campus->SteadyStateAvailability(), 0.99);
  EXPECT_LT(campus->SteadyStateAvailability(), fiber->SteadyStateAvailability());
}

TEST(CellularTest, DiesAtSunset) {
  TechnologyTimeline tl = TechnologyTimeline::UsCellularDefault();
  CellularBackhaul cell("3g", tl, RandomStream(2), 25.0);
  // Before the 3G sunset (year 4): normally up.
  int up_before = 0;
  for (int m = 0; m < 40; ++m) {
    up_before += cell.IsUpAt(SimTime::Days(30 * m)) ? 1 : 0;
  }
  EXPECT_GT(up_before, 30);
  // After the sunset: dead forever.
  EXPECT_FALSE(cell.IsUpAt(SimTime::Years(5)));
  EXPECT_FALSE(cell.IsUpAt(SimTime::Years(49)));
  EXPECT_TRUE(cell.terminated());
}

TEST(CellularTest, LaterGenerationOutlivesEarlier) {
  TechnologyTimeline tl = TechnologyTimeline::UsCellularDefault();
  CellularBackhaul g3("3g", tl, RandomStream(2), 25.0);
  CellularBackhaul g5("5g", tl, RandomStream(3), 30.0);
  g3.IsUpAt(SimTime::Years(20));
  g5.IsUpAt(SimTime::Years(20));
  EXPECT_TRUE(g3.terminated());
  EXPECT_FALSE(g5.terminated());
}

TEST(CellularTest, CarriesSubscriptionCost) {
  TechnologyTimeline tl = TechnologyTimeline::UsCellularDefault();
  CellularBackhaul cell("4g", tl, RandomStream(2), 25.0);
  EXPECT_DOUBLE_EQ(cell.monthly_cost_usd(), 25.0);
  auto fiber = MakeFiberBackhaul(RandomStream(1));
  EXPECT_DOUBLE_EQ(fiber->monthly_cost_usd(), 0.0);
}

}  // namespace
}  // namespace centsim
