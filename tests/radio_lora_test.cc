#include "src/radio/lora.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

LoraConfig Cfg(LoraSf sf) {
  LoraConfig cfg;
  cfg.sf = sf;
  return cfg;
}

TEST(LoraAirtimeTest, Sf7TwelveBytesNearReference) {
  // Semtech calculator: SF7/125k, CR4/5, 8-symbol preamble, explicit
  // header, CRC on, 12-byte payload ~ 41.2 ms.
  const double ms = LoraPhy::Airtime(Cfg(LoraSf::kSf7), 12).ToSeconds() * 1000.0;
  EXPECT_NEAR(ms, 41.2, 1.5);
}

TEST(LoraAirtimeTest, Sf12TenBytesNearReference) {
  // SF12/125k, same settings, 10 bytes ~ 991 ms (with LDRO).
  const double ms = LoraPhy::Airtime(Cfg(LoraSf::kSf12), 10).ToSeconds() * 1000.0;
  EXPECT_NEAR(ms, 991.0, 10.0);
}

TEST(LoraAirtimeTest, GrowsWithSf) {
  double prev = 0.0;
  for (auto sf : {LoraSf::kSf7, LoraSf::kSf8, LoraSf::kSf9, LoraSf::kSf10, LoraSf::kSf11,
                  LoraSf::kSf12}) {
    const double t = LoraPhy::Airtime(Cfg(sf), 24).ToSeconds();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(LoraAirtimeTest, GrowsWithPayload) {
  EXPECT_GT(LoraPhy::Airtime(Cfg(LoraSf::kSf9), 48), LoraPhy::Airtime(Cfg(LoraSf::kSf9), 12));
}

TEST(LoraAirtimeTest, WiderBandwidthIsFaster) {
  LoraConfig narrow = Cfg(LoraSf::kSf9);
  LoraConfig wide = Cfg(LoraSf::kSf9);
  wide.bandwidth_hz = 250e3;
  EXPECT_LT(LoraPhy::Airtime(wide, 24), LoraPhy::Airtime(narrow, 24));
}

TEST(LoraSensitivityTest, MonotoneInSf) {
  double prev = 0.0;
  bool first = true;
  for (auto sf : {LoraSf::kSf7, LoraSf::kSf8, LoraSf::kSf9, LoraSf::kSf10, LoraSf::kSf11,
                  LoraSf::kSf12}) {
    const double sens = LoraPhy::SensitivityDbm(sf);
    if (!first) {
      EXPECT_LT(sens, prev);  // Higher SF hears weaker signals.
    }
    prev = sens;
    first = false;
  }
}

TEST(LoraSensitivityTest, Sf12Near137) {
  // SX1276 datasheet: about -137 dBm at SF12/125 kHz.
  EXPECT_NEAR(LoraPhy::SensitivityDbm(LoraSf::kSf12), -137.0, 1.5);
}

TEST(LoraPerTest, WaterfallCenteredAtSensitivity) {
  const double sens = LoraPhy::SensitivityDbm(LoraSf::kSf9);
  EXPECT_NEAR(LoraPhy::PacketErrorRate(LoraSf::kSf9, sens), 0.5, 0.01);
  EXPECT_LT(LoraPhy::PacketErrorRate(LoraSf::kSf9, sens + 6.0), 0.01);
  EXPECT_GT(LoraPhy::PacketErrorRate(LoraSf::kSf9, sens - 6.0), 0.99);
}

TEST(LoraEnergyTest, HigherSfCostsMore) {
  EXPECT_GT(LoraPhy::TxEnergyJoules(Cfg(LoraSf::kSf12), 14.0, 12),
            LoraPhy::TxEnergyJoules(Cfg(LoraSf::kSf7), 14.0, 12));
}

TEST(DutyCycleTest, OnePercentGapIsNinetyNineAirtimes) {
  DutyCycleRule rule;  // 1%.
  const SimTime airtime = SimTime::Millis(100);
  const SimTime next = rule.NextAllowed(SimTime::Seconds(0), airtime);
  EXPECT_NEAR(next.ToSeconds(), 10.0, 0.01);  // 100 ms / 1% = 10 s.
}

TEST(DutyCycleTest, FramesPerDayBudget) {
  DutyCycleRule rule;
  const SimTime airtime = LoraPhy::Airtime(Cfg(LoraSf::kSf9), 12);
  const double frames = rule.MaxFramesPerDay(airtime);
  // 864 s of airtime per day / ~0.165 s per frame ~ 5000+ frames:
  // 1 frame/hour (24/day) is far inside the regulatory budget.
  EXPECT_GT(frames, 24.0);
}

TEST(DutyCycleTest, Sf12HourlyStillLegal) {
  DutyCycleRule rule;
  const SimTime airtime = LoraPhy::Airtime(Cfg(LoraSf::kSf12), 24);
  EXPECT_GT(rule.MaxFramesPerDay(airtime), 24.0);
}

}  // namespace
}  // namespace centsim
