#include "src/net/network_server.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

UplinkPacket Frame(uint32_t device, uint32_t seq) {
  UplinkPacket pkt;
  pkt.device_id = device;
  pkt.sequence = seq;
  return pkt;
}

TEST(NetworkServerTest, FirstCopyForwardsToEndpoint) {
  CloudEndpoint endpoint;
  NetworkServer ns(&endpoint);
  const auto r = ns.Ingest(Frame(1, 1), /*gateway_id=*/10, -80.0, SimTime::Seconds(1));
  EXPECT_TRUE(r.first_copy);
  EXPECT_FALSE(r.duplicate);
  EXPECT_EQ(endpoint.total_packets(), 1u);
  EXPECT_EQ(ns.frames_forwarded(), 1u);
}

TEST(NetworkServerTest, DuplicatesSuppressedWithinWindow) {
  CloudEndpoint endpoint;
  NetworkServer ns(&endpoint);
  ns.Ingest(Frame(1, 1), 10, -80.0, SimTime::Seconds(1));
  const auto dup = ns.Ingest(Frame(1, 1), 11, -85.0, SimTime::Seconds(1) + SimTime::Millis(200));
  EXPECT_TRUE(dup.duplicate);
  EXPECT_EQ(dup.witnesses, 2u);
  EXPECT_EQ(endpoint.total_packets(), 1u);
  EXPECT_EQ(ns.duplicates_suppressed(), 1u);
}

TEST(NetworkServerTest, DistinctCountersAreDistinctFrames) {
  CloudEndpoint endpoint;
  NetworkServer ns(&endpoint);
  ns.Ingest(Frame(1, 1), 10, -80.0, SimTime::Seconds(1));
  const auto next = ns.Ingest(Frame(1, 2), 10, -80.0, SimTime::Seconds(2));
  EXPECT_TRUE(next.first_copy);
  EXPECT_EQ(endpoint.total_packets(), 2u);
}

TEST(NetworkServerTest, DistinctDevicesDoNotCollide) {
  CloudEndpoint endpoint;
  NetworkServer ns(&endpoint);
  ns.Ingest(Frame(1, 7), 10, -80.0, SimTime::Seconds(1));
  const auto other = ns.Ingest(Frame(2, 7), 10, -80.0, SimTime::Seconds(1));
  EXPECT_TRUE(other.first_copy);
}

TEST(NetworkServerTest, BestWitnessTracked) {
  NetworkServer ns;
  ns.Ingest(Frame(1, 1), 10, -90.0, SimTime::Seconds(1));
  EXPECT_EQ(ns.BestGatewayFor(1), 10u);
  ns.Ingest(Frame(1, 1), 11, -70.0, SimTime::Seconds(1) + SimTime::Millis(100));
  EXPECT_EQ(ns.BestGatewayFor(1), 11u);  // Stronger copy wins.
  ns.Ingest(Frame(1, 1), 12, -95.0, SimTime::Seconds(1) + SimTime::Millis(150));
  EXPECT_EQ(ns.BestGatewayFor(1), 11u);  // Weaker copy does not.
  EXPECT_EQ(ns.BestGatewayFor(999), 0u);
}

TEST(NetworkServerTest, WindowExpiryAllowsLateRetransmission) {
  // After the dedup window, the same (device, counter) is treated as a new
  // frame (the real risk replay protection at the endpoint must catch).
  NetworkServerParams params;
  params.dedup_window = SimTime::Seconds(2);
  CloudEndpoint endpoint;
  NetworkServer ns(&endpoint, params);
  ns.Ingest(Frame(1, 1), 10, -80.0, SimTime::Seconds(1));
  const auto late = ns.Ingest(Frame(1, 1), 11, -80.0, SimTime::Seconds(10));
  EXPECT_TRUE(late.first_copy);
  EXPECT_EQ(endpoint.total_packets(), 2u);
}

TEST(NetworkServerTest, MeanWitnessesReflectsRedundancy) {
  NetworkServer ns;
  for (uint32_t seq = 1; seq <= 10; ++seq) {
    const SimTime t = SimTime::Seconds(seq * 10);
    ns.Ingest(Frame(1, seq), 10, -80.0, t);
    ns.Ingest(Frame(1, seq), 11, -82.0, t + SimTime::Millis(50));
    ns.Ingest(Frame(1, seq), 12, -85.0, t + SimTime::Millis(90));
  }
  EXPECT_DOUBLE_EQ(ns.MeanWitnesses(), 3.0);
  EXPECT_EQ(ns.frames_forwarded(), 10u);
  EXPECT_EQ(ns.duplicates_suppressed(), 20u);
}

TEST(NetworkServerTest, CapacityEvictionKeepsBound) {
  NetworkServerParams params;
  params.max_tracked = 64;
  params.dedup_window = SimTime::Hours(10);  // Window never expires here.
  NetworkServer ns(params);
  for (uint32_t seq = 1; seq <= 1000; ++seq) {
    ns.Ingest(Frame(1, seq), 10, -80.0, SimTime::Seconds(seq));
  }
  EXPECT_EQ(ns.frames_forwarded(), 1000u);  // All distinct, all forwarded.
}

}  // namespace
}  // namespace centsim
