// Failure-injection tests: break each tier mid-run and check the system
// accounts for it honestly (the Figure 1 attribution) and recovers when
// the fault clears.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/device.h"
#include "src/core/fleet.h"
#include "src/core/network_fabric.h"
#include "src/econ/data_credits.h"
#include "src/energy/harvester.h"
#include "src/net/backhaul.h"

namespace centsim {
namespace {

class FaultFixture : public ::testing::Test {
 protected:
  FaultFixture()
      : sim_(77),
        fabric_(sim_),
        backhaul_("bh", {SimTime::Years(800), SimTime::Hours(1)}, RandomStream(5)) {
    fabric_.SetEndpoint(&endpoint_);
    GatewayConfig gc;
    gc.id = 1;
    gc.tech = RadioTech::k802154;
    gc.name = "gw";
    gateway_ = std::make_unique<Gateway>(sim_, gc, SeriesSystem::RaspberryPiGateway());
    gateway_->SetRepairPolicy([](SimTime t) { return t + SimTime::Hours(6); });
    gateway_->AttachBackhaul(&backhaul_);
    gateway_->Deploy();
    fabric_.AddGateway(gateway_.get());

    EdgeDeviceConfig cfg;
    cfg.id = 10;
    cfg.x_m = 30.0;
    cfg.tech = RadioTech::k802154;
    cfg.tx_power_dbm = 4.0;
    cfg.report_interval = SimTime::Hours(1);
    // Strong constant sun (50 mW) so energy never gates delivery.
    device_ = std::make_unique<EdgeDevice>(
        sim_, cfg, fabric_, fleet_,
        EnergyManager(HarvesterModel::Constant(0.05), EnergyStorage::Supercap(),
                      LoadProfileFor(cfg)),
        SeriesSystem::EnergyHarvestingNode());
  }

  Simulation sim_;
  NetworkFabric fabric_;
  CloudEndpoint endpoint_;
  Backhaul backhaul_;
  std::unique_ptr<Gateway> gateway_;
  DeviceFleet fleet_{sim_};
  std::unique_ptr<EdgeDevice> device_;
};

TEST_F(FaultFixture, GatewayKilledMidRunChargesGatewayTier) {
  device_->Deploy();
  sim_.scheduler().ScheduleAt(SimTime::Days(30),
                              [this] { gateway_->Decommission("injected fault"); });
  sim_.RunUntil(SimTime::Days(60));
  const auto tiers = fabric_.TierAttribution();
  EXPECT_GT(tiers[static_cast<size_t>(Tier::kGateway)], 600u);  // ~720 lost hours.
  // Data stopped at the endpoint after the kill.
  EXPECT_LT(endpoint_.LastSeen(10), SimTime::Days(31));
}

TEST_F(FaultFixture, BackhaulTerminationChargesBackhaulTier) {
  device_->Deploy();
  sim_.scheduler().ScheduleAt(SimTime::Days(30), [this] {
    backhaul_.Terminate(sim_.Now(), "injected contract loss");
  });
  sim_.RunUntil(SimTime::Days(60));
  const auto tiers = fabric_.TierAttribution();
  EXPECT_GT(tiers[static_cast<size_t>(Tier::kBackhaul)], 600u);
}

TEST_F(FaultFixture, EndpointOutageWindowChargesCloudTier) {
  device_->Deploy();
  sim_.scheduler().ScheduleAt(SimTime::Days(10), [this] { endpoint_.SetOperational(false); });
  sim_.scheduler().ScheduleAt(SimTime::Days(17), [this] { endpoint_.SetOperational(true); });
  sim_.RunUntil(SimTime::Days(30));
  const auto tiers = fabric_.TierAttribution();
  // ~168 hourly attempts lost in the 7-day window.
  EXPECT_GT(tiers[static_cast<size_t>(Tier::kCloud)], 120u);
  EXPECT_LT(tiers[static_cast<size_t>(Tier::kCloud)], 200u);
  // Recovery: data flows again after day 17.
  EXPECT_GT(endpoint_.LastSeen(10), SimTime::Days(29));
}

TEST_F(FaultFixture, WeeklyUptimeReflectsMonthLongOutage) {
  device_->Deploy();
  sim_.scheduler().ScheduleAt(SimTime::Weeks(10), [this] { endpoint_.SetOperational(false); });
  sim_.scheduler().ScheduleAt(SimTime::Weeks(14), [this] { endpoint_.SetOperational(true); });
  sim_.RunUntil(SimTime::Weeks(20));
  EXPECT_NEAR(endpoint_.WeeklyUptime(SimTime::Weeks(20)), 16.0 / 20.0, 0.051);
  EXPECT_EQ(endpoint_.LongestGapWeeks(SimTime::Weeks(20)), 4u);
}

TEST_F(FaultFixture, ExhaustedWalletRefusesPackets) {
  // Attach a nearly-empty wallet to the gateway: the first packets spend
  // it, after which attempts die at the gateway tier with kNoCredits.
  auto wallet = std::make_shared<DataCreditWallet>(5);
  gateway_->SetPaymentHook(
      [wallet](const UplinkPacket& pkt) { return wallet->ChargePacket(pkt.payload_bytes); });
  device_->Deploy();
  sim_.RunUntil(SimTime::Days(2));
  EXPECT_EQ(wallet->balance(), 0u);
  EXPECT_GT(wallet->refused(), 30u);
  EXPECT_GT(fabric_.OutcomeCount(DeliveryOutcome::kNoCredits), 30u);
  EXPECT_EQ(endpoint_.PacketsFrom(10), 5u);
}

TEST_F(FaultFixture, BlocklistingMidRunStopsDevice) {
  Blocklist blocklist;
  gateway_->SetBlocklist(&blocklist);
  device_->Deploy();
  sim_.scheduler().ScheduleAt(SimTime::Days(5),
                              [&blocklist] { blocklist.Block(10, "spoofing suspected"); });
  sim_.RunUntil(SimTime::Days(10));
  EXPECT_GT(fabric_.OutcomeCount(DeliveryOutcome::kBlocklisted), 100u);
  EXPECT_LT(endpoint_.LastSeen(10), SimTime::Days(5) + SimTime::Hours(2));
}

}  // namespace
}  // namespace centsim
