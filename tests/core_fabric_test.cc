#include "src/core/network_fabric.h"

#include <gtest/gtest.h>

#include "src/net/backhaul.h"

namespace centsim {
namespace {

class FabricFixture : public ::testing::Test {
 protected:
  FabricFixture()
      : sim_(11),
        fabric_(sim_),
        backhaul_("bh", {SimTime::Years(1000), SimTime::Hours(1)}, RandomStream(1)) {
    fabric_.SetEndpoint(&endpoint_);
  }

  Gateway& AddGateway(RadioTech tech, double x, double y, uint32_t id = 100) {
    GatewayConfig cfg;
    cfg.id = id;
    cfg.tech = tech;
    cfg.x_m = x;
    cfg.y_m = y;
    cfg.name = "gw-" + std::to_string(id);
    gateways_.push_back(
        std::make_unique<Gateway>(sim_, cfg, SeriesSystem::RaspberryPiGateway()));
    Gateway& gw = *gateways_.back();
    gw.AttachBackhaul(&backhaul_);
    gw.Deploy();
    fabric_.AddGateway(&gw);
    return gw;
  }

  UplinkPacket Packet(RadioTech tech, uint32_t device = 1) {
    UplinkPacket pkt;
    pkt.device_id = device;
    pkt.tech = tech;
    pkt.payload_bytes = 12;
    return pkt;
  }

  NetworkFabric::UplinkParams Params(RadioTech tech, double x, double y) {
    NetworkFabric::UplinkParams up;
    up.x_m = x;
    up.y_m = y;
    up.tx_power_dbm = tech == RadioTech::k802154 ? 4.0 : 14.0;
    return up;
  }

  Simulation sim_;
  NetworkFabric fabric_;
  CloudEndpoint endpoint_;
  Backhaul backhaul_;
  std::vector<std::unique_ptr<Gateway>> gateways_;
};

TEST_F(FabricFixture, NearbyDeviceDelivers) {
  AddGateway(RadioTech::k802154, 0, 0);
  RandomStream rng(1);
  int delivered = 0;
  for (int i = 0; i < 100; ++i) {
    if (fabric_.AttemptUplink(Packet(RadioTech::k802154), Params(RadioTech::k802154, 30, 0),
                              rng) == DeliveryOutcome::kDelivered) {
      ++delivered;
    }
  }
  EXPECT_GT(delivered, 95);
  EXPECT_EQ(endpoint_.total_packets(), static_cast<uint64_t>(delivered));
}

TEST_F(FabricFixture, FarDeviceOutOfRange) {
  AddGateway(RadioTech::k802154, 0, 0);
  RandomStream rng(2);
  const auto outcome = fabric_.AttemptUplink(
      Packet(RadioTech::k802154), Params(RadioTech::k802154, 100000, 0), rng);
  EXPECT_EQ(outcome, DeliveryOutcome::kNoGatewayInRange);
}

TEST_F(FabricFixture, LoraReachesFartherThan802154) {
  AddGateway(RadioTech::k802154, 0, 0, 1);
  AddGateway(RadioTech::kLoRa, 0, 0, 2);
  RandomStream rng(3);
  // At 3 km, LoRa SF9 @ 14 dBm should mostly work; 802.15.4 at 4 dBm
  // cannot.
  int lora_ok = 0;
  int wpan_ok = 0;
  for (int i = 0; i < 50; ++i) {
    lora_ok += fabric_.AttemptUplink(Packet(RadioTech::kLoRa, 10 + i),
                                     Params(RadioTech::kLoRa, 3000, 0), rng) ==
                       DeliveryOutcome::kDelivered
                   ? 1
                   : 0;
    wpan_ok += fabric_.AttemptUplink(Packet(RadioTech::k802154, 10 + i),
                                     Params(RadioTech::k802154, 3000, 0), rng) ==
                       DeliveryOutcome::kDelivered
                   ? 1
                   : 0;
  }
  EXPECT_GT(lora_ok, wpan_ok + 10);
}

TEST_F(FabricFixture, TechMismatchIsInvisible) {
  AddGateway(RadioTech::kLoRa, 0, 0);
  RandomStream rng(4);
  const auto outcome = fabric_.AttemptUplink(Packet(RadioTech::k802154),
                                             Params(RadioTech::k802154, 10, 0), rng);
  EXPECT_EQ(outcome, DeliveryOutcome::kNoGatewayInRange);
}

TEST_F(FabricFixture, DownGatewayReported) {
  Gateway& gw = AddGateway(RadioTech::k802154, 0, 0);
  gw.Decommission("test");
  RandomStream rng(5);
  const auto outcome = fabric_.AttemptUplink(Packet(RadioTech::k802154),
                                             Params(RadioTech::k802154, 20, 0), rng);
  EXPECT_EQ(outcome, DeliveryOutcome::kGatewayDown);
}

TEST_F(FabricFixture, SecondGatewayCoversFirstOnesFailure) {
  Gateway& a = AddGateway(RadioTech::k802154, 0, 0, 1);
  AddGateway(RadioTech::k802154, 60, 0, 2);
  a.Decommission("dead");
  RandomStream rng(6);
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    delivered += fabric_.AttemptUplink(Packet(RadioTech::k802154),
                                       Params(RadioTech::k802154, 30, 0), rng) ==
                         DeliveryOutcome::kDelivered
                     ? 1
                     : 0;
  }
  EXPECT_GT(delivered, 45);
}

TEST_F(FabricFixture, OfferedLoadDrivesCollisions) {
  AddGateway(RadioTech::kLoRa, 0, 0);
  RandomStream rng(7);
  // Saturating load: ~20 frames/s of SF9 airtime -> ALOHA success tiny.
  fabric_.AddOfferedLoad(RadioTech::kLoRa, 20.0 * 3600.0);
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    delivered += fabric_.AttemptUplink(Packet(RadioTech::kLoRa),
                                       Params(RadioTech::kLoRa, 100, 0), rng) ==
                         DeliveryOutcome::kDelivered
                     ? 1
                     : 0;
  }
  EXPECT_LT(delivered, 120);
  EXPECT_GT(fabric_.OutcomeCount(DeliveryOutcome::kCollision), 0u);
  fabric_.RemoveOfferedLoad(RadioTech::kLoRa, 20.0 * 3600.0);
  EXPECT_DOUBLE_EQ(fabric_.OfferedLoadHz(RadioTech::kLoRa), 0.0);
}

TEST_F(FabricFixture, EndpointDownAttributedToCloud) {
  AddGateway(RadioTech::k802154, 0, 0);
  endpoint_.SetOperational(false);
  RandomStream rng(8);
  const auto outcome = fabric_.AttemptUplink(Packet(RadioTech::k802154),
                                             Params(RadioTech::k802154, 20, 0), rng);
  EXPECT_EQ(outcome, DeliveryOutcome::kEndpointDown);
  const auto tiers = fabric_.TierAttribution();
  EXPECT_EQ(tiers[static_cast<size_t>(Tier::kCloud)], 1u);
}

TEST_F(FabricFixture, AttributionExcludesDelivered) {
  AddGateway(RadioTech::k802154, 0, 0);
  RandomStream rng(9);
  for (int i = 0; i < 20; ++i) {
    fabric_.AttemptUplink(Packet(RadioTech::k802154), Params(RadioTech::k802154, 20, 0), rng);
  }
  uint64_t attributed = 0;
  for (const auto count : fabric_.TierAttribution()) {
    attributed += count;
  }
  EXPECT_EQ(attributed + fabric_.delivered(), fabric_.attempts());
}

TEST_F(FabricFixture, NetworkServerModeDedupsAndPaysEveryWitness) {
  // Two LoRa hotspots both in range; with a network server every witness
  // forwards (charging its own copy) but the endpoint sees one record.
  Gateway& a = AddGateway(RadioTech::kLoRa, 0, 0, 1);
  Gateway& b = AddGateway(RadioTech::kLoRa, 80, 0, 2);
  uint64_t charges = 0;
  const auto hook = [&charges](const UplinkPacket&) {
    ++charges;
    return true;
  };
  a.SetPaymentHook(hook);
  b.SetPaymentHook(hook);
  NetworkServer ns(&endpoint_);
  fabric_.SetNetworkServer(&ns);

  RandomStream rng(12);
  UplinkPacket pkt = Packet(RadioTech::kLoRa);
  for (int i = 0; i < 50; ++i) {
    pkt.sequence = i + 1;
    fabric_.AttemptUplink(pkt, Params(RadioTech::kLoRa, 40, 0), rng);
  }
  EXPECT_EQ(endpoint_.total_packets(), ns.frames_forwarded());
  EXPECT_GT(ns.duplicates_suppressed(), 30u);  // Both hotspots usually hear.
  EXPECT_EQ(charges, ns.frames_forwarded() + ns.duplicates_suppressed());
  EXPECT_GT(ns.MeanWitnesses(), 1.5);
}

TEST_F(FabricFixture, NetworkServerModeDoesNotAffect802154) {
  AddGateway(RadioTech::k802154, 0, 0, 1);
  NetworkServer ns(&endpoint_);
  fabric_.SetNetworkServer(&ns);
  RandomStream rng(13);
  UplinkPacket pkt = Packet(RadioTech::k802154);
  for (int i = 0; i < 20; ++i) {
    pkt.sequence = i + 1;
    fabric_.AttemptUplink(pkt, Params(RadioTech::k802154, 20, 0), rng);
  }
  EXPECT_EQ(ns.frames_forwarded(), 0u);  // Owned path bypasses the server.
  EXPECT_GT(endpoint_.total_packets(), 15u);
}

TEST_F(FabricFixture, DeterministicGivenSeedAndSequence) {
  AddGateway(RadioTech::k802154, 0, 0);
  RandomStream rng_a(42);
  RandomStream rng_b(42);
  for (int i = 0; i < 50; ++i) {
    const auto a = fabric_.AttemptUplink(Packet(RadioTech::k802154, 5),
                                         Params(RadioTech::k802154, 400, 0), rng_a);
    const auto b = fabric_.AttemptUplink(Packet(RadioTech::k802154, 5),
                                         Params(RadioTech::k802154, 400, 0), rng_b);
    EXPECT_EQ(a, b);
  }
}

}  // namespace
}  // namespace centsim
