#include "src/sim/profiler.h"

#include <gtest/gtest.h>

#include "src/sim/metrics.h"
#include "src/sim/scheduler.h"

namespace centsim {
namespace {

// Runs `events` self-rescheduling ticks under a profiler and returns it.
void RunTicks(Scheduler& sched, SchedulerProfiler& profiler, uint64_t events,
              const char* category) {
  sched.SetProfiler(&profiler);
  uint64_t ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < events) {
      sched.ScheduleAfter(SimTime::Micros(10), tick, category);
    }
  };
  sched.ScheduleAfter(SimTime::Micros(10), tick, category);
  sched.RunUntil(SimTime::Hours(1));
}

TEST(SchedulerProfiler, CountsEveryEventExactly) {
  Scheduler sched;
  SchedulerProfiler profiler;
  RunTicks(sched, profiler, 1000, "test.tick");

  EXPECT_EQ(profiler.events_recorded(), 1000u);
  const auto categories = profiler.Categories();
  ASSERT_EQ(categories.size(), 1u);
  EXPECT_EQ(categories[0].category, "test.tick");
  EXPECT_EQ(categories[0].count, 1000u);
  // 1-in-16 (default 64 here) wall-clocked: timed subsample is smaller.
  EXPECT_GT(categories[0].timed_count, 0u);
  EXPECT_LT(categories[0].timed_count, categories[0].count);
}

TEST(SchedulerProfiler, SeparatesCategoriesAndMergesDuplicateText) {
  Scheduler sched;
  SchedulerProfiler profiler;
  sched.SetProfiler(&profiler);
  // Two distinct string objects with equal text must merge in snapshots
  // (the hot map is keyed by pointer identity).
  static const char text_a[] = "dup.category";
  const std::string text_b = "dup.category";
  for (int i = 0; i < 10; ++i) {
    sched.ScheduleAt(SimTime::Micros(i), [] {}, text_a);
    sched.ScheduleAt(SimTime::Micros(100 + i), [] {}, text_b.c_str());
    sched.ScheduleAt(SimTime::Micros(200 + i), [] {}, "other.category");
  }
  sched.RunUntil(SimTime::Seconds(1));

  const auto categories = profiler.Categories();
  ASSERT_EQ(categories.size(), 2u);
  EXPECT_EQ(categories[0].category, "dup.category");  // Sorted by count desc.
  EXPECT_EQ(categories[0].count, 20u);
  EXPECT_EQ(categories[1].category, "other.category");
  EXPECT_EQ(categories[1].count, 10u);
}

TEST(SchedulerProfiler, DefaultCategoryApplied) {
  Scheduler sched;
  SchedulerProfiler profiler;
  sched.SetProfiler(&profiler);
  sched.ScheduleAt(SimTime::Micros(1), [] {});
  sched.RunUntil(SimTime::Seconds(1));

  const auto categories = profiler.Categories();
  ASSERT_EQ(categories.size(), 1u);
  EXPECT_EQ(categories[0].category, kDefaultEventCategory);
}

TEST(SchedulerProfiler, QueueDepthSamplingIsDeterministic) {
  // Identical runs must produce identical (sim-time, depth, index) samples:
  // sampling is keyed on the execution index alone.
  auto run = [] {
    Scheduler sched;
    SchedulerProfiler::Options opts;
    opts.queue_depth_sample_every = 10;
    SchedulerProfiler profiler(opts);
    RunTicks(sched, profiler, 100, "tick");
    return profiler.depth_samples();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), 10u);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sim_at, b[i].sim_at);
    EXPECT_EQ(a[i].depth, b[i].depth);
    EXPECT_EQ(a[i].executed, b[i].executed);
    EXPECT_EQ(a[i].executed, (i + 1) * 10);
  }
}

TEST(SchedulerProfiler, ProfilingDoesNotPerturbSimulation) {
  auto run = [](bool profiled) {
    Scheduler sched;
    SchedulerProfiler profiler;
    if (profiled) {
      sched.SetProfiler(&profiler);
    }
    uint64_t ticks = 0;
    std::function<void()> tick = [&] {
      if (++ticks < 500) {
        sched.ScheduleAfter(SimTime::Micros(7), tick, "tick");
      }
    };
    sched.ScheduleAfter(SimTime::Micros(7), tick, "tick");
    sched.RunUntil(SimTime::Hours(1));
    return std::make_pair(ticks, sched.Now());
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(SchedulerProfiler, TimeSampleEveryZeroDisablesTiming) {
  Scheduler sched;
  SchedulerProfiler::Options opts;
  opts.time_sample_every = 0;
  SchedulerProfiler profiler(opts);
  RunTicks(sched, profiler, 200, "tick");

  const auto categories = profiler.Categories();
  ASSERT_EQ(categories.size(), 1u);
  EXPECT_EQ(categories[0].count, 200u);
  EXPECT_EQ(categories[0].timed_count, 0u);
  EXPECT_TRUE(profiler.spans().empty());
}

TEST(SchedulerProfiler, SpanBufferIsBounded) {
  Scheduler sched;
  SchedulerProfiler::Options opts;
  opts.time_sample_every = 1;  // Time every event.
  opts.max_spans = 5;
  SchedulerProfiler profiler(opts);
  RunTicks(sched, profiler, 100, "tick");

  EXPECT_EQ(profiler.spans().size(), 5u);
  EXPECT_EQ(profiler.Categories()[0].timed_count, 100u);  // Stats still full.
}

TEST(SchedulerProfiler, ExportToPublishesMetrics) {
  Scheduler sched;
  SchedulerProfiler profiler;
  RunTicks(sched, profiler, 320, "tick");

  MetricsRegistry registry;
  profiler.ExportTo(registry);

  const Counter* events =
      registry.FindCounter("sched.events", MetricLabels{{"category", "tick"}});
  ASSERT_NE(events, nullptr);
  EXPECT_DOUBLE_EQ(events->value(), 320.0);
  const Counter* total = registry.FindCounter("sched.events_total");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->value(), 320.0);
  EXPECT_NE(registry.FindGauge("sched.queue_depth_peak"), nullptr);
  const HistogramMetric* wall =
      registry.FindHistogram("sched.event_wall_ns", MetricLabels{{"category", "tick"}});
  ASSERT_NE(wall, nullptr);
  EXPECT_GT(wall->count(), 0u);
}

}  // namespace
}  // namespace centsim
