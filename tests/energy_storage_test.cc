#include "src/energy/storage.h"

#include <gtest/gtest.h>

#include <cmath>

namespace centsim {
namespace {

TEST(StorageTest, InitialChargeFraction) {
  EnergyStorage cap = EnergyStorage::Supercap(100.0);
  EXPECT_DOUBLE_EQ(cap.capacity_now_j(), 100.0);
  EXPECT_DOUBLE_EQ(cap.charge_j(), 50.0);
  EXPECT_DOUBLE_EQ(cap.soc(), 0.5);
}

TEST(StorageTest, StoreAppliesEfficiencyAndClips) {
  EnergyStorage cap = EnergyStorage::Supercap(100.0);  // 85% efficiency.
  const double banked = cap.Store(10.0);
  EXPECT_NEAR(banked, 8.5, 1e-12);
  EXPECT_NEAR(cap.charge_j(), 58.5, 1e-12);
  // Overfill clips at capacity.
  cap.Store(1000.0);
  EXPECT_NEAR(cap.charge_j(), 100.0, 1e-9);
}

TEST(StorageTest, DrawRespectsBalance) {
  EnergyStorage cap = EnergyStorage::Supercap(100.0);
  EXPECT_TRUE(cap.Draw(50.0));
  EXPECT_NEAR(cap.charge_j(), 0.0, 1e-9);
  EXPECT_FALSE(cap.Draw(1.0));
  EXPECT_NEAR(cap.charge_j(), 0.0, 1e-9);
}

TEST(StorageTest, LeakageIsExponentialInDays) {
  EnergyStorage::Params p;
  p.capacity_j = 100.0;
  p.initial_fraction = 1.0;
  p.self_discharge_per_day = 0.10;
  p.capacity_fade_per_year = 0.0;
  EnergyStorage s(p);
  s.AdvanceTo(SimTime::Days(7));
  EXPECT_NEAR(s.charge_j(), 100.0 * std::pow(0.9, 7.0), 1e-6);
}

TEST(StorageTest, CapacityFadeOverYears) {
  EnergyStorage::Params p;
  p.capacity_j = 100.0;
  p.initial_fraction = 0.0;
  p.self_discharge_per_day = 0.0;
  p.capacity_fade_per_year = 0.02;
  EnergyStorage s(p);
  s.AdvanceTo(SimTime::Years(10));
  EXPECT_NEAR(s.capacity_now_j(), 100.0 * std::pow(0.98, 10.0), 1e-6);
}

TEST(StorageTest, ChargeClampedToFadedCapacity) {
  EnergyStorage::Params p;
  p.capacity_j = 100.0;
  p.initial_fraction = 1.0;
  p.self_discharge_per_day = 0.0;
  p.capacity_fade_per_year = 0.05;
  EnergyStorage s(p);
  s.AdvanceTo(SimTime::Years(20));
  EXPECT_LE(s.charge_j(), s.capacity_now_j() + 1e-9);
}

TEST(StorageTest, AdvanceIsIncrementallyConsistent) {
  EnergyStorage::Params p;
  p.capacity_j = 50.0;
  p.initial_fraction = 1.0;
  p.self_discharge_per_day = 0.03;
  p.capacity_fade_per_year = 0.01;
  EnergyStorage one_shot(p);
  EnergyStorage stepped(p);
  one_shot.AdvanceTo(SimTime::Days(100));
  for (int d = 1; d <= 100; ++d) {
    stepped.AdvanceTo(SimTime::Days(d));
  }
  EXPECT_NEAR(one_shot.charge_j(), stepped.charge_j(), 1e-6);
  EXPECT_NEAR(one_shot.capacity_now_j(), stepped.capacity_now_j(), 1e-6);
}

TEST(StorageTest, PrimaryCellNotRechargeable) {
  EnergyStorage cell = EnergyStorage::LithiumPrimary(1000.0);
  EXPECT_DOUBLE_EQ(cell.charge_j(), 1000.0);
  EXPECT_DOUBLE_EQ(cell.Store(100.0), 0.0);  // Zero charge efficiency.
}

TEST(StorageTest, PrimaryCellSelfDischargeIsTiny) {
  EnergyStorage cell = EnergyStorage::LithiumPrimary(1000.0);
  cell.AdvanceTo(SimTime::Years(10));
  EXPECT_GT(cell.charge_j(), 960.0);  // ~0.3%/yr.
}

TEST(StorageTest, CapBankStartsEmpty) {
  EnergyStorage bank = EnergyStorage::CapBank(0.1);
  EXPECT_DOUBLE_EQ(bank.charge_j(), 0.0);
  bank.Store(0.05);
  EXPECT_NEAR(bank.charge_j(), 0.045, 1e-12);  // 90% efficiency.
}

}  // namespace
}  // namespace centsim
