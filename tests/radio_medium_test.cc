#include "src/radio/medium.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/radio/phy_802154.h"

namespace centsim {
namespace {

SharedMedium::Transmission Tx(double start_s, double dur_s, uint32_t chan, double dbm,
                              uint64_t id) {
  return {SimTime::Seconds(start_s), SimTime::Seconds(start_s + dur_s), chan, dbm, id};
}

TEST(SharedMediumTest, LoneTransmissionDelivered) {
  SharedMedium medium;
  const auto tx = Tx(0.0, 0.1, 11, -70, 1);
  medium.Register(tx);
  EXPECT_TRUE(medium.Delivered(tx, 6.0));
}

TEST(SharedMediumTest, OverlapSameChannelCollides) {
  SharedMedium medium;
  const auto a = Tx(0.0, 0.1, 11, -70, 1);
  const auto b = Tx(0.05, 0.1, 11, -70, 2);
  medium.Register(a);
  medium.Register(b);
  EXPECT_FALSE(medium.Delivered(a, 6.0));  // Equal power: no capture.
  EXPECT_FALSE(medium.Delivered(b, 6.0));
}

TEST(SharedMediumTest, DifferentChannelsDoNotInterfere) {
  SharedMedium medium;
  const auto a = Tx(0.0, 0.1, 11, -70, 1);
  const auto b = Tx(0.05, 0.1, 12, -40, 2);
  medium.Register(a);
  medium.Register(b);
  EXPECT_TRUE(medium.Delivered(a, 6.0));
}

TEST(SharedMediumTest, NonOverlappingDoNotInterfere) {
  SharedMedium medium;
  const auto a = Tx(0.0, 0.1, 11, -70, 1);
  const auto b = Tx(0.2, 0.1, 11, -70, 2);
  medium.Register(a);
  medium.Register(b);
  EXPECT_TRUE(medium.Delivered(a, 6.0));
  EXPECT_TRUE(medium.Delivered(b, 6.0));
}

TEST(SharedMediumTest, StrongFrameCaptures) {
  SharedMedium medium;
  const auto strong = Tx(0.0, 0.1, 11, -50, 1);
  const auto weak = Tx(0.05, 0.1, 11, -80, 2);
  medium.Register(strong);
  medium.Register(weak);
  EXPECT_TRUE(medium.Delivered(strong, 6.0));  // 30 dB above interferer.
  EXPECT_FALSE(medium.Delivered(weak, 6.0));
}

TEST(SharedMediumTest, AggregateInterferenceDefeatsCapture) {
  SharedMedium medium;
  const auto victim = Tx(0.0, 0.2, 11, -60, 1);
  medium.Register(victim);
  // Eight interferers each 9 dB below the victim sum to ~0 dB margin.
  for (uint64_t i = 2; i <= 9; ++i) {
    medium.Register(Tx(0.05, 0.1, 11, -69, i));
  }
  EXPECT_FALSE(medium.Delivered(victim, 6.0));
}

TEST(SharedMediumTest, ExpireDropsOldTransmissions) {
  SharedMedium medium;
  medium.Register(Tx(0.0, 0.1, 11, -70, 1));
  medium.Register(Tx(1.0, 0.1, 11, -70, 2));
  EXPECT_EQ(medium.active_count(), 2u);
  medium.ExpireBefore(SimTime::Seconds(0.5));
  EXPECT_EQ(medium.active_count(), 1u);
}

TEST(AlohaTest, ZeroLoadIsPerfect) {
  EXPECT_DOUBLE_EQ(AlohaModel::SuccessProbability(0.0, SimTime::Millis(100)), 1.0);
}

TEST(AlohaTest, MatchesClosedForm) {
  // G = 0.5 -> P = exp(-1).
  const double p = AlohaModel::SuccessProbability(5.0, SimTime::Millis(100));
  EXPECT_NEAR(p, std::exp(-1.0), 1e-12);
}

TEST(AlohaTest, MonotoneInLoad) {
  double prev = 1.1;
  for (double rate : {0.1, 1.0, 5.0, 20.0}) {
    const double p = AlohaModel::SuccessProbability(rate, SimTime::Millis(50));
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(CsmaTest, BeatsAlohaUnderLoad) {
  // Carrier sensing shrinks the vulnerable window vs pure ALOHA.
  const SimTime airtime = Phy802154::Airtime(12);
  for (double rate : {1.0, 10.0, 50.0}) {
    EXPECT_GT(CsmaModel::SuccessProbability(rate, airtime),
              AlohaModel::SuccessProbability(rate, airtime));
  }
}

TEST(CsmaTest, ExpectedAttemptsGrowWithLoad) {
  const SimTime airtime = Phy802154::Airtime(12);
  EXPECT_GT(CsmaModel::ExpectedAttempts(200.0, airtime),
            CsmaModel::ExpectedAttempts(1.0, airtime));
  EXPECT_GE(CsmaModel::ExpectedAttempts(1.0, airtime), 1.0);
}

}  // namespace
}  // namespace centsim
