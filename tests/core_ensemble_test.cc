// The tentpole guarantee of the ensemble engine: for a fixed base seed,
// the merged ensemble statistics are bit-identical whether the replicas
// ran on one worker or eight, in any completion order.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/core/experiment_api.h"
#include "src/core/montecarlo.h"
#include "src/sim/ensemble.h"

namespace centsim {
namespace {

EnsembleOptions Opts(uint32_t replicas, uint32_t threads, bool collect_metrics = false) {
  EnsembleOptions options;
  options.replicas = replicas;
  options.threads = threads;
  options.collect_metrics = collect_metrics;
  return options;
}

FiftyYearConfig SmallConfig() {
  FiftyYearConfig cfg;
  cfg.seed = 424242;
  cfg.devices_802154 = 2;
  cfg.devices_lora = 2;
  cfg.owned_gateways = 2;
  cfg.helium_hotspots = 2;
  cfg.report_interval = SimTime::Hours(12);
  cfg.horizon = SimTime::Years(2);
  return cfg;
}

void ExpectSampleSetsIdentical(const SampleSet& a, const SampleSet& b) {
  ASSERT_EQ(a.count(), b.count());
  const auto& va = a.values();
  const auto& vb = b.values();
  for (size_t i = 0; i < va.size(); ++i) {
    EXPECT_EQ(va[i], vb[i]) << "sample " << i;  // Bitwise, not approximate.
  }
}

void ExpectSummaryStatsIdentical(const SummaryStats& a, const SummaryStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

void ExpectEnsemblesIdentical(const FiftyYearEnsemble& a, const FiftyYearEnsemble& b) {
  EXPECT_EQ(a.runs, b.runs);
  ExpectSampleSetsIdentical(a.weekly_uptime, b.weekly_uptime);
  ExpectSampleSetsIdentical(a.owned_path_uptime, b.owned_path_uptime);
  ExpectSampleSetsIdentical(a.helium_path_uptime, b.helium_path_uptime);
  ExpectSampleSetsIdentical(a.longest_gap_weeks, b.longest_gap_weeks);
  ExpectSummaryStatsIdentical(a.device_failures, b.device_failures);
  ExpectSummaryStatsIdentical(a.gateway_failures, b.gateway_failures);
  ExpectSummaryStatsIdentical(a.maintenance_hours, b.maintenance_hours);
  ExpectSummaryStatsIdentical(a.credits_spent, b.credits_spent);
  EXPECT_EQ(a.runs_meeting_weekly_goal, b.runs_meeting_weekly_goal);
  EXPECT_EQ(a.runs_helium_path_died, b.runs_helium_path_died);
}

TEST(CoreEnsembleTest, OneThreadVsEightThreadsBitIdentical) {
  const auto serial = SweepFiftyYear(SmallConfig(), 8, /*weekly_goal=*/0.9, /*threads=*/1);
  const auto parallel = SweepFiftyYear(SmallConfig(), 8, /*weekly_goal=*/0.9, /*threads=*/8);
  ExpectEnsemblesIdentical(serial, parallel);
}

TEST(CoreEnsembleTest, MergedRegistriesBitIdenticalAcrossThreadCounts) {
  const auto a = EnsembleRunner<FiftyYearExperiment>::Run(SmallConfig(),
                                                          Opts(6, 1, /*collect_metrics=*/true));
  const auto b = EnsembleRunner<FiftyYearExperiment>::Run(SmallConfig(),
                                                          Opts(6, 8, /*collect_metrics=*/true));
  ASSERT_NE(a.metrics, nullptr);
  ASSERT_NE(b.metrics, nullptr);
  ASSERT_EQ(a.metrics->size(), b.metrics->size());
  // Every counter (summed across replicas in index order) must match
  // exactly; visitation order is creation order, which is also identical.
  std::vector<std::pair<std::string, double>> counters_a;
  a.metrics->VisitCounters([&](const std::string& name, const MetricLabels& labels,
                               const Counter& counter) {
    counters_a.emplace_back(name + "|" + labels.ToString(), counter.value());
  });
  size_t index = 0;
  b.metrics->VisitCounters([&](const std::string& name, const MetricLabels& labels,
                               const Counter& counter) {
    ASSERT_LT(index, counters_a.size());
    EXPECT_EQ(counters_a[index].first, name + "|" + labels.ToString());
    EXPECT_EQ(counters_a[index].second, counter.value());
    ++index;
  });
  EXPECT_EQ(index, counters_a.size());
}

TEST(CoreEnsembleTest, SweepMatchesGenericRunnerAggregation) {
  // The compatibility wrapper is a thin shim: aggregating the generic
  // runner's replicas by hand must reproduce SweepFiftyYear bit for bit.
  const auto result = EnsembleRunner<FiftyYearExperiment>::Run(SmallConfig(), Opts(5, 3));
  const auto direct = AggregateFiftyYear(result.replicas, 0.9);
  const auto swept = SweepFiftyYear(SmallConfig(), 5, 0.9, /*threads=*/2);
  ExpectEnsemblesIdentical(direct, swept);
}

TEST(CoreEnsembleTest, ReplicaSeedsAreStreamSplit) {
  const auto result = EnsembleRunner<FiftyYearExperiment>::Run(SmallConfig(), Opts(4, 2));
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(result.replicas[i].seed, DeriveReplicaSeed(SmallConfig().seed, i));
    EXPECT_NE(result.replicas[i].seed, SmallConfig().seed + i);  // Old hazard.
  }
}

TEST(CoreEnsembleTest, DistrictExperimentRunsUnderEnsemble) {
  DistrictConfig cfg;
  cfg.seed = 17;
  cfg.device_count = 150;
  cfg.area_km2 = 2.0;
  cfg.zone_grid = 2;
  cfg.horizon = SimTime::Years(10);
  const auto serial = EnsembleRunner<DistrictExperiment>::Run(cfg, Opts(3, 1));
  const auto parallel = EnsembleRunner<DistrictExperiment>::Run(cfg, Opts(3, 3));
  ASSERT_EQ(serial.replicas.size(), 3u);
  ASSERT_EQ(parallel.replicas.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(serial.replicas[i].report.mean_service_availability,
              parallel.replicas[i].report.mean_service_availability);
    EXPECT_EQ(serial.replicas[i].report.device_failures,
              parallel.replicas[i].report.device_failures);
    EXPECT_GT(parallel.replicas[i].report.mean_service_availability, 0.0);
  }
}

TEST(CoreEnsembleTest, CenturyExperimentRunsUnderEnsemble) {
  CenturyConfig cfg;
  cfg.seed = 23;
  cfg.fleet_size = 200;
  cfg.horizon = SimTime::Years(30);
  const auto serial = EnsembleRunner<CenturyExperiment>::Run(cfg, Opts(3, 1));
  const auto parallel = EnsembleRunner<CenturyExperiment>::Run(cfg, Opts(3, 3));
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(serial.replicas[i].report.mean_availability,
              parallel.replicas[i].report.mean_availability);
    EXPECT_EQ(serial.replicas[i].report.total_failures,
              parallel.replicas[i].report.total_failures);
    EXPECT_GT(parallel.replicas[i].report.units_deployed, 0u);
  }
}

TEST(CoreEnsembleTest, ReplicasProduceDistinctRealizations) {
  const auto result = EnsembleRunner<FiftyYearExperiment>::Run(SmallConfig(), Opts(6, 2));
  bool any_different = false;
  for (size_t i = 1; i < result.replicas.size(); ++i) {
    if (result.replicas[i].report.total_packets !=
        result.replicas[0].report.total_packets) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace centsim
