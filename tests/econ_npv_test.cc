#include "src/econ/npv.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

TEST(NpvTest, PresentValueDiscounts) {
  EXPECT_DOUBLE_EQ(PresentValue(100.0, 0.0, 0.05), 100.0);
  EXPECT_NEAR(PresentValue(105.0, 1.0, 0.05), 100.0, 1e-9);
  EXPECT_LT(PresentValue(100.0, 50.0, 0.05), 10.0);
}

TEST(NpvTest, AnnuityZeroRateIsSum) {
  EXPECT_DOUBLE_EQ(AnnuityPresentValue(10.0, 5.0, 0.0), 50.0);
}

TEST(NpvTest, AnnuityClosedForm) {
  // $100/yr for 10 years at 5%: 100 * (1 - 1.05^-10)/0.05 = 772.17.
  EXPECT_NEAR(AnnuityPresentValue(100.0, 10.0, 0.05), 772.17, 0.01);
}

TEST(NpvTest, AnnuityLessThanUndiscounted) {
  EXPECT_LT(AnnuityPresentValue(100.0, 50.0, 0.03), 5000.0);
}

TEST(NpvTest, NetPresentValueOfSchedule) {
  std::vector<CashFlow> flows = {{0.0, -1000.0}, {1.0, 600.0}, {2.0, 600.0}};
  const double npv = NetPresentValue(flows, 0.10);
  EXPECT_NEAR(npv, -1000.0 + 600.0 / 1.1 + 600.0 / 1.21, 1e-9);
}

TEST(NpvTest, EquivalentAnnualCostZeroRate) {
  EXPECT_DOUBLE_EQ(EquivalentAnnualCost(1000.0, 10.0, 0.0), 100.0);
}

TEST(NpvTest, EquivalentAnnualCostReflectsCapitalCost) {
  // At positive rates the EAC exceeds straight-line amortization.
  EXPECT_GT(EquivalentAnnualCost(1000.0, 10.0, 0.05), 100.0);
}

TEST(NpvTest, LongerLifeLowersEac) {
  EXPECT_LT(EquivalentAnnualCost(120000.0, 50.0, 0.03),
            EquivalentAnnualCost(120000.0, 10.0, 0.03));
}

TEST(NpvTest, DegenerateLifeReturnsCapex) {
  EXPECT_DOUBLE_EQ(EquivalentAnnualCost(500.0, 0.0, 0.05), 500.0);
}

}  // namespace
}  // namespace centsim
