#include "src/core/experiment.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/sim/metrics.h"
#include "src/sim/profiler.h"
#include "src/telemetry/json.h"

namespace centsim {
namespace {

FiftyYearConfig QuickConfig() {
  FiftyYearConfig cfg;
  cfg.seed = 99;
  cfg.devices_802154 = 3;
  cfg.devices_lora = 3;
  cfg.owned_gateways = 2;
  cfg.helium_hotspots = 3;
  cfg.report_interval = SimTime::Hours(6);  // Keep event counts small.
  cfg.horizon = SimTime::Years(5);
  return cfg;
}

TEST(ExperimentTest, FiveYearRunHasHighUptime) {
  const auto report = RunFiftyYearExperiment(QuickConfig());
  EXPECT_GT(report.weekly_uptime, 0.9);
  EXPECT_GT(report.total_packets, 1000u);
  EXPECT_GT(report.owned_path.attempts, 0u);
  EXPECT_GT(report.helium_path.attempts, 0u);
}

TEST(ExperimentTest, DeterministicForSameSeed) {
  const auto a = RunFiftyYearExperiment(QuickConfig());
  const auto b = RunFiftyYearExperiment(QuickConfig());
  EXPECT_EQ(a.total_packets, b.total_packets);
  EXPECT_EQ(a.device_failures, b.device_failures);
  EXPECT_EQ(a.credits_spent, b.credits_spent);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_DOUBLE_EQ(a.weekly_uptime, b.weekly_uptime);
}

TEST(ExperimentTest, SeedChangesRealization) {
  FiftyYearConfig cfg = QuickConfig();
  const auto a = RunFiftyYearExperiment(cfg);
  cfg.seed = 100;
  const auto b = RunFiftyYearExperiment(cfg);
  EXPECT_NE(a.total_packets, b.total_packets);
}

TEST(ExperimentTest, CreditsChargedOnlyForHeliumPath) {
  FiftyYearConfig cfg = QuickConfig();
  const auto report = RunFiftyYearExperiment(cfg);
  EXPECT_GT(report.credits_spent, 0u);
  // Every frame a hotspot forwards costs 1 credit (<=24 B payload), and a
  // broadcast frame can be forwarded by several hotspots — so spent is at
  // least the delivered count and at most attempts x hotspots.
  EXPECT_GE(report.credits_spent, report.helium_path.delivered);
  EXPECT_LE(report.credits_spent,
            report.helium_path.attempts * static_cast<uint64_t>(cfg.helium_hotspots));
  EXPECT_EQ(report.credits_provisioned, 3u * 500000u);
}

TEST(ExperimentTest, AuthenticationCleanAndDedupActive) {
  const auto report = RunFiftyYearExperiment(QuickConfig());
  // Every packet is legitimately signed with increasing counters: nothing
  // should be rejected end-to-end.
  EXPECT_EQ(report.auth_rejected, 0u);
  EXPECT_EQ(report.replay_rejected, 0u);
  // The network server saw the Helium traffic (>=1 witness per frame).
  EXPECT_GE(report.mean_witnesses, 1.0);
}

TEST(ExperimentTest, SuccessionReported) {
  FiftyYearConfig cfg = QuickConfig();
  cfg.horizon = SimTime::Years(40);
  cfg.report_interval = SimTime::Hours(12);
  const auto report = RunFiftyYearExperiment(cfg);
  EXPECT_GE(report.custodian_handovers, 1u);
  EXPECT_GT(report.final_knowledge, 0.0);
  EXPECT_LE(report.final_knowledge, 1.0);
}

TEST(ExperimentTest, MultiBuyOneBoundsCredits) {
  // With purchase dedup, credits spent equal purchased frames: at most one
  // per helium-path attempt.
  const auto report = RunFiftyYearExperiment(QuickConfig());
  EXPECT_LE(report.credits_spent, report.helium_path.attempts);
  EXPECT_GE(report.credits_spent, report.helium_path.delivered);
}

TEST(ExperimentTest, PathOutcomesSumToAttempts) {
  const auto report = RunFiftyYearExperiment(QuickConfig());
  for (const auto* path : {&report.owned_path, &report.helium_path}) {
    uint64_t total = 0;
    for (const auto count : path->outcomes) {
      total += count;
    }
    EXPECT_EQ(total, path->attempts);
  }
}

TEST(ExperimentTest, ReplacementKeepsFleetAlive) {
  FiftyYearConfig cfg = QuickConfig();
  cfg.horizon = SimTime::Years(30);
  cfg.report_interval = SimTime::Hours(12);
  const auto report = RunFiftyYearExperiment(cfg);
  // Over 30 years with ~15-year MTTF units, failures happen and get
  // replaced (30-day diagnose window).
  EXPECT_GT(report.device_failures, 0u);
  EXPECT_EQ(report.device_replacements, report.device_failures);
  EXPECT_GT(report.weekly_uptime, 0.8);
}

TEST(ExperimentTest, NoReplacementFleetDecays) {
  FiftyYearConfig with = QuickConfig();
  with.horizon = SimTime::Years(40);
  with.report_interval = SimTime::Hours(12);
  FiftyYearConfig without = with;
  without.replace_failed_devices = false;
  const auto a = RunFiftyYearExperiment(with);
  const auto b = RunFiftyYearExperiment(without);
  EXPECT_EQ(b.device_replacements, 0u);
  EXPECT_LE(b.total_packets, a.total_packets);
}

TEST(ExperimentTest, MaintenanceKeepsOwnedGatewaysRunning) {
  FiftyYearConfig cfg = QuickConfig();
  cfg.horizon = SimTime::Years(20);
  cfg.report_interval = SimTime::Hours(12);
  const auto report = RunFiftyYearExperiment(cfg);
  EXPECT_GT(report.owned_gateway_failures, 0u);
  EXPECT_GT(report.maintenance_repairs, 0u);
  EXPECT_GT(report.maintenance_hours, 0.0);
}

TEST(ExperimentTest, DisabledMaintenanceKillsOwnedPath) {
  FiftyYearConfig cfg = QuickConfig();
  cfg.horizon = SimTime::Years(25);
  cfg.report_interval = SimTime::Hours(12);
  cfg.maintenance.enabled = false;
  const auto report = RunFiftyYearExperiment(cfg);
  EXPECT_EQ(report.maintenance_repairs, 0u);
  // RPi gateways die within a decade; the owned path then goes dark while
  // the Helium path (owner churn replaces hotspots) outlives it.
  EXPECT_LT(report.owned_path.group_weekly_uptime,
            report.helium_path.group_weekly_uptime);
}

TEST(ExperimentTest, DiaryRecordsLivingStudy) {
  FiftyYearConfig cfg = QuickConfig();
  cfg.horizon = SimTime::Years(25);
  cfg.report_interval = SimTime::Hours(12);
  const auto report = RunFiftyYearExperiment(cfg);
  EXPECT_FALSE(report.diary_entries.empty());
  EXPECT_FALSE(report.diary_decades.empty());
  EXPECT_GE(report.domain_renewals + report.domain_lapses, 2u);
}

TEST(ExperimentTest, SurvivalCurveHasObservations) {
  FiftyYearConfig cfg = QuickConfig();
  cfg.horizon = SimTime::Years(30);
  cfg.report_interval = SimTime::Hours(12);
  const auto report = RunFiftyYearExperiment(cfg);
  EXPECT_GE(report.device_survival.count(),
            static_cast<size_t>(cfg.devices_802154 + cfg.devices_lora));
}

TEST(ExperimentTest, ObservabilityOffByDefault) {
  // No registry, no profiler, no artifacts dir: the run must not create
  // files or leave instrumentation attached.
  const auto report = RunFiftyYearExperiment(QuickConfig());
  EXPECT_TRUE(report.manifest_path.empty());
  EXPECT_TRUE(report.metrics_path.empty());
  EXPECT_TRUE(report.trace_path.empty());
}

TEST(ExperimentTest, ArtifactsDirProducesValidTriple) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "centsim_artifacts_test";
  std::error_code ec;
  fs::remove_all(dir, ec);

  FiftyYearConfig cfg = QuickConfig();
  cfg.horizon = SimTime::Years(2);
  cfg.artifacts_dir = dir.string();
  cfg.run_name = "unit";
  const auto report = RunFiftyYearExperiment(cfg);

  ASSERT_FALSE(report.manifest_path.empty());
  for (const std::string& path :
       {report.manifest_path, report.metrics_path, report.trace_path}) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_FALSE(buf.str().empty()) << path;
  }

  // Manifest and trace must be valid JSON documents end to end.
  for (const std::string& path : {report.manifest_path, report.trace_path}) {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string error;
    EXPECT_TRUE(JsonLint(buf.str(), &error)) << path << ": " << error;
  }
  EXPECT_GT(report.wall_seconds, 0.0);
  fs::remove_all(dir, ec);
}

TEST(ExperimentTest, ExternalRegistryCapturesRunMetrics) {
  MetricsRegistry registry;
  SchedulerProfiler profiler;
  FiftyYearConfig cfg = QuickConfig();
  cfg.horizon = SimTime::Years(2);
  cfg.metrics = &registry;
  cfg.profiler = &profiler;
  const auto report = RunFiftyYearExperiment(cfg);

  const Counter* total = registry.FindCounter("sched.events_total");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->value(), static_cast<double>(report.events_executed));
  // The per-tech uplink outcome counters are pre-created by the fabric.
  EXPECT_NE(registry.FindCounter("uplink.outcomes",
                                 MetricLabels{{"tech", "802.15.4"},
                                              {"outcome", "delivered"}}),
            nullptr);
  EXPECT_EQ(profiler.events_recorded(), report.events_executed);
}

TEST(ExperimentTest, GridBucketedMediumMatchesFullScanExactly) {
  // With a cell size whose 3x3 neighborhood spans the whole campus, the
  // grid is purely a lookup structure: candidates and offered load match
  // the full scan, draw and accumulation order are pinned, so the whole
  // fifty-year realization is bit-identical.
  FiftyYearConfig cfg = QuickConfig();
  const auto base = RunFiftyYearExperiment(cfg);
  cfg.medium.grid_buckets = true;
  cfg.medium.grid_cell_m = cfg.area_side_m + 500.0;
  const auto grid = RunFiftyYearExperiment(cfg);
  EXPECT_EQ(base.total_packets, grid.total_packets);
  EXPECT_EQ(base.device_failures, grid.device_failures);
  EXPECT_EQ(base.credits_spent, grid.credits_spent);
  EXPECT_EQ(base.events_executed, grid.events_executed);
  EXPECT_DOUBLE_EQ(base.weekly_uptime, grid.weekly_uptime);

  // Smaller cells localize the offered load (a corner device no longer
  // competes with traffic on the far side), shifting the realization —
  // deterministically.
  cfg.medium.grid_cell_m = 1000.0;
  const auto local_a = RunFiftyYearExperiment(cfg);
  const auto local_b = RunFiftyYearExperiment(cfg);
  EXPECT_GE(local_a.total_packets, base.total_packets);
  EXPECT_EQ(local_a.total_packets, local_b.total_packets);
  EXPECT_EQ(local_a.events_executed, local_b.events_executed);
}

TEST(ExperimentTest, FidelityKnobsRunDeterministically) {
  FiftyYearConfig cfg = QuickConfig();
  cfg.medium.sir_capture = true;
  cfg.medium.cad = true;
  const auto a = RunFiftyYearExperiment(cfg);
  const auto b = RunFiftyYearExperiment(cfg);
  EXPECT_GT(a.total_packets, 1000u);
  EXPECT_EQ(a.total_packets, b.total_packets);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_DOUBLE_EQ(a.weekly_uptime, b.weekly_uptime);
}

TEST(ExperimentTest, LoraDeviceClassChangesTheLoraPathOnly) {
  FiftyYearConfig cfg = QuickConfig();
  const auto base = RunFiftyYearExperiment(cfg);

  FiftyYearConfig class_b = cfg;
  class_b.lora_device_class = LoraDeviceClass::kClassB;
  const auto b = RunFiftyYearExperiment(class_b);
  // Beacons tick every 128 s for five years — far more events than the
  // class A run schedules.
  EXPECT_GT(b.events_executed, base.events_executed);

  FiftyYearConfig class_c = cfg;
  class_c.lora_device_class = LoraDeviceClass::kClassC;
  const auto c = RunFiftyYearExperiment(class_c);
  // A class C receiver never sleeps; its 36 mW listen floor exceeds the
  // 10 mW solar peak, so the LoRa cohort browns out while the owned
  // 802.15.4 path is untouched.
  EXPECT_NE(c.helium_path.delivered, base.helium_path.delivered);
  EXPECT_EQ(c.owned_path.delivered, base.owned_path.delivered);
}

}  // namespace
}  // namespace centsim
