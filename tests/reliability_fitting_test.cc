#include "src/reliability/fitting.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/reliability/hazard.h"
#include "src/sim/random.h"

namespace centsim {
namespace {

std::vector<SurvivalObservation> DrawLives(double shape, double scale_years, int n,
                                           uint64_t seed, double censor_years = 0.0) {
  WeibullHazard hazard(shape, SimTime::Years(scale_years));
  RandomStream rng(seed);
  std::vector<SurvivalObservation> obs;
  obs.reserve(n);
  for (int i = 0; i < n; ++i) {
    const SimTime life = hazard.SampleLife(rng);
    if (censor_years > 0 && life.ToYears() > censor_years) {
      obs.push_back({SimTime::Years(censor_years), false});
    } else {
      obs.push_back({life, true});
    }
  }
  return obs;
}

TEST(FittingTest, RecoversParametersUncensored) {
  const auto obs = DrawLives(3.0, 15.0, 5000, 1);
  const auto fit = FitWeibull(obs);
  ASSERT_TRUE(fit.has_value());
  EXPECT_TRUE(fit->converged);
  EXPECT_NEAR(fit->shape, 3.0, 0.15);
  EXPECT_NEAR(fit->scale_years, 15.0, 0.3);
}

TEST(FittingTest, RecoversUnderHeavyCensoring) {
  // Censor at 12 years (below the 15-year scale): ~55% of units censored,
  // exactly the living-study situation mid-experiment.
  const auto obs = DrawLives(3.0, 15.0, 8000, 2, /*censor_years=*/12.0);
  const auto fit = FitWeibull(obs);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->shape, 3.0, 0.25);
  EXPECT_NEAR(fit->scale_years, 15.0, 0.8);
}

TEST(FittingTest, ExponentialDataGivesShapeNearOne) {
  const auto obs = DrawLives(1.0, 10.0, 5000, 3);
  const auto fit = FitWeibull(obs);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->shape, 1.0, 0.08);
}

TEST(FittingTest, InfantMortalityShapeBelowOne) {
  const auto obs = DrawLives(0.6, 20.0, 5000, 4);
  const auto fit = FitWeibull(obs);
  ASSERT_TRUE(fit.has_value());
  EXPECT_LT(fit->shape, 0.75);
}

TEST(FittingTest, TooFewFailuresRefused) {
  std::vector<SurvivalObservation> obs = {
      {SimTime::Years(3), true},
      {SimTime::Years(4), true},
      {SimTime::Years(10), false},
  };
  EXPECT_FALSE(FitWeibull(obs).has_value());  // Only 2 failures.
}

TEST(FittingTest, FitExposesMttfAndSurvival) {
  const auto obs = DrawLives(2.0, 10.0, 4000, 5);
  const auto fit = FitWeibull(obs);
  ASSERT_TRUE(fit.has_value());
  const double expected_mttf = 10.0 * std::tgamma(1.5);
  EXPECT_NEAR(fit->Mttf().ToYears(), expected_mttf, 0.4);
  EXPECT_NEAR(fit->SurvivalAt(SimTime::Years(10)), std::exp(-1.0), 0.03);
}

TEST(FittingTest, WorksFromKaplanMeier) {
  KaplanMeier km;
  WeibullHazard hazard(2.5, SimTime::Years(12));
  RandomStream rng(6);
  for (int i = 0; i < 3000; ++i) {
    km.Observe(hazard.SampleLife(rng), true);
  }
  const auto fit = FitWeibull(km);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->shape, 2.5, 0.2);
}

TEST(FittingTest, ForecastMatchesKaplanMeier) {
  // The parametric fit and the nonparametric KM curve agree on survival at
  // a probe time — the cross-check an operator would run on diary data.
  KaplanMeier km;
  WeibullHazard hazard(3.0, SimTime::Years(15));
  RandomStream rng(7);
  for (int i = 0; i < 5000; ++i) {
    km.Observe(hazard.SampleLife(rng), true);
  }
  const auto fit = FitWeibull(km);
  ASSERT_TRUE(fit.has_value());
  const SimTime probe = SimTime::Years(12);
  EXPECT_NEAR(fit->SurvivalAt(probe), km.SurvivalAt(probe), 0.03);
}

}  // namespace
}  // namespace centsim
