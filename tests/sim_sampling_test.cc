#include "src/sim/sampling.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "src/sim/scheduler.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace centsim {
namespace {

TEST(SamplingPlanTest, DefaultPlanIsOffAndValidatesClean) {
  SamplingPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_TRUE(plan.Validate().empty());
  // A disabled plan never complains, even with garbage knobs — the serial
  // engine ignores them.
  plan.ci_target = -1.0;
  plan.detailed_window = SimTime();
  EXPECT_TRUE(plan.Validate().empty());
}

TEST(SamplingPlanTest, ValidateCatchesBadKnobs) {
  SamplingPlan plan;
  plan.mode = SimMode::kSampled;
  EXPECT_TRUE(plan.Validate().empty());

  SamplingPlan bad = plan;
  bad.detailed_window = SimTime();
  EXPECT_FALSE(bad.Validate().empty());

  bad = plan;
  bad.sample_period = SimTime::Days(-1);
  EXPECT_FALSE(bad.Validate().empty());

  bad = plan;
  bad.ci_target = 0.0;
  EXPECT_FALSE(bad.Validate().empty());

  bad = plan;
  bad.confidence = 1.0;
  EXPECT_FALSE(bad.Validate().empty());

  bad = plan;
  bad.min_windows = 1;
  EXPECT_FALSE(bad.Validate().empty());

  bad = plan;
  bad.max_windows = 3;
  bad.min_windows = 8;
  EXPECT_FALSE(bad.Validate().empty());
}

TEST(SamplingPlanTest, ModeNames) {
  EXPECT_STREQ(SimModeName(SimMode::kDetailed), "detailed");
  EXPECT_STREQ(SimModeName(SimMode::kSampled), "sampled");
}

TEST(MetricCiTest, RelativeHalfWidthEdgeCases) {
  MetricCi ci;
  ci.mean = 10.0;
  ci.ci_half_width = 0.5;
  EXPECT_DOUBLE_EQ(ci.RelativeHalfWidth(), 0.05);
  ci.mean = -10.0;
  EXPECT_DOUBLE_EQ(ci.RelativeHalfWidth(), 0.05);
  ci.mean = 0.0;
  EXPECT_TRUE(std::isinf(ci.RelativeHalfWidth()));
  ci.ci_half_width = 0.0;
  EXPECT_DOUBLE_EQ(ci.RelativeHalfWidth(), 0.0);
}

// Student-t critical values against standard tables (two-sided 95% =>
// p = 0.975), the numbers behind every CiHalfWidth below.
TEST(SamplingStatsTest, QuantilesMatchTables) {
  EXPECT_NEAR(NormalQuantile(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(StudentTQuantile(0.975, 1.0), 12.7062, 5e-3);
  EXPECT_NEAR(StudentTQuantile(0.975, 7.0), 2.3646, 1e-3);
  EXPECT_NEAR(StudentTQuantile(0.975, 30.0), 2.0423, 1e-3);
  // Large df converges to the normal quantile.
  EXPECT_NEAR(StudentTQuantile(0.975, 1e6), NormalQuantile(0.975), 1e-4);
}

TEST(SamplingStatsTest, CiHalfWidthUnboundedUntilTwoSamples) {
  SampleSet s;
  EXPECT_TRUE(std::isinf(s.CiHalfWidth()));
  s.Add(1.0);
  EXPECT_TRUE(std::isinf(s.CiHalfWidth()));
  s.Add(1.0);
  // Two identical samples: zero variance, zero half-width.
  EXPECT_DOUBLE_EQ(s.CiHalfWidth(), 0.0);
}

TEST(SamplingStatsTest, CiHalfWidthMatchesHandComputation) {
  SampleSet s;
  for (const double x : {4.0, 6.0, 5.0, 5.0}) {
    s.Add(x);
  }
  // mean 5, sample variance 2/3, stderr sqrt(1/6), t(0.975, df=3)=3.1824.
  const double expect = 3.1824 * std::sqrt(1.0 / 6.0);
  // The t-quantile implementation is a Cornish-Fisher-style expansion,
  // good to ~0.2% at df = 3 — plenty for a convergence test.
  EXPECT_NEAR(s.CiHalfWidth(0.95), expect, 5e-3);
}

// --- SamplingController over a synthetic domain -------------------------

// A minimal driver: each detailed window runs `events_per_window` ticks
// and contributes one observation; fast-forward just records the spans it
// was asked to cover.
struct SyntheticDomain {
  Scheduler& sched;
  SampleSet metric;
  double observation = 5.0;
  int events_per_window = 3;
  uint64_t events_run = 0;
  std::vector<std::pair<int64_t, int64_t>> ff_spans;

  explicit SyntheticDomain(Scheduler& s) : sched(s) {}

  void Begin(SimTime w0, SimTime w1) {
    const int64_t span = w1.micros() - w0.micros();
    for (int i = 0; i < events_per_window; ++i) {
      // Strictly inside [w0, w1) — the window contract.
      const SimTime at = w0 + SimTime::Micros(1 + i * (span / (events_per_window + 1)));
      ASSERT_LT(at.micros(), w1.micros());
      sched.ScheduleAt(at, [this] { ++events_run; });
    }
  }
  void End(SimTime, SimTime) { metric.Add(observation); }
  void FastForward(SimTime from, SimTime to) {
    ff_spans.emplace_back(from.micros(), to.micros());
  }
};

SamplingPlan SmallPlan() {
  SamplingPlan plan;
  plan.mode = SimMode::kSampled;
  plan.detailed_window = SimTime::Days(1);
  plan.sample_period = SimTime::Days(10);
  plan.min_windows = 4;
  return plan;
}

TEST(SamplingControllerTest, ConvergesAndAccountsForEveryMicrosecond) {
  Scheduler sched;
  SyntheticDomain domain(sched);
  SamplingController controller(sched, SmallPlan());
  controller.RegisterDomain("synthetic",
                            [&](SimTime a, SimTime b) { domain.FastForward(a, b); });
  controller.SetWindowHooks([&](SimTime a, SimTime b) { domain.Begin(a, b); },
                            [&](SimTime a, SimTime b) { domain.End(a, b); });
  controller.TrackMetric("constant", &domain.metric);

  const SimTime horizon = SimTime::Years(2);
  const SamplingOutcome out = controller.Run(horizon);

  // A constant metric converges at exactly min_windows.
  EXPECT_TRUE(out.converged);
  EXPECT_EQ(out.windows_measured, 4u);
  EXPECT_EQ(domain.metric.count(), 4u);
  EXPECT_EQ(domain.events_run, 4u * 3u);
  // Detailed + skipped spans tile the horizon exactly.
  EXPECT_EQ(out.sim_detailed_us + out.sim_skipped_us, horizon.micros());
  EXPECT_EQ(out.sim_detailed_us, 4 * SimTime::Days(1).micros());
  EXPECT_EQ(sched.Now(), horizon);
  // Fast-forward spans are contiguous, non-overlapping, and end at the
  // horizon (the post-convergence tail is one big span).
  ASSERT_FALSE(domain.ff_spans.empty());
  EXPECT_EQ(domain.ff_spans.back().second, horizon.micros());
  for (size_t i = 1; i < domain.ff_spans.size(); ++i) {
    EXPECT_GT(domain.ff_spans[i].first, domain.ff_spans[i - 1].second - 1);
  }

  const std::vector<MetricCi> cis = controller.MetricSummaries();
  ASSERT_EQ(cis.size(), 1u);
  EXPECT_EQ(cis[0].name, "constant");
  EXPECT_DOUBLE_EQ(cis[0].mean, 5.0);
  EXPECT_DOUBLE_EQ(cis[0].ci_half_width, 0.0);
  EXPECT_EQ(cis[0].windows, 4u);
}

TEST(SamplingControllerTest, NoTrackedMetricsMeasuresEveryWindowToHorizon) {
  Scheduler sched;
  SyntheticDomain domain(sched);
  SamplingPlan plan = SmallPlan();
  SamplingController controller(sched, plan);
  controller.RegisterDomain("synthetic",
                            [&](SimTime a, SimTime b) { domain.FastForward(a, b); });
  controller.SetWindowHooks([&](SimTime a, SimTime b) { domain.Begin(a, b); },
                            [&](SimTime a, SimTime b) { domain.End(a, b); });
  // No TrackMetric: Converged() is vacuously false, so the run measures a
  // window every sample_period until the horizon.
  const SimTime horizon = SimTime::Days(100);
  const SamplingOutcome out = controller.Run(horizon);
  EXPECT_FALSE(out.converged);
  EXPECT_EQ(out.windows_measured, 10u);  // Days 0,10,...,90.
  EXPECT_EQ(out.sim_detailed_us + out.sim_skipped_us, horizon.micros());
  EXPECT_FALSE(controller.Converged());
}

TEST(SamplingControllerTest, MaxWindowsCapsANoisyMetric) {
  Scheduler sched;
  SyntheticDomain domain(sched);
  SamplingPlan plan = SmallPlan();
  plan.min_windows = 2;
  plan.max_windows = 3;
  plan.ci_target = 1e-9;  // Unreachable for a noisy metric.
  SamplingController controller(sched, plan);
  int window = 0;
  controller.RegisterDomain("synthetic",
                            [&](SimTime a, SimTime b) { domain.FastForward(a, b); });
  controller.SetWindowHooks([&](SimTime a, SimTime b) { domain.Begin(a, b); },
                            [&](SimTime, SimTime) {
                              domain.metric.Add(window % 2 == 0 ? 1.0 : 9.0);
                              ++window;
                            });
  controller.TrackMetric("noisy", &domain.metric);
  const SimTime horizon = SimTime::Years(5);
  const SamplingOutcome out = controller.Run(horizon);
  EXPECT_FALSE(out.converged);
  EXPECT_EQ(out.windows_measured, 3u);
  EXPECT_EQ(out.sim_detailed_us + out.sim_skipped_us, horizon.micros());
  EXPECT_EQ(sched.Now(), horizon);
}

TEST(SamplingControllerTest, BackToBackWindowsHaveZeroSkip) {
  // sample_period == detailed_window degenerates to wall-to-wall detailed
  // simulation: no span is ever fast-forwarded before the (unconverged)
  // horizon is reached.
  Scheduler sched;
  SyntheticDomain domain(sched);
  SamplingPlan plan = SmallPlan();
  plan.sample_period = plan.detailed_window;
  SamplingController controller(sched, plan);
  controller.RegisterDomain("synthetic",
                            [&](SimTime a, SimTime b) { domain.FastForward(a, b); });
  controller.SetWindowHooks([&](SimTime a, SimTime b) { domain.Begin(a, b); },
                            [&](SimTime a, SimTime b) { domain.End(a, b); });
  // No tracked metric: measure everything.
  const SimTime horizon = SimTime::Days(6);
  const SamplingOutcome out = controller.Run(horizon);
  EXPECT_EQ(out.windows_measured, 6u);
  EXPECT_EQ(out.sim_skipped_us, 0);
  EXPECT_EQ(out.sim_detailed_us, horizon.micros());
  EXPECT_TRUE(domain.ff_spans.empty());  // Zero-length spans are skipped.
}

TEST(SamplingControllerTest, HorizonShorterThanOneWindowStillTerminates) {
  Scheduler sched;
  SyntheticDomain domain(sched);
  SamplingController controller(sched, SmallPlan());
  controller.RegisterDomain("synthetic",
                            [&](SimTime a, SimTime b) { domain.FastForward(a, b); });
  controller.SetWindowHooks([&](SimTime a, SimTime b) { domain.Begin(a, b); },
                            [&](SimTime a, SimTime b) { domain.End(a, b); });
  const SimTime horizon = SimTime::Hours(5);  // < detailed_window.
  const SamplingOutcome out = controller.Run(horizon);
  EXPECT_EQ(out.windows_measured, 1u);
  EXPECT_EQ(out.sim_detailed_us, horizon.micros());
  EXPECT_EQ(out.sim_skipped_us, 0);
  EXPECT_EQ(sched.Now(), horizon);
}

}  // namespace
}  // namespace centsim
