#include "src/sim/config.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

TEST(ConfigTest, ParsesSectionsAndKeys) {
  const auto cfg = Config::Parse(R"(
# experiment definition
seed = 42

[devices]
count_802154 = 8
count_lora = 8
report_interval_hours = 1.5

[maintenance]
enabled = true
)");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->GetInt("seed"), 42);
  EXPECT_EQ(cfg->GetInt("devices.count_802154"), 8);
  EXPECT_DOUBLE_EQ(cfg->GetDouble("devices.report_interval_hours"), 1.5);
  EXPECT_TRUE(cfg->GetBool("maintenance.enabled"));
}

TEST(ConfigTest, CommentsAndBlankLinesIgnored) {
  const auto cfg = Config::Parse("# comment\n; also comment\n\nkey = value\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->size(), 1u);
  EXPECT_EQ(cfg->GetString("key"), "value");
}

TEST(ConfigTest, WhitespaceTrimmed) {
  const auto cfg = Config::Parse("  spaced_key   =   spaced value  \n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->GetString("spaced_key"), "spaced value");
}

TEST(ConfigTest, FallbacksWhenMissing) {
  const auto cfg = Config::Parse("a = 1\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->GetInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cfg->GetDouble("missing", 2.5), 2.5);
  EXPECT_TRUE(cfg->GetBool("missing", true));
  EXPECT_EQ(cfg->GetString("missing", "x"), "x");
  EXPECT_FALSE(cfg->Has("missing"));
}

TEST(ConfigTest, MalformedLinesRejected) {
  std::string error;
  EXPECT_FALSE(Config::Parse("just some words\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(Config::Parse("[unclosed\n", &error).has_value());
  EXPECT_FALSE(Config::Parse("= valueless\n", &error).has_value());
}

TEST(ConfigTest, BoolSpellings) {
  const auto cfg = Config::Parse(
      "a = true\nb = Yes\nc = ON\nd = 1\ne = false\nf = No\ng = off\nh = 0\ni = maybe\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_TRUE(cfg->GetBool("a"));
  EXPECT_TRUE(cfg->GetBool("b"));
  EXPECT_TRUE(cfg->GetBool("c"));
  EXPECT_TRUE(cfg->GetBool("d"));
  EXPECT_FALSE(cfg->GetBool("e"));
  EXPECT_FALSE(cfg->GetBool("f"));
  EXPECT_FALSE(cfg->GetBool("g"));
  EXPECT_FALSE(cfg->GetBool("h"));
  EXPECT_TRUE(cfg->GetBool("i", true));  // Unparseable -> fallback.
}

TEST(ConfigTest, NonNumericFallsBack) {
  const auto cfg = Config::Parse("n = twelve\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->GetInt("n", -1), -1);
  EXPECT_DOUBLE_EQ(cfg->GetDouble("n", -1.0), -1.0);
}

TEST(ConfigTest, LaterKeysOverride) {
  const auto cfg = Config::Parse("k = 1\nk = 2\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->GetInt("k"), 2);
}

TEST(ConfigTest, LoadMissingFileFails) {
  std::string error;
  EXPECT_FALSE(Config::Load("/nonexistent/path.ini", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ConfigTest, SetProgrammatically) {
  Config cfg = *Config::Parse("");
  cfg.Set("x.y", "3.5");
  EXPECT_DOUBLE_EQ(cfg.GetDouble("x.y"), 3.5);
}

}  // namespace
}  // namespace centsim
