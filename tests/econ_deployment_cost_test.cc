#include "src/econ/deployment_cost.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

TEST(DeploymentCostTest, PaperMillionsClaim) {
  // §2: "the cost for deployment for even a few thousand sensors can range
  // into millions of dollars."
  const auto sd = ComputeDeploymentCost(SanDiegoStreetlights());
  EXPECT_GT(sd.total_usd, 2e6);
  EXPECT_LT(sd.total_usd, 30e6);
  EXPECT_GT(sd.capex_usd, 1e6);
}

TEST(DeploymentCostTest, PilotIsUnderAMillionCapex) {
  const auto pilot = ComputeDeploymentCost(ModestPilot());
  EXPECT_LT(pilot.capex_usd, 1e6);
  EXPECT_GT(pilot.total_usd, 0.0);
}

TEST(DeploymentCostTest, BreakdownSumsToTotal) {
  const auto sd = ComputeDeploymentCost(SanDiegoStreetlights());
  EXPECT_DOUBLE_EQ(sd.total_usd, sd.capex_usd + sd.opex_usd);
}

TEST(DeploymentCostTest, PerNodeFiguresConsistent) {
  const auto sd = ComputeDeploymentCost(SanDiegoStreetlights());
  EXPECT_NEAR(sd.per_node_usd, sd.total_usd / 3300.0, 1e-6);
  EXPECT_NEAR(sd.per_node_per_year_usd, sd.per_node_usd / 5.0, 1e-6);
}

TEST(DeploymentCostTest, CenturyNodeIsFarCheaperPerNodeYear) {
  // The paper's thesis in cost form: long-lived harvesting nodes amortized
  // over 30 years cost orders of magnitude less per node-year than 5-year
  // replace-cycle deployments.
  const auto current = ComputeDeploymentCost(SanDiegoStreetlights());
  // At matched size the harvesting fleet is cheaper but staff-dominated...
  const auto matched = ComputeDeploymentCost(CenturyScaleNode(3300));
  EXPECT_LT(matched.per_node_per_year_usd, current.per_node_per_year_usd / 2.0);
  // ...and at the scale the paper argues toward (§2: "ten thousand, ten
  // million, or even billions"), fixed staffing amortizes away.
  const auto at_scale = ComputeDeploymentCost(CenturyScaleNode(100000));
  EXPECT_LT(at_scale.per_node_per_year_usd, current.per_node_per_year_usd / 10.0);
}

TEST(DeploymentCostTest, ScalesLinearishInNodes) {
  const auto small = ComputeDeploymentCost(CenturyScaleNode(1000));
  const auto big = ComputeDeploymentCost(CenturyScaleNode(100000));
  // Per-node cost falls (fixed staff spread) or stays flat with scale.
  EXPECT_LE(big.per_node_usd, small.per_node_usd);
}

TEST(DeploymentCostTest, ZeroNodesDegenerate) {
  DeploymentCostParams p;
  p.node_count = 0;
  const auto out = ComputeDeploymentCost(p);
  EXPECT_DOUBLE_EQ(out.per_node_usd, 0.0);
}

}  // namespace
}  // namespace centsim
