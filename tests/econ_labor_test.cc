#include "src/econ/labor.h"

#include <gtest/gtest.h>

#include "src/city/city_model.h"

namespace centsim {
namespace {

TEST(LaborTest, PaperRecoveryClaim) {
  // §1: LA's 591,315 sensor sites at 20 min each ~ "nearly 200,000
  // person-hours".
  TruckRollModel model;
  const CityAssets la = LosAngelesAssets();
  const double hours = model.PersonHours(la.TotalSensorSites());
  EXPECT_NEAR(hours, 197105.0, 1.0);
  EXPECT_GT(hours, 190000.0);
  EXPECT_LT(hours, 200000.0);
}

TEST(LaborTest, PersonHoursLinearInFleet) {
  TruckRollModel model;
  EXPECT_DOUBLE_EQ(model.PersonHours(6000), 2.0 * model.PersonHours(3000));
  EXPECT_DOUBLE_EQ(model.PersonHours(0), 0.0);
}

TEST(LaborTest, CalendarTimeWithCrews) {
  TruckRollModel model;
  // 591,315 sites / 50 crews: 197,105 h / 50 / 1800 h/yr ~ 2.19 years.
  const CityAssets la = LosAngelesAssets();
  const SimTime t = model.CalendarTime(la.TotalSensorSites(), 50);
  EXPECT_NEAR(t.ToYears(), 197105.0 / 50.0 / 1800.0, 0.01);
  EXPECT_EQ(model.CalendarTime(1000, 0), SimTime::Max());
}

TEST(LaborTest, CostUsesCrewSizeAndRate) {
  TruckRollParams p;
  p.minutes_per_device = 30.0;
  p.crew_size = 2.0;
  p.hourly_rate_usd = 100.0;
  TruckRollModel model(p);
  // 100 devices: 50 person-hours * 2 crew * $100 = $10,000.
  EXPECT_DOUBLE_EQ(model.LaborCostUsd(100), 10000.0);
}

TEST(LaborTest, StaffYears) {
  TruckRollModel model;
  const CityAssets la = LosAngelesAssets();
  // ~110 staff-years: a decade of a 11-person dedicated team.
  EXPECT_NEAR(model.StaffYears(la.TotalSensorSites()), 197105.0 / 1800.0, 0.1);
}

TEST(AttentionTest, HoursPerDeviceFallsWithScale) {
  // §3.1: "as the number of devices grows, the available hours per device
  // falls."
  const double small = AttentionHoursPerDeviceYear(10, 1000);
  const double large = AttentionHoursPerDeviceYear(10, 100000);
  EXPECT_GT(small, large);
  EXPECT_DOUBLE_EQ(small, 18.0);   // 18,000 h over 1,000 devices.
  EXPECT_DOUBLE_EQ(large, 0.18);   // Ten minutes/device/year at 100k.
}

TEST(AttentionTest, ZeroFleetIsZero) {
  EXPECT_DOUBLE_EQ(AttentionHoursPerDeviceYear(10, 0), 0.0);
}

TEST(CityAssetsTest, PaperInventories) {
  const CityAssets la = LosAngelesAssets();
  EXPECT_EQ(la.utility_poles, 320000u);
  EXPECT_EQ(la.intersections, 61315u);
  EXPECT_EQ(la.streetlights, 210000u);
  EXPECT_EQ(la.TotalSensorSites(), 591315u);

  const CityAssets sd = SanDiegoAssets();
  EXPECT_EQ(sd.streetlights, 3300u);  // §2: 3,300 sensor nodes.
  EXPECT_EQ(sd.utility_poles, 8000u);  // §2: 8,000 smart LEDs.
}

}  // namespace
}  // namespace centsim
