#include "src/reliability/component.h"

#include <gtest/gtest.h>

#include "src/sim/stats.h"

namespace centsim {
namespace {

TEST(ComponentTest, ClassNamesCovered) {
  EXPECT_STREQ(ComponentClassName(ComponentClass::kBattery), "battery");
  EXPECT_STREQ(ComponentClassName(ComponentClass::kSdCard), "sd-card");
}

TEST(ComponentTest, BatteryMeanNearConfigured) {
  const auto spec = MakeBattery(SimTime::Years(8));
  EXPECT_NEAR(spec.hazard->Mttf().ToYears(), 8.0, 0.1);
}

TEST(SeriesSystemTest, EmptySystemNeverFails) {
  SeriesSystem sys;
  RandomStream rng(1);
  EXPECT_EQ(sys.SampleLife(rng).life, SimTime::Max());
  EXPECT_DOUBLE_EQ(sys.Survival(SimTime::Years(100)), 1.0);
}

TEST(SeriesSystemTest, LifeIsMinOfComponents) {
  SeriesSystem sys;
  sys.Add(MakeBattery(SimTime::Years(8)));
  sys.Add(MakeCeramicCap());
  RandomStream rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto draw = sys.SampleLife(rng);
    EXPECT_LT(draw.life, SimTime::Max());
    ASSERT_LT(draw.failing_component, sys.size());
  }
}

TEST(SeriesSystemTest, SurvivalIsProduct) {
  SeriesSystem sys;
  sys.Add(MakeBattery());
  sys.Add(MakeElectrolyticCap());
  const SimTime t = SimTime::Years(9);
  const double expected = MakeBattery().hazard->Survival(t) *
                          MakeElectrolyticCap().hazard->Survival(t);
  EXPECT_NEAR(sys.Survival(t), expected, 1e-12);
}

TEST(SeriesSystemTest, SamplingMatchesSurvival) {
  SeriesSystem sys = SeriesSystem::BatteryPoweredNode();
  RandomStream rng(3);
  const SimTime probe = SimTime::Years(10);
  int survived = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (sys.SampleLife(rng).life > probe) {
      ++survived;
    }
  }
  EXPECT_NEAR(static_cast<double>(survived) / n, sys.Survival(probe), 0.015);
}

TEST(SeriesSystemTest, BatteryNodeLifetimeMatchesPaperBand) {
  // Paper §1: "conventional wisdom holds that components such as
  // batteries, electrolytic capacitors, or even PCB substrates will hold
  // the mean lifetime of a device to around 10-15 years" — our BOM puts
  // the MTTF in/near that band (battery-dominated, slightly below is
  // acceptable; well above would contradict the claim).
  const SimTime mttf = SeriesSystem::BatteryPoweredNode().Mttf();
  EXPECT_GT(mttf.ToYears(), 5.0);
  EXPECT_LT(mttf.ToYears(), 15.0);
}

TEST(SeriesSystemTest, HarvestingNodeOutlivesBatteryNode) {
  // The paper's core hardware argument: removing the battery and the
  // electrolytics lifts the lifetime ceiling substantially.
  const SimTime battery = SeriesSystem::BatteryPoweredNode().Mttf();
  const SimTime harvesting = SeriesSystem::EnergyHarvestingNode().Mttf();
  EXPECT_GT(harvesting.ToYears(), battery.ToYears() * 1.5);
}

TEST(SeriesSystemTest, BatteryNodeFailsByBatteryMostOften) {
  SeriesSystem sys = SeriesSystem::BatteryPoweredNode();
  RandomStream rng(5);
  std::vector<int> by_component(sys.size(), 0);
  for (int i = 0; i < 5000; ++i) {
    ++by_component[sys.SampleLife(rng).failing_component];
  }
  // Component 0 is the battery; it should be the leading cause.
  for (size_t c = 1; c < sys.size(); ++c) {
    EXPECT_GE(by_component[0], by_component[c]) << "component " << c;
  }
}

TEST(SeriesSystemTest, GatewayLifetimeIsYearsNotDecades) {
  const SimTime mttf = SeriesSystem::RaspberryPiGateway().Mttf();
  EXPECT_GT(mttf.ToYears(), 1.0);
  EXPECT_LT(mttf.ToYears(), 10.0);
}

TEST(SeriesSystemTest, MttfIntegrationConverges) {
  SeriesSystem sys = SeriesSystem::EnergyHarvestingNode();
  const SimTime a = sys.Mttf(SimTime::Years(200));
  const SimTime b = sys.Mttf(SimTime::Years(400));
  EXPECT_NEAR(a.ToYears(), b.ToYears(), a.ToYears() * 0.05);
}

TEST(SeriesSystemTest, SurvivalMonotoneNonIncreasing) {
  SeriesSystem sys = SeriesSystem::EnergyHarvestingNode();
  double prev = 1.0;
  for (int y = 0; y <= 100; y += 5) {
    const double s = sys.Survival(SimTime::Years(y));
    EXPECT_LE(s, prev + 1e-12);
    prev = s;
  }
}

}  // namespace
}  // namespace centsim
