#include "src/radio/contention.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/random.h"

namespace centsim {
namespace {

ContentionParams LoraParams(uint64_t seed) {
  ContentionParams p;
  LoraConfig sf9;
  sf9.sf = LoraSf::kSf9;
  LoraConfig sf12;
  sf12.sf = LoraSf::kSf12;
  p.groups = {PhyModel::ForLora(sf9), PhyModel::ForLora(sf12)};
  p.range_m = 3000.0;
  p.seed = seed;
  return p;
}

struct Scene {
  std::vector<double> gx, gy;
  std::vector<double> x, y, power;
  std::vector<uint8_t> group;

  ContentionResolver::TxColumns Columns() const {
    ContentionResolver::TxColumns tx;
    tx.x = x.data();
    tx.y = y.data();
    tx.tx_power_dbm = power.data();
    tx.group = group.data();
    tx.count = x.size();
    return tx;
  }
};

// Random city: gateways on a rough grid, transmitters scattered around.
Scene RandomScene(uint64_t seed, size_t n_gw, size_t n_tx, double extent_m) {
  Scene s;
  RandomStream rng(seed);
  for (size_t g = 0; g < n_gw; ++g) {
    s.gx.push_back(rng.Uniform(0.0, extent_m));
    s.gy.push_back(rng.Uniform(0.0, extent_m));
  }
  for (size_t i = 0; i < n_tx; ++i) {
    s.x.push_back(rng.Uniform(0.0, extent_m));
    s.y.push_back(rng.Uniform(0.0, extent_m));
    s.power.push_back(14.0);
    s.group.push_back(static_cast<uint8_t>(rng.NextBool(0.5) ? 0 : 1));
  }
  return s;
}

void ExpectSameReports(const std::vector<DeliveryReport>& a,
                       const std::vector<DeliveryReport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].outcome, b[i].outcome) << "tx " << i;
    EXPECT_EQ(a[i].gateway_id, b[i].gateway_id) << "tx " << i;
    EXPECT_EQ(a[i].witnesses, b[i].witnesses) << "tx " << i;
    EXPECT_EQ(a[i].captured, b[i].captured) << "tx " << i;
    // Bit-identical, not approximately equal: the whole point of the
    // counter-hash + ordered-accumulation design.
    EXPECT_EQ(a[i].rssi_dbm, b[i].rssi_dbm) << "tx " << i;
    EXPECT_EQ(a[i].snr_db, b[i].snr_db) << "tx " << i;
  }
}

// The tentpole correctness claim: grid bucketing is an optimization, not a
// model change. Against a brute-force all-pairs oracle the reports must be
// bit-identical — across seeds, rounds, and CAD settings.
TEST(Contention, GridMatchesBruteForceOracle) {
  for (const uint64_t seed : {7u, 19u, 123u}) {
    const Scene s = RandomScene(seed, 25, 400, 12000.0);
    ContentionParams grid_p = LoraParams(seed);
    grid_p.use_grid = true;
    ContentionParams oracle_p = grid_p;
    oracle_p.use_grid = false;
    ContentionResolver grid(grid_p, s.gx, s.gy);
    ContentionResolver oracle(oracle_p, s.gx, s.gy);

    std::vector<DeliveryReport> got, want;
    for (uint32_t round = 0; round < 3; ++round) {
      grid.Resolve(s.Columns(), round, got);
      oracle.Resolve(s.Columns(), round, want);
      ExpectSameReports(got, want);
    }
  }
}

// Shard-lane contract: resolving a column subrange with index_base set
// draws exactly what a whole-fleet resolve draws for those transmitters.
// Where the contending sets coincide — here two clusters separated by more
// than the radio range, so no gateway hears both — per-frame fates are
// bit-identical between the full resolve and the subrange resolve.
TEST(Contention, SubrangeWithIndexBaseMatchesFullResolve) {
  Scene a = RandomScene(91, 12, 150, 5000.0);
  const Scene b_raw = RandomScene(92, 12, 150, 5000.0);
  // Cluster B lives 20 km to the right: far beyond range_m (3000) and any
  // shared CAD cell, so A's frames never interfere with B's.
  Scene all = a;
  for (size_t i = 0; i < b_raw.gx.size(); ++i) {
    all.gx.push_back(b_raw.gx[i] + 20000.0);
    all.gy.push_back(b_raw.gy[i]);
  }
  for (size_t i = 0; i < b_raw.x.size(); ++i) {
    all.x.push_back(b_raw.x[i] + 20000.0);
    all.y.push_back(b_raw.y[i]);
    all.power.push_back(b_raw.power[i]);
    all.group.push_back(b_raw.group[i]);
  }

  ContentionParams p = LoraParams(91);
  p.cad = true;  // Exercise the CAD priority draw's index_base too.
  ContentionResolver resolver(p, all.gx, all.gy);

  std::vector<DeliveryReport> full, sub;
  resolver.Resolve(all.Columns(), 0, full);

  const size_t base = a.x.size();
  ContentionResolver::TxColumns tail = all.Columns();
  tail.x += base;
  tail.y += base;
  tail.tx_power_dbm += base;
  tail.group += base;
  tail.count -= base;
  tail.index_base = base;
  resolver.Resolve(tail, 0, sub);

  ASSERT_EQ(sub.size(), full.size() - base);
  for (size_t i = 0; i < sub.size(); ++i) {
    EXPECT_EQ(sub[i].outcome, full[base + i].outcome) << "tx " << i;
    EXPECT_EQ(sub[i].gateway_id, full[base + i].gateway_id) << "tx " << i;
    EXPECT_EQ(sub[i].rssi_dbm, full[base + i].rssi_dbm) << "tx " << i;
    EXPECT_EQ(sub[i].snr_db, full[base + i].snr_db) << "tx " << i;
  }

  // And the base matters: resolving the same tail as if it started at
  // column 0 re-keys every shadowing/PER/CAD draw — fates shift.
  tail.index_base = 0;
  std::vector<DeliveryReport> rekeyed;
  resolver.Resolve(tail, 0, rekeyed);
  size_t diffs = 0;
  for (size_t i = 0; i < sub.size(); ++i) {
    diffs += rekeyed[i].outcome != sub[i].outcome || rekeyed[i].rssi_dbm != sub[i].rssi_dbm;
  }
  EXPECT_GT(diffs, 0u);
}

TEST(Contention, GridMatchesOracleWithCadEnabled) {
  const Scene s = RandomScene(31, 16, 300, 9000.0);
  ContentionParams grid_p = LoraParams(31);
  grid_p.cad = true;
  ContentionParams oracle_p = grid_p;
  oracle_p.use_grid = false;
  ContentionResolver grid(grid_p, s.gx, s.gy);
  ContentionResolver oracle(oracle_p, s.gx, s.gy);
  std::vector<DeliveryReport> got, want;
  grid.Resolve(s.Columns(), 0, got);
  oracle.Resolve(s.Columns(), 0, want);
  ExpectSameReports(got, want);
  size_t deferred = 0;
  for (const auto& r : got) {
    deferred += r.outcome == DeliveryOutcome::kCadBusy ? 1 : 0;
  }
  // 300 transmitters over ~9 cells: most share a cell with an earlier
  // frame and defer.
  EXPECT_GT(deferred, 100u);
  EXPECT_LT(deferred, 300u);
}

TEST(Contention, CadOneWinnerPerBusyCell) {
  // Two co-located same-group transmitters: CAD lets exactly one speak.
  Scene s;
  s.gx = {0.0};
  s.gy = {0.0};
  s.x = {10.0, 12.0};
  s.y = {0.0, 0.0};
  s.power = {14.0, 14.0};
  s.group = {0, 0};
  ContentionParams p = LoraParams(5);
  p.cad = true;
  ContentionResolver resolver(p, s.gx, s.gy);
  std::vector<DeliveryReport> out;
  resolver.Resolve(s.Columns(), 0, out);
  const int busy = (out[0].outcome == DeliveryOutcome::kCadBusy ? 1 : 0) +
                   (out[1].outcome == DeliveryOutcome::kCadBusy ? 1 : 0);
  EXPECT_EQ(busy, 1);
  // Different groups are orthogonal: no deferral.
  s.group = {0, 1};
  resolver.Resolve(s.Columns(), 0, out);
  EXPECT_NE(out[0].outcome, DeliveryOutcome::kCadBusy);
  EXPECT_NE(out[1].outcome, DeliveryOutcome::kCadBusy);
}

TEST(Contention, CaptureStrongFrameSurvivesWeakDoesNot) {
  // One gateway, two co-group transmitters: near (strong) and far (weak
  // but hearable). The strong frame clears the SIR margin and survives;
  // the weak one is buried under interference.
  Scene s;
  s.gx = {0.0};
  s.gy = {0.0};
  s.x = {20.0, 1200.0};
  s.y = {0.0, 0.0};
  s.power = {14.0, 14.0};
  s.group = {0, 0};
  ContentionParams p = LoraParams(9);
  ContentionResolver resolver(p, s.gx, s.gy);
  std::vector<DeliveryReport> out;
  resolver.Resolve(s.Columns(), 0, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].outcome, DeliveryOutcome::kDelivered);
  EXPECT_TRUE(out[0].captured);  // Survived co-channel interference.
  EXPECT_GT(out[0].rssi_dbm, out[1].rssi_dbm);
  EXPECT_EQ(out[1].outcome, DeliveryOutcome::kCollision);
}

TEST(Contention, LoneFrameDeliversWithoutCaptureFlag) {
  Scene s;
  s.gx = {0.0};
  s.gy = {0.0};
  s.x = {50.0};
  s.y = {0.0};
  s.power = {14.0};
  s.group = {0};
  ContentionResolver resolver(LoraParams(3), s.gx, s.gy);
  std::vector<DeliveryReport> out;
  resolver.Resolve(s.Columns(), 0, out);
  EXPECT_EQ(out[0].outcome, DeliveryOutcome::kDelivered);
  EXPECT_FALSE(out[0].captured);
  EXPECT_EQ(out[0].witnesses, 1u);
  EXPECT_EQ(out[0].gateway_id, 0u);
  EXPECT_LT(out[0].rssi_dbm, 0.0);
}

TEST(Contention, OutOfRangeIsNoGateway) {
  Scene s;
  s.gx = {0.0};
  s.gy = {0.0};
  s.x = {50000.0};
  s.y = {0.0};
  s.power = {14.0};
  s.group = {0};
  ContentionResolver resolver(LoraParams(3), s.gx, s.gy);
  std::vector<DeliveryReport> out;
  resolver.Resolve(s.Columns(), 0, out);
  EXPECT_EQ(out[0].outcome, DeliveryOutcome::kNoGatewayInRange);
}

TEST(Contention, RoundsAreIndependentDraws) {
  // Same columns, different rounds: the counter-based hash must re-roll
  // PER draws, so a marginal link's fate varies by round while any single
  // round is reproducible. Low power over a sparse map keeps many links in
  // the PER transition band where the draw actually decides.
  // -6 dBm pulls the PER transition band (sensitivity +/- 3 dB) inside the
  // 3 km range cap; at full power the band sits beyond it and every
  // in-range link is deterministic.
  Scene s = RandomScene(77, 8, 120, 20000.0);
  for (double& p : s.power) {
    p = -6.0;
  }
  ContentionResolver resolver(LoraParams(77), s.gx, s.gy);
  std::vector<DeliveryReport> r0a, r0b, r1;
  resolver.Resolve(s.Columns(), 0, r0a);
  resolver.Resolve(s.Columns(), 0, r0b);
  resolver.Resolve(s.Columns(), 1, r1);
  ExpectSameReports(r0a, r0b);
  size_t diffs = 0;
  for (size_t i = 0; i < r0a.size(); ++i) {
    diffs += r0a[i].outcome != r1[i].outcome ? 1 : 0;
  }
  EXPECT_GT(diffs, 0u);
}

TEST(GatewayCellGrid, NeighborhoodCoversRange) {
  // Every gateway within range of a probe point must be enumerated by the
  // 3x3 neighborhood walk — including points outside the bounding box.
  RandomStream rng(13);
  std::vector<double> gx, gy;
  for (int g = 0; g < 60; ++g) {
    gx.push_back(rng.Uniform(0.0, 10000.0));
    gy.push_back(rng.Uniform(0.0, 10000.0));
  }
  const double range = 1500.0;
  GatewayCellGrid grid(gx, gy, range);
  for (int probe = 0; probe < 200; ++probe) {
    const double px = rng.Uniform(-2000.0, 12000.0);
    const double py = rng.Uniform(-2000.0, 12000.0);
    std::vector<bool> seen(gx.size(), false);
    grid.ForNeighbors(px, py, [&](uint32_t id) { seen[id] = true; });
    for (size_t g = 0; g < gx.size(); ++g) {
      const double dx = px - gx[g];
      const double dy = py - gy[g];
      if (dx * dx + dy * dy <= range * range) {
        EXPECT_TRUE(seen[g]) << "probe " << probe << " missed gateway " << g;
      }
    }
  }
}

}  // namespace
}  // namespace centsim
