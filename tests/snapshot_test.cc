// Snapshot subsystem tests: byte codec hardening, container corruption
// fuzzing, timer-table re-arm semantics, and the restore-parity contract —
// a run resumed from a checkpoint (including in a freshly forked process)
// must reproduce the straight-through run bit for bit.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/district.h"
#include "src/core/experiment_api.h"
#include "src/core/theseus.h"
#include "src/sim/ensemble.h"
#include "src/sim/metrics.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/snapshot/branch.h"
#include "src/snapshot/bytes.h"
#include "src/snapshot/codec.h"
#include "src/snapshot/snapshot.h"
#include "src/snapshot/timer_table.h"
#include "src/telemetry/atomic_file.h"
#include "src/telemetry/run_manifest.h"
#include "src/telemetry/run_status.h"

namespace centsim {
namespace {

namespace fs = std::filesystem;

// Unique scratch directory per test, removed on teardown.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name) : path_(testing::TempDir() + name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// --- Byte codec ------------------------------------------------------------

TEST(BytesTest, RoundTripAllTypes) {
  ByteWriter w;
  w.U8(0xAB);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFULL);
  w.I64(-42);
  w.F64(-0.0);  // Signed zero must survive.
  w.Str("hello");
  w.F64Vec({1.5, -2.25});
  w.U64Vec({7, 8, 9});

  ByteReader r(w.bytes().data(), w.size());
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.I64(), -42);
  const double z = r.F64();
  EXPECT_EQ(z, 0.0);
  EXPECT_TRUE(std::signbit(z));
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.F64Vec(), (std::vector<double>{1.5, -2.25}));
  EXPECT_EQ(r.U64Vec(), (std::vector<uint64_t>{7, 8, 9}));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BytesTest, TruncatedReadFailsSticky) {
  ByteWriter w;
  w.U32(7);
  ByteReader r(w.bytes().data(), w.size());
  (void)r.U64();  // 8 bytes wanted, 4 present.
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U32(), 0u);  // Sticky: nothing reads after a failure.
}

TEST(BytesTest, CorruptVectorLengthClampedBeforeAllocation) {
  // A declared element count far beyond the remaining bytes must fail
  // cleanly instead of sizing an allocation.
  ByteWriter w;
  w.U64(UINT64_C(1) << 60);
  w.F64(1.0);
  ByteReader r(w.bytes().data(), w.size());
  EXPECT_TRUE(r.F64Vec().empty());
  EXPECT_FALSE(r.ok());
}

// --- RNG state -------------------------------------------------------------

TEST(RngSnapshotTest, SaveRestoreContinuesSequenceExactly) {
  RandomStream stream = RandomStream(987654321).Derive(17);
  for (int i = 0; i < 100; ++i) {
    (void)stream.NextDouble();
  }
  const RandomStream::State state = stream.SaveState();
  std::vector<double> expected;
  for (int i = 0; i < 50; ++i) {
    expected.push_back(stream.NextDouble());
  }

  RandomStream resumed = RandomStream::FromState(state);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(resumed.NextDouble(), expected[i]) << "draw " << i;
  }
}

TEST(RngSnapshotTest, CodecRoundTripPreservesDerivation) {
  RandomStream stream = RandomStream(11).Derive(3);
  (void)stream.NextUint64();
  ByteWriter w;
  EncodeRngState(stream.SaveState(), w);
  ByteReader r(w.bytes().data(), w.size());
  RandomStream decoded = RandomStream::FromState(DecodeRngState(r));
  ASSERT_TRUE(r.ok());
  // Same future draws AND same derived child streams.
  EXPECT_EQ(decoded.NextUint64(), stream.NextUint64());
  RandomStream a = stream.Derive(99);
  RandomStream b = decoded.Derive(99);
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

// --- Stats / metrics codecs -------------------------------------------------

TEST(StatsCodecTest, SummaryStatsRoundTripBitExact) {
  SummaryStats stats;
  for (double v : {3.0, -7.5, 0.25, 1e-9, 4e12}) {
    stats.Add(v);
  }
  ByteWriter w;
  EncodeSummaryStats(stats, w);
  ByteReader r(w.bytes().data(), w.size());
  const SummaryStats back = DecodeSummaryStats(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(back.count(), stats.count());
  EXPECT_EQ(back.mean(), stats.mean());
  EXPECT_EQ(back.m2(), stats.m2());
  EXPECT_EQ(back.raw_min(), stats.raw_min());
  EXPECT_EQ(back.raw_max(), stats.raw_max());
  // Welford must CONTINUE identically: add the same value to both.
  SummaryStats expect_cont = stats;
  expect_cont.Add(2.5);
  SummaryStats back_cont = back;
  back_cont.Add(2.5);
  EXPECT_EQ(back_cont.m2(), expect_cont.m2());
}

TEST(StatsCodecTest, EmptySummaryStatsSentinelsSurvive) {
  SummaryStats empty;
  ByteWriter w;
  EncodeSummaryStats(empty, w);
  ByteReader r(w.bytes().data(), w.size());
  SummaryStats back = DecodeSummaryStats(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(back.count(), 0u);
  // The +/-inf min/max sentinels round-tripped: the first Add behaves as
  // on a genuinely fresh accumulator.
  back.Add(5.0);
  EXPECT_EQ(back.min(), 5.0);
  EXPECT_EQ(back.max(), 5.0);
}

TEST(MetricsCodecTest, OverlayRestoresEveryInstrumentExactly) {
  MetricsRegistry saved;
  saved.GetCounter("events", {{"kind", "failure"}})->Increment(12345.5);
  saved.GetGauge("alive")->Set(-3.25);
  HistogramMetric* h = saved.GetHistogram("latency", {}, 0.0, 10.0, 20);
  for (double v : {0.5, 2.5, 9.99, 3.14}) {
    h->Observe(v);
  }
  ByteWriter w;
  EncodeMetrics(saved, w);

  // The restoring driver re-creates instruments (with their bin shapes)
  // before overlaying, as the district driver does via its constructor.
  MetricsRegistry restored;
  restored.GetCounter("events", {{"kind", "failure"}});
  restored.GetGauge("alive");
  restored.GetHistogram("latency", {}, 0.0, 10.0, 20);
  ByteReader r(w.bytes().data(), w.size());
  EXPECT_EQ(DecodeMetricsOverlay(r, restored), 0u);

  // Byte-level equality of re-encoded contents == exact restore.
  ByteWriter w2;
  EncodeMetrics(restored, w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
}

TEST(MetricsCodecTest, BinShapeMismatchCountedNotFatal) {
  MetricsRegistry saved;
  HistogramMetric* h = saved.GetHistogram("latency", {}, 0.0, 10.0, 20);
  h->Observe(1.0);
  ByteWriter w;
  EncodeMetrics(saved, w);

  MetricsRegistry restored;
  restored.GetHistogram("latency", {}, 0.0, 10.0, 5);  // Different bin count.
  ByteReader r(w.bytes().data(), w.size());
  EXPECT_EQ(DecodeMetricsOverlay(r, restored), 1u);  // Mismatch counted.
  // Summary stats still restored.
  EXPECT_EQ(restored.FindHistogram("latency")->count(), 1u);
}

TEST(MetricsCodecTest, MalformedStreamYieldsSizeMax) {
  ByteWriter w;
  w.U64(1u << 20);  // Claims 2^20 counters in a few bytes.
  ByteReader r(w.bytes().data(), w.size());
  MetricsRegistry registry;
  EXPECT_EQ(DecodeMetricsOverlay(r, registry), SIZE_MAX);
}

// --- Atomic file writes -----------------------------------------------------

TEST(AtomicWriteBytesTest, WritesAndAtomicallyReplaces) {
  ScratchDir dir("snapshot_atomic_test");
  const std::string path = dir.path() + "/blob.bin";
  const std::vector<uint8_t> first = {1, 2, 3};
  const std::vector<uint8_t> second = {9, 8, 7, 6};
  ASSERT_TRUE(AtomicWriteFileBytes(first.data(), first.size(), path, /*durable=*/true));
  ASSERT_TRUE(AtomicWriteFileBytes(second.data(), second.size(), path, /*durable=*/true));
  std::ifstream in(path, std::ios::binary);
  std::vector<uint8_t> got((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  EXPECT_EQ(got, second);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(AtomicWriteBytesTest, FailurePathLeavesTargetUntouched) {
  ScratchDir dir("snapshot_atomic_fail_test");
  const std::string path = dir.path() + "/keep.bin";
  const std::vector<uint8_t> original = {42};
  ASSERT_TRUE(AtomicWriteFileBytes(original.data(), original.size(), path, true));

  // Writing into a nonexistent directory fails with a diagnostic...
  std::string error;
  const std::vector<uint8_t> next = {1, 2};
  EXPECT_FALSE(AtomicWriteFileBytes(next.data(), next.size(),
                                    dir.path() + "/no_such_dir/x.bin", true, &error));
  EXPECT_FALSE(error.empty());

  // ...and the existing target of a successful earlier write is untouched.
  std::ifstream in(path, std::ios::binary);
  std::vector<uint8_t> got((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  EXPECT_EQ(got, original);
}

// --- Snapshot container -----------------------------------------------------

SnapshotMeta TestMeta() {
  SnapshotMeta meta;
  meta.experiment = "unit";
  meta.library_version = kCentsimVersion;
  meta.structural_digest = "0123456789abcdef";
  meta.barrier_us = 123456789;
  meta.seed = 42;
  return meta;
}

std::vector<uint8_t> FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

TEST(SnapshotContainerTest, WriteReadRoundTrip) {
  ScratchDir dir("snapshot_container_test");
  const std::string path = dir.path() + "/a.snap";
  SnapshotWriter writer(TestMeta());
  ByteWriter payload;
  payload.U64(777);
  payload.Str("chunky");
  writer.Add(SnapshotTag('t', 'e', 's', 't'), payload);
  std::string error;
  ASSERT_GT(writer.Write(path, &error), 0u) << error;

  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  EXPECT_EQ(reader.meta().experiment, "unit");
  EXPECT_EQ(reader.meta().structural_digest, "0123456789abcdef");
  EXPECT_EQ(reader.meta().barrier_us, 123456789);
  EXPECT_EQ(reader.meta().seed, 42u);
  ASSERT_TRUE(reader.HasChunk(SnapshotTag('t', 'e', 's', 't')));
  ByteReader chunk = reader.Chunk(SnapshotTag('t', 'e', 's', 't'));
  EXPECT_EQ(chunk.U64(), 777u);
  EXPECT_EQ(chunk.Str(), "chunky");
  EXPECT_TRUE(chunk.ok());
  EXPECT_FALSE(reader.HasChunk(SnapshotTag('n', 'o', 'p', 'e')));
  ByteReader missing = reader.Chunk(SnapshotTag('n', 'o', 'p', 'e'));
  (void)missing.U8();
  EXPECT_FALSE(missing.ok());  // Missing chunk reads fail, never crash.
}

TEST(SnapshotContainerTest, RejectsEveryPossibleTruncation) {
  ScratchDir dir("snapshot_trunc_test");
  const std::string path = dir.path() + "/t.snap";
  SnapshotWriter writer(TestMeta());
  ByteWriter payload;
  payload.U64(1);
  writer.Add(SnapshotTag('d', 'a', 't', 'a'), payload);
  ASSERT_GT(writer.Write(path), 0u);
  const std::vector<uint8_t> image = FileBytes(path);
  ASSERT_GT(image.size(), 0u);

  for (size_t len = 0; len < image.size(); ++len) {
    SnapshotReader reader;
    std::string error;
    EXPECT_FALSE(reader.OpenBytes(
        std::vector<uint8_t>(image.begin(), image.begin() + len), &error))
        << "truncation to " << len << " bytes accepted";
    EXPECT_FALSE(error.empty());
  }
}

TEST(SnapshotContainerTest, RejectsEverySingleBitFlip) {
  // A meta-only snapshot makes every byte load-bearing (magic, version,
  // count, the meta chunk's tag/reserved/len/checksum, payload), so any
  // single-bit corruption anywhere in the file must be rejected.
  ScratchDir dir("snapshot_bitflip_test");
  const std::string path = dir.path() + "/b.snap";
  SnapshotWriter writer(TestMeta());
  ASSERT_GT(writer.Write(path), 0u);
  const std::vector<uint8_t> image = FileBytes(path);

  for (size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> flipped = image;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      SnapshotReader reader;
      EXPECT_FALSE(reader.OpenBytes(std::move(flipped)))
          << "bit " << bit << " of byte " << byte << " flipped and accepted";
    }
  }
}

TEST(SnapshotContainerTest, RejectsOversizedDeclaredLength) {
  ScratchDir dir("snapshot_len_test");
  const std::string path = dir.path() + "/l.snap";
  SnapshotWriter writer(TestMeta());
  ASSERT_GT(writer.Write(path), 0u);
  std::vector<uint8_t> image = FileBytes(path);
  // First chunk header starts at byte 16; its length field is at +8 and the
  // reader must bounds-check it before any allocation or payload access.
  image[16 + 8 + 7] = 0x7F;  // Declared length now ~2^63.
  SnapshotReader reader;
  std::string error;
  EXPECT_FALSE(reader.OpenBytes(std::move(image), &error));
  EXPECT_NE(error.find("declares"), std::string::npos) << error;
}

TEST(SnapshotContainerTest, RejectsVersionMismatch) {
  ScratchDir dir("snapshot_ver_test");
  const std::string path = dir.path() + "/v.snap";
  SnapshotWriter writer(TestMeta());
  ASSERT_GT(writer.Write(path), 0u);
  std::vector<uint8_t> image = FileBytes(path);
  image[8] = 0xEE;  // Version field (bytes 8..11).
  SnapshotReader reader;
  std::string error;
  EXPECT_FALSE(reader.OpenBytes(std::move(image), &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(SnapshotContainerTest, RejectsDuplicateTagsAndTrailingBytes) {
  ScratchDir dir("snapshot_dup_test");
  const std::string path = dir.path() + "/d.snap";
  SnapshotWriter writer(TestMeta());
  ByteWriter payload;
  payload.U8(1);
  writer.Add(SnapshotTag('d', 'u', 'p', 'e'), payload);
  writer.Add(SnapshotTag('d', 'u', 'p', 'e'), payload);  // Writer doesn't police.
  ASSERT_GT(writer.Write(path), 0u);
  SnapshotReader reader;
  std::string error;
  EXPECT_FALSE(reader.Open(path, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;

  // Trailing garbage after the last declared chunk is corruption too.
  SnapshotWriter clean(TestMeta());
  ASSERT_GT(clean.Write(path), 0u);
  std::vector<uint8_t> image = FileBytes(path);
  image.push_back(0x00);
  EXPECT_FALSE(reader.OpenBytes(std::move(image), &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(SnapshotContainerTest, GarbageAndEmptyFilesRejected) {
  SnapshotReader reader;
  std::string error;
  EXPECT_FALSE(reader.OpenBytes({}, &error));
  EXPECT_FALSE(reader.Open("/no/such/file.snap", &error));
  std::vector<uint8_t> garbage(300, 0x5A);
  EXPECT_FALSE(reader.OpenBytes(std::move(garbage), &error));
}

TEST(LatestMarkerTest, FindsMarkerThenFallsBackToScan) {
  ScratchDir dir("snapshot_latest_test");
  EXPECT_EQ(FindLatestValidSnapshot(dir.path()), "");  // Empty dir: nothing.

  // Two checkpoints; the marker names the newer one.
  SnapshotMeta meta1 = TestMeta();
  meta1.barrier_us = 1000;
  const std::string p1 = dir.path() + "/" + CheckpointFileName(1000);
  ASSERT_GT(SnapshotWriter(meta1).Write(p1), 0u);
  SnapshotMeta meta2 = TestMeta();
  meta2.barrier_us = 2000;
  const std::string p2 = dir.path() + "/" + CheckpointFileName(2000);
  ASSERT_GT(SnapshotWriter(meta2).Write(p2), 0u);
  ASSERT_TRUE(WriteLatestMarker(dir.path(), p2, 2000));

  SnapshotMeta found;
  EXPECT_EQ(FindLatestValidSnapshot(dir.path(), &found), p2);
  EXPECT_EQ(found.barrier_us, 2000);

  // Corrupt the marker's target: the scan must recover the older valid one.
  std::ofstream(p2, std::ios::binary | std::ios::trunc) << "junk";
  EXPECT_EQ(FindLatestValidSnapshot(dir.path(), &found), p1);
  EXPECT_EQ(found.barrier_us, 1000);
}

// --- Timer table ------------------------------------------------------------

TEST(TimerTableTest, SaveSeesOnlyPendingSortedByAtSeq) {
  Simulation sim(1);
  TimerTable timers(sim.scheduler());
  int fired = 0;
  timers.Schedule(SimTime::Hours(3), /*tag=*/7, 30, 0, 0.5, [&] { ++fired; });
  timers.Schedule(SimTime::Hours(1), /*tag=*/7, 10, 0, 0.0, [&] { ++fired; });
  timers.Schedule(SimTime::Hours(2), /*tag=*/8, 20, 0, 0.0, [&] { ++fired; });
  EXPECT_EQ(timers.live_count(), 3u);

  sim.RunUntil(SimTime::Hours(1));  // First timer fires and releases itself.
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(timers.live_count(), 2u);

  const std::vector<TimerRecord> saved = timers.Save();
  ASSERT_EQ(saved.size(), 2u);
  EXPECT_EQ(saved[0].a, 20u);  // Sorted by fire time.
  EXPECT_EQ(saved[1].a, 30u);
  EXPECT_EQ(saved[1].x, 0.5);
}

TEST(TimerTableTest, CancelReleasesRecord) {
  Simulation sim(1);
  TimerTable timers(sim.scheduler());
  bool fired = false;
  const EventId id = timers.Schedule(SimTime::Hours(1), 1, 0, 0, 0.0, [&] { fired = true; });
  EXPECT_TRUE(timers.Cancel(id));
  EXPECT_EQ(timers.live_count(), 0u);
  EXPECT_FALSE(timers.Cancel(id));  // Already gone.
  sim.RunUntil(SimTime::Hours(2));
  EXPECT_FALSE(fired);
  EXPECT_TRUE(timers.Save().empty());
}

// Untracked tables (runs that will never save a checkpoint) pass closures
// straight through: timers fire and cancel identically, but no records are
// kept — the zero-overhead mode the district/century drivers use when
// checkpoint_every is 0.
TEST(TimerTableTest, UntrackedTableFiresAndCancelsWithoutRecords) {
  Simulation sim(1);
  TimerTable timers(sim.scheduler(), /*track=*/false);
  EXPECT_FALSE(timers.tracking());
  int fired = 0;
  timers.Schedule(SimTime::Hours(1), 7, 1, 0, 0.0, [&] { ++fired; });
  const EventId id = timers.Schedule(SimTime::Hours(2), 7, 2, 0, 0.0, [&] { ++fired; });
  EXPECT_EQ(timers.live_count(), 0u);  // No bookkeeping.
  EXPECT_TRUE(timers.Save().empty());

  EXPECT_TRUE(timers.Cancel(id));
  EXPECT_FALSE(timers.Cancel(id));  // Already cancelled at the scheduler.
  sim.RunUntil(SimTime::Hours(3));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(timers.Save().empty());
}

TEST(TimerTableTest, RestoreReArmsThroughRegisteredTags) {
  Simulation sim(1);
  TimerTable timers(sim.scheduler());
  std::vector<uint64_t> fired_operands;
  timers.Register(5, [&](const TimerRecord& r) {
    timers.Schedule(SimTime::Micros(r.at_us), r.tag, r.a, r.b, r.x,
                    [&fired_operands, a = r.a] { fired_operands.push_back(a); });
  });

  std::vector<TimerRecord> records;
  TimerRecord rec;
  rec.tag = 5;
  rec.at_us = SimTime::Hours(2).micros();
  rec.seq = 11;
  rec.a = 2;
  records.push_back(rec);
  rec.at_us = SimTime::Hours(1).micros();
  rec.seq = 4;
  rec.a = 1;
  records.push_back(rec);

  EXPECT_EQ(timers.Restore(records), 0u);
  EXPECT_EQ(timers.live_count(), 2u);
  sim.RunUntil(SimTime::Hours(3));
  EXPECT_EQ(fired_operands, (std::vector<uint64_t>{1, 2}));

  // Unregistered tags are counted, not silently dropped.
  rec.tag = 99;
  EXPECT_EQ(timers.Restore({rec}), 1u);
}

TEST(TimerTableTest, CodecRoundTripAndCorruptCountClamped) {
  std::vector<TimerRecord> records(3);
  records[0] = {1, 1000, 5, 10, 20, 0.5};
  records[1] = {2, 2000, 6, 11, 21, -1.5};
  records[2] = {3, 3000, 7, 12, 22, 0.0};
  ByteWriter w;
  TimerTable::Encode(records, w);
  ByteReader r(w.bytes().data(), w.size());
  const std::vector<TimerRecord> back = TimerTable::Decode(r);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[1].tag, 2u);
  EXPECT_EQ(back[1].at_us, 2000);
  EXPECT_EQ(back[1].x, -1.5);

  ByteWriter bad;
  bad.U64(UINT64_C(1) << 50);  // Claims 2^50 records.
  ByteReader br(bad.bytes().data(), bad.size());
  EXPECT_TRUE(TimerTable::Decode(br).empty());
  EXPECT_FALSE(br.ok());
}

// --- Snapshot plan validation ------------------------------------------------

TEST(SnapshotPlanTest, ValidationCatchesInconsistentPlans) {
  DistrictConfig cfg;
  cfg.snapshot.checkpoint_every = SimTime::Years(1);  // No directory.
  EXPECT_FALSE(cfg.Validate().empty());

  CenturyConfig century;
  century.snapshot.resume_latest = true;  // No directory to scan.
  EXPECT_FALSE(century.Validate().empty());

  century.snapshot.checkpoint_dir = "/tmp/x";
  century.snapshot.resume_from = "/tmp/x/a.snap";  // Both resume sources.
  EXPECT_FALSE(century.Validate().empty());
}

// --- Restore parity: district ------------------------------------------------

// The same report digests the fleet golden pins use (tests/core_fleet_test.cc);
// checkpoint accounting fields are deliberately excluded.
std::string DistrictDigest(const DistrictReport& r) {
  std::ostringstream out;
  out << std::hexfloat;
  out << r.gateway_count << '|' << r.initial_coverage << '|' << r.mean_device_availability
      << '|' << r.mean_service_availability << '|' << r.min_yearly_service << '|'
      << r.device_failures << '|' << r.device_replacements << '|' << r.gateway_failures
      << '|' << r.gateway_repairs;
  for (double v : r.yearly_service) {
    out << '|' << v;
  }
  return ConfigDigest(out.str());
}

std::string CenturyDigest(const CenturyReport& r) {
  std::ostringstream out;
  out << std::hexfloat;
  out << r.mean_availability << '|' << r.min_yearly_availability << '|' << r.total_failures
      << '|' << r.total_replacements << '|' << r.proactive_replacements << '|'
      << r.units_deployed << '|' << r.max_unit_generations;
  for (double v : r.yearly_availability) {
    out << '|' << v;
  }
  return ConfigDigest(out.str());
}

// Golden pins from tests/core_fleet_test.cc (seed-scheduler parity digests).
constexpr const char* kGoldenDistrictDigest = "838a9e16cbe806c2";
constexpr const char* kGoldenCenturyDigest = "716acb8421dbc328";

DistrictConfig GoldenDistrictConfig() {
  DistrictConfig cfg;
  cfg.seed = 20260806;
  cfg.device_count = 1500;
  cfg.area_km2 = 9.0;
  cfg.zone_grid = 3;
  cfg.horizon = SimTime::Years(50);
  return cfg;
}

TEST(DistrictSnapshotTest, SaveAtYear25RestoreInFreshProcessMatchesGolden) {
  ScratchDir dir("district_snapshot_parity");

  // Leg 1: the golden run WITH checkpointing enabled. The barrier drains
  // must not perturb the simulation: same digest as the straight run.
  DistrictConfig save_cfg = GoldenDistrictConfig();
  save_cfg.snapshot.checkpoint_every = SimTime::Years(25);
  save_cfg.snapshot.checkpoint_dir = dir.path();
  const DistrictReport saved_run = RunDistrictScenario(save_cfg);
  EXPECT_EQ(DistrictDigest(saved_run), kGoldenDistrictDigest);
  EXPECT_EQ(saved_run.checkpoints_written, 1u);  // Year 25 only (50 is the horizon).
  EXPECT_GT(saved_run.last_checkpoint_bytes, 0u);
  ASSERT_FALSE(saved_run.last_checkpoint_path.empty());
  SnapshotMeta meta;
  ASSERT_TRUE(ProbeSnapshot(saved_run.last_checkpoint_path, &meta));
  EXPECT_EQ(meta.experiment, "district");
  EXPECT_EQ(meta.barrier_us, SimTime::Years(25).micros());

  // Leg 2: restore in a FRESH PROCESS (fork) — nothing incidental from the
  // saving process (allocator layout, static state) can leak into parity.
  int pipe_fds[2];
  ASSERT_EQ(pipe(pipe_fds), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    close(pipe_fds[0]);
    DistrictConfig resume_cfg = GoldenDistrictConfig();
    resume_cfg.snapshot.resume_from = saved_run.last_checkpoint_path;
    const DistrictReport restored = RunDistrictScenario(resume_cfg);
    const std::string digest = DistrictDigest(restored);
    const char ok = restored.restore_seconds > 0.0 ? '1' : '0';
    (void)!write(pipe_fds[1], digest.data(), digest.size());
    (void)!write(pipe_fds[1], &ok, 1);
    close(pipe_fds[1]);
    _exit(0);
  }
  close(pipe_fds[1]);
  char buf[64] = {0};
  size_t got = 0;
  ssize_t n;
  while ((n = read(pipe_fds[0], buf + got, sizeof(buf) - 1 - got)) > 0) {
    got += static_cast<size_t>(n);
  }
  close(pipe_fds[0]);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "restore child died";
  ASSERT_EQ(WEXITSTATUS(status), 0);
  ASSERT_EQ(got, 17u) << "child wrote: " << std::string(buf, got);
  EXPECT_EQ(std::string(buf, 16), kGoldenDistrictDigest);
  EXPECT_EQ(buf[16], '1');  // restore_seconds was populated.
}

TEST(DistrictSnapshotTest, ResumeLatestRecoversAndStructuralMismatchRefused) {
  ScratchDir dir("district_resume_latest");
  DistrictConfig cfg;
  cfg.seed = 4;
  cfg.device_count = 400;
  cfg.area_km2 = 4.0;
  cfg.zone_grid = 2;
  cfg.horizon = SimTime::Years(20);
  cfg.batch_cycle = SimTime::Years(6);

  // Straight run for the expected digest.
  const std::string straight = DistrictDigest(RunDistrictScenario(cfg));

  // Crash-recovery semantics: with resume_latest set and no checkpoint on
  // disk, the run starts fresh (and writes checkpoints); re-running the
  // identical command then resumes from the last checkpoint. Both attempts
  // produce the straight-run digest.
  DistrictConfig recover = cfg;
  recover.snapshot.checkpoint_every = SimTime::Years(8);
  recover.snapshot.checkpoint_dir = dir.path();
  recover.snapshot.resume_latest = true;
  const DistrictReport first = RunDistrictScenario(recover);
  EXPECT_EQ(DistrictDigest(first), straight);
  EXPECT_EQ(first.restore_seconds, 0.0);  // Nothing to resume from yet.
  EXPECT_EQ(first.checkpoints_written, 2u);  // Years 8 and 16.

  const DistrictReport second = RunDistrictScenario(recover);
  EXPECT_EQ(DistrictDigest(second), straight);
  EXPECT_GT(second.restore_seconds, 0.0);  // Resumed from year 16.

  // A structurally different config must refuse the snapshot (fork: the
  // refusal is CheckConfigOrDie, which aborts).
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    DistrictConfig wrong = recover;
    wrong.device_count = 401;
    // Aborts with a structural-digest diagnostic; reaching _exit(7) means
    // the mismatched snapshot was wrongly accepted.
    (void)RunDistrictScenario(wrong);
    _exit(7);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFSIGNALED(status) || (WIFEXITED(status) && WEXITSTATUS(status) != 0))
      << "structurally mismatched snapshot was accepted";
}

// --- Restore parity: century -------------------------------------------------

TEST(CenturySnapshotTest, SaveAtYear50RestoreMatchesGolden) {
  ScratchDir dir("century_snapshot_parity");
  CenturyConfig cfg;
  cfg.seed = 20260806;
  cfg.fleet_size = 800;
  cfg.horizon = SimTime::Years(100);
  cfg.proactive_refresh_age = SimTime::Years(25);
  cfg.life_improvement_per_decade = 1.05;
  cfg.snapshot.checkpoint_every = SimTime::Years(50);
  cfg.snapshot.checkpoint_dir = dir.path();

  const CenturyReport saved_run = RunCenturyScenario(cfg);
  EXPECT_EQ(CenturyDigest(saved_run), kGoldenCenturyDigest);
  EXPECT_EQ(saved_run.checkpoints_written, 1u);
  ASSERT_FALSE(saved_run.last_checkpoint_path.empty());

  CenturyConfig resume_cfg = cfg;
  resume_cfg.snapshot = {};
  resume_cfg.snapshot.resume_from = saved_run.last_checkpoint_path;
  const CenturyReport restored = RunCenturyScenario(resume_cfg);
  EXPECT_EQ(CenturyDigest(restored), kGoldenCenturyDigest);
  EXPECT_GT(restored.restore_seconds, 0.0);
}

// --- Branching what-if runs --------------------------------------------------

TEST(BranchRunnerTest, BranchesBitIdenticalAtAnyThreadCountWithoutReplay) {
  ScratchDir dir("branch_what_if");
  DistrictConfig base;
  base.seed = 4;
  base.device_count = 800;
  base.area_km2 = 9.0;
  base.horizon = SimTime::Years(40);
  base.batch_cycle = SimTime::Years(6);

  const std::string straight = DistrictDigest(RunDistrictScenario(base));

  DistrictConfig save_cfg = base;
  save_cfg.snapshot.checkpoint_every = SimTime::Years(20);
  save_cfg.snapshot.checkpoint_dir = dir.path();
  const DistrictReport parent = RunDistrictScenario(save_cfg);
  ASSERT_FALSE(parent.last_checkpoint_path.empty());

  using Runner = BranchRunner<DistrictExperiment>;
  std::vector<Runner::Branch> branches;
  branches.push_back({"baseline", base});
  DistrictConfig fast = base;
  fast.gateway_repair_delay = SimTime::Days(3);
  branches.push_back({"fast_repairs", fast});
  DistrictConfig slow = base;
  slow.gateway_repair_delay = SimTime::Days(120);
  branches.push_back({"slow_repairs", slow});

  BranchOptions serial;
  serial.threads = 1;
  const auto runs1 = Runner::Run(parent.last_checkpoint_path, branches, serial);
  BranchOptions wide;
  wide.threads = 4;
  const auto runs4 = Runner::Run(parent.last_checkpoint_path, branches, wide);
  ASSERT_EQ(runs1.size(), 3u);
  ASSERT_EQ(runs4.size(), 3u);

  for (size_t i = 0; i < runs1.size(); ++i) {
    EXPECT_EQ(runs1[i].name, branches[i].name);
    // Thread-count independence: bit-identical reports.
    EXPECT_EQ(DistrictDigest(runs1[i].report), DistrictDigest(runs4[i].report));
    // The cumulative executed counter is restored from the snapshot, so a
    // branch that simulates only the remaining years lands exactly on the
    // straight run's total; restoring AND replaying history would overshoot
    // it, and restore_seconds > 0 rules out a silent fresh replay.
    EXPECT_EQ(runs1[0].report.events_executed, parent.events_executed);
    EXPECT_GT(runs1[i].report.restore_seconds, 0.0);
  }

  // Common random numbers: the identity branch IS the parent run.
  EXPECT_EQ(DistrictDigest(runs1[0].report), straight);
  // Policy deltas diverge only through their causal effect.
  EXPECT_NE(DistrictDigest(runs1[1].report), straight);
  EXPECT_GT(runs1[1].report.mean_service_availability,
            runs1[2].report.mean_service_availability);

  // Reseeded branches draw a different future even with identical policy.
  BranchOptions reseed;
  reseed.threads = 2;
  reseed.reseed = true;
  reseed.salt_seed = 99;
  const auto decorrelated =
      Runner::Run(parent.last_checkpoint_path, {branches[0]}, reseed);
  ASSERT_EQ(decorrelated.size(), 1u);
  EXPECT_NE(decorrelated[0].branch_salt, 0u);
  EXPECT_NE(DistrictDigest(decorrelated[0].report), straight);
}

// --- Ensemble checkpoint/resume ----------------------------------------------

TEST(EnsembleSnapshotTest, ResumedEnsembleReproducesFreshRun) {
  ScratchDir dir("ensemble_resume");
  DistrictConfig base;
  base.seed = 21;
  base.device_count = 400;
  base.area_km2 = 4.0;
  base.zone_grid = 2;
  base.horizon = SimTime::Years(20);
  base.batch_cycle = SimTime::Years(6);

  EnsembleOptions plain;
  plain.replicas = 2;
  plain.threads = 2;
  plain.collect_metrics = true;
  const auto fresh = EnsembleRunner<DistrictExperiment>::Run(base, plain);

  EnsembleOptions checkpointed = plain;
  checkpointed.checkpoint_every = SimTime::Years(8);
  checkpointed.checkpoint_dir = dir.path() + "/ckpt";
  const auto first = EnsembleRunner<DistrictExperiment>::Run(base, checkpointed);

  // Re-running with resume picks up each replica's year-16 checkpoint and
  // simulates only the remaining years — to identical reports and metrics.
  EnsembleOptions resume = checkpointed;
  resume.resume_from_checkpoint = true;
  const auto resumed = EnsembleRunner<DistrictExperiment>::Run(base, resume);

  ASSERT_EQ(resumed.replicas.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(DistrictDigest(resumed.replicas[i].report),
              DistrictDigest(fresh.replicas[i].report));
    EXPECT_GT(resumed.replicas[i].restore_seconds, 0.0);
    // Cumulative counter continuity (see BranchRunnerTest): restored tail
    // lands exactly on the fresh run's total.
    EXPECT_EQ(resumed.replicas[i].events_executed, fresh.replicas[i].events_executed);
    EXPECT_EQ(first.manifest.replica_runs[i].restore_seconds, 0.0);
    EXPECT_GT(resumed.manifest.replica_runs[i].restore_seconds, 0.0);
  }
  // Merged metrics restored exactly: byte-identical re-encoding.
  ASSERT_NE(fresh.metrics, nullptr);
  ASSERT_NE(resumed.metrics, nullptr);
  ByteWriter fresh_bytes, resumed_bytes;
  EncodeMetrics(*fresh.metrics, fresh_bytes);
  EncodeMetrics(*resumed.metrics, resumed_bytes);
  EXPECT_EQ(fresh_bytes.bytes(), resumed_bytes.bytes());
  // The manifest records restore_seconds for custodians.
  EXPECT_NE(resumed.manifest.ToJson().find("restore_seconds"), std::string::npos);
}

// --- Wedged-replica recovery note ---------------------------------------------

TEST(RunStatusRecoveryTest, StallDumpNamesLatestCheckpoint) {
  ScratchDir status("wedged_status");
  ScratchDir ckpt("wedged_ckpt");

  // A real durable checkpoint + marker, as a checkpointing replica leaves.
  SnapshotMeta meta = TestMeta();
  meta.barrier_us = SimTime::Years(3).micros();
  const std::string snap_path = ckpt.path() + "/" + CheckpointFileName(meta.barrier_us);
  ASSERT_GT(SnapshotWriter(meta).Write(snap_path), 0u);
  ASSERT_TRUE(WriteLatestMarker(ckpt.path(), snap_path, meta.barrier_us));

  ProgressCell cell;
  cell.Publish(1000, 1100, 50, 5, 7);  // Publishes once, then wedges.
  RunStatusMonitor::Options options;
  options.status_dir = status.path();
  options.heartbeat_seconds = 0.02;
  options.stall_deadline_seconds = 0.05;
  options.deep_stall_snapshot = false;
  options.run_name = "wedged";
  options.experiment = "unit";
  options.horizon_us = SimTime::Years(10).micros();
  RunStatusMonitor::ReplicaHooks hooks;
  hooks.cell = &cell;
  hooks.seed = 9;
  hooks.checkpoint_dir = ckpt.path();
  RunStatusMonitor monitor(options, {hooks});
  monitor.Start();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (monitor.stalled_count() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  monitor.Stop();
  ASSERT_TRUE(monitor.WasStalled(0));

  // The recovery note names the checkpoint an operator resumes from.
  const std::string note_path = status.path() + "/replica_0_recovery.json";
  ASSERT_TRUE(fs::exists(note_path));
  std::ifstream in(note_path);
  std::string note((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(note.find(snap_path), std::string::npos) << note;
  EXPECT_NE(note.find("resume_hint"), std::string::npos);

  // The status row carries it too.
  const RunStatus built = monitor.BuildStatus();
  ASSERT_EQ(built.replicas.size(), 1u);
  EXPECT_EQ(built.replicas[0].latest_checkpoint, snap_path);
}

}  // namespace
}  // namespace centsim
