#include "src/security/signing.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

SipHashKey TestSecret() {
  SipHashKey secret{};
  for (int i = 0; i < 16; ++i) {
    secret[i] = static_cast<uint8_t>(0xA0 + i);
  }
  return secret;
}

TEST(SigningTest, SignVerifyRoundTrip) {
  const SipHashKey key = DeriveDeviceKey(TestSecret(), 42);
  const auto report = SignReport(key, 42, 1, {1, 2, 3, 4});
  EXPECT_TRUE(VerifyTag(key, report));
}

TEST(SigningTest, TamperedPayloadRejected) {
  const SipHashKey key = DeriveDeviceKey(TestSecret(), 42);
  auto report = SignReport(key, 42, 1, {1, 2, 3, 4});
  report.payload[2] ^= 0x01;
  EXPECT_FALSE(VerifyTag(key, report));
}

TEST(SigningTest, TamperedCounterRejected) {
  const SipHashKey key = DeriveDeviceKey(TestSecret(), 42);
  auto report = SignReport(key, 42, 1, {1, 2, 3, 4});
  report.counter = 2;
  EXPECT_FALSE(VerifyTag(key, report));
}

TEST(SigningTest, DeviceKeysAreIndependent) {
  const SipHashKey a = DeriveDeviceKey(TestSecret(), 1);
  const SipHashKey b = DeriveDeviceKey(TestSecret(), 2);
  EXPECT_NE(a, b);
  // A report signed under device 1's key fails under device 2's.
  const auto report = SignReport(a, 1, 1, {9});
  EXPECT_FALSE(VerifyTag(b, report));
}

TEST(SigningTest, DerivationIsDeterministic) {
  EXPECT_EQ(DeriveDeviceKey(TestSecret(), 7), DeriveDeviceKey(TestSecret(), 7));
}

TEST(VerifierTest, AcceptsFreshIncreasingCounters) {
  ReportVerifier verifier(TestSecret());
  const SipHashKey key = DeriveDeviceKey(TestSecret(), 5);
  for (uint32_t c = 1; c <= 10; ++c) {
    EXPECT_EQ(verifier.Verify(SignReport(key, 5, c, {static_cast<uint8_t>(c)})),
              ReportVerifier::Verdict::kAccepted);
  }
  EXPECT_EQ(verifier.accepted(), 10u);
}

TEST(VerifierTest, RejectsReplay) {
  ReportVerifier verifier(TestSecret());
  const SipHashKey key = DeriveDeviceKey(TestSecret(), 5);
  const auto report = SignReport(key, 5, 3, {1});
  EXPECT_EQ(verifier.Verify(report), ReportVerifier::Verdict::kAccepted);
  EXPECT_EQ(verifier.Verify(report), ReportVerifier::Verdict::kReplayed);
  // Older counters also rejected.
  EXPECT_EQ(verifier.Verify(SignReport(key, 5, 2, {1})), ReportVerifier::Verdict::kReplayed);
}

TEST(VerifierTest, RejectsForgedTag) {
  ReportVerifier verifier(TestSecret());
  const SipHashKey wrong_key = DeriveDeviceKey(TestSecret(), 6);  // Wrong device.
  const auto forged = SignReport(wrong_key, 5, 1, {1});
  EXPECT_EQ(verifier.Verify(forged), ReportVerifier::Verdict::kBadTag);
  EXPECT_EQ(verifier.rejected(), 1u);
}

TEST(VerifierTest, ToleratesGapsWithinWindow) {
  ReportVerifier verifier(TestSecret());
  const SipHashKey key = DeriveDeviceKey(TestSecret(), 5);
  EXPECT_EQ(verifier.Verify(SignReport(key, 5, 1, {1})), ReportVerifier::Verdict::kAccepted);
  // 500 lost frames: still accepted.
  EXPECT_EQ(verifier.Verify(SignReport(key, 5, 501, {1})), ReportVerifier::Verdict::kAccepted);
}

TEST(VerifierTest, RejectsImplausibleJump) {
  ReportVerifier verifier(TestSecret(), /*max_counter_jump=*/1000);
  const SipHashKey key = DeriveDeviceKey(TestSecret(), 5);
  EXPECT_EQ(verifier.Verify(SignReport(key, 5, 1, {1})), ReportVerifier::Verdict::kAccepted);
  EXPECT_EQ(verifier.Verify(SignReport(key, 5, 5000, {1})),
            ReportVerifier::Verdict::kCounterJump);
}

TEST(VerifierTest, DevicesTrackedIndependently) {
  ReportVerifier verifier(TestSecret());
  const SipHashKey k1 = DeriveDeviceKey(TestSecret(), 1);
  const SipHashKey k2 = DeriveDeviceKey(TestSecret(), 2);
  EXPECT_EQ(verifier.Verify(SignReport(k1, 1, 10, {1})), ReportVerifier::Verdict::kAccepted);
  // Device 2's counter 5 is fine even though device 1 is at 10.
  EXPECT_EQ(verifier.Verify(SignReport(k2, 2, 5, {1})), ReportVerifier::Verdict::kAccepted);
}

}  // namespace
}  // namespace centsim
