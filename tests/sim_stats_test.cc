#include "src/sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/sim/random.h"

namespace centsim {
namespace {

TEST(SummaryStatsTest, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SummaryStatsTest, KnownValues) {
  SummaryStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStatsTest, MergeMatchesDirect) {
  RandomStream rng(1);
  SummaryStats all;
  SummaryStats a;
  SummaryStats b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Normal(3.0, 1.5);
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryStatsTest, MergeWithEmpty) {
  SummaryStats a;
  a.Add(1.0);
  SummaryStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(9.5);
  h.Add(-100.0);  // Clamps to first bin.
  h.Add(100.0);   // Clamps to last bin.
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.BinCount(0), 2u);
  EXPECT_EQ(h.BinCount(9), 2u);
}

TEST(HistogramTest, QuantileOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(i + 0.5);
  }
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 1.5);
  EXPECT_NEAR(h.Quantile(1.0), 100.0, 1.5);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, ToStringRenders) {
  Histogram h(0.0, 4.0, 4);
  h.Add(1.0);
  h.Add(1.2);
  h.Add(3.0);
  const std::string s = h.ToString();
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(SampleSetTest, ExactQuantiles) {
  SampleSet s;
  for (int i = 1; i <= 101; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 51.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 101.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 51.0);
}

TEST(SampleSetTest, AddAfterQuantileResorts) {
  SampleSet s;
  s.Add(10.0);
  s.Add(20.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 20.0);
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 5.0);
}

TEST(SampleSetTest, EmptyIsZero) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST(SampleSetTest, QuantileEdgeContract) {
  SampleSet single;
  single.Add(42.0);
  // Single sample: every quantile is that sample.
  EXPECT_DOUBLE_EQ(single.Quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(single.Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(single.Quantile(1.0), 42.0);
  // NaN q propagates NaN rather than indexing out of range.
  EXPECT_TRUE(std::isnan(single.Quantile(std::numeric_limits<double>::quiet_NaN())));
}

TEST(SampleSetTest, AddIgnoresNan) {
  SampleSet s;
  s.Add(1.0);
  s.Add(std::numeric_limits<double>::quiet_NaN());
  s.Add(3.0);
  EXPECT_EQ(s.values().size(), 2u);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.0);
}

TEST(HistogramTest, QuantileEdgeContract) {
  Histogram h(0.0, 100.0, 10);
  // Empty histogram: quantiles are 0 by contract.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);

  // All mass in the third bin [20, 30): q=0 must return that bin's low
  // edge (not the histogram's lo), q=1 its high edge.
  h.Add(25.0);
  h.Add(26.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 20.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 30.0);
  EXPECT_TRUE(std::isnan(h.Quantile(std::numeric_limits<double>::quiet_NaN())));
}

TEST(HistogramTest, AddIgnoresNanAndClampsInfinities) {
  Histogram h(0.0, 10.0, 10);
  h.Add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 0u);
  h.Add(std::numeric_limits<double>::infinity());
  h.Add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.BinCount(0), 1u);  // -inf clamps low, +inf clamps high.
  EXPECT_EQ(h.BinCount(9), 1u);
}

TEST(HistogramTest, MergeRequiresIdenticalShape) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  Histogram other(0.0, 20.0, 10);
  a.Add(1.0);
  b.Add(9.0);
  EXPECT_TRUE(a.Merge(b));
  EXPECT_EQ(a.count(), 2u);
  EXPECT_FALSE(a.Merge(other));
  EXPECT_EQ(a.count(), 2u);
}

}  // namespace
}  // namespace centsim
