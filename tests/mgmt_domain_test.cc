#include "src/mgmt/domain_lease.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

TEST(DomainTest, RenewalsOnTenYearCadence) {
  Simulation sim(1);
  CloudEndpoint endpoint;
  DomainLeaseParams params;
  params.renewal_lapse_probability = 0.0;  // Perfect institutional memory.
  DomainLease lease(sim, endpoint, params);
  lease.Start();
  sim.RunUntil(SimTime::Years(50));
  // Renewals at years 10, 20, 30, 40, 50 (the year-50 one may or may not
  // land inside the horizon depending on tie handling).
  EXPECT_GE(lease.renewals(), 4u);
  EXPECT_LE(lease.renewals(), 5u);
  EXPECT_EQ(lease.lapses(), 0u);
  EXPECT_TRUE(endpoint.operational());
  EXPECT_NEAR(lease.fees_paid_usd(), lease.renewals() * params.renewal_fee_usd, 1e-9);
}

TEST(DomainTest, CertainLapseDarkensEndpoint) {
  Simulation sim(2);
  CloudEndpoint endpoint;
  DomainLeaseParams params;
  params.renewal_lapse_probability = 1.0;
  params.lapse_recovery = SimTime::Days(45);
  DomainLease lease(sim, endpoint, params);
  lease.Start();
  // Run to just past the first renewal: endpoint should be dark.
  sim.RunUntil(SimTime::Years(10) + SimTime::Days(1));
  EXPECT_FALSE(endpoint.operational());
  EXPECT_EQ(lease.lapses(), 1u);
  // After recovery, the endpoint returns.
  sim.RunUntil(SimTime::Years(10) + SimTime::Days(46));
  EXPECT_TRUE(endpoint.operational());
}

TEST(DomainTest, LapsesLosePackets) {
  Simulation sim(3);
  CloudEndpoint endpoint;
  DomainLeaseParams params;
  params.renewal_lapse_probability = 1.0;
  DomainLease lease(sim, endpoint, params);
  lease.Start();
  sim.RunUntil(SimTime::Years(10) + SimTime::Days(10));
  UplinkPacket pkt;
  EXPECT_FALSE(endpoint.Record(pkt, sim.Now()));
  EXPECT_EQ(endpoint.packets_lost_down(), 1u);
}

TEST(DomainTest, LostKnowledgeRaisesLapseRisk) {
  // With zero base risk but zero institutional knowledge, the knowledge
  // weight alone drives lapses; perfect knowledge keeps renewals clean.
  auto run = [](double knowledge) {
    Simulation sim(11);
    CloudEndpoint endpoint;
    DomainLeaseParams params;
    params.renewal_lapse_probability = 0.0;
    params.knowledge_lapse_weight = 1.0;
    DomainLease lease(sim, endpoint, params);
    lease.SetKnowledgeProvider([knowledge](SimTime) { return knowledge; });
    lease.Start();
    sim.RunUntil(SimTime::Years(100));
    return lease.lapses();
  };
  EXPECT_EQ(run(1.0), 0u);
  EXPECT_GE(run(0.0), 8u);  // Every renewal lapses (p = 1).
}

TEST(DomainTest, FiftyYearsHasAtLeastFourCertainRenewals) {
  // §4.5: the maximum domain lease (10 years) makes renewals "one certain
  // event" — over 50 years, at least four must occur.
  Simulation sim(4);
  CloudEndpoint endpoint;
  DomainLeaseParams params;
  params.renewal_lapse_probability = 0.05;
  DomainLease lease(sim, endpoint, params);
  lease.Start();
  sim.RunUntil(SimTime::Years(50));
  EXPECT_GE(lease.renewals() + lease.lapses(), 4u);
}

}  // namespace
}  // namespace centsim
