#include "src/econ/data_credits.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

TEST(CreditsTest, PaperHeadlineClaim) {
  // §4.4: one 24-byte packet per hour for 50 years = 438,000 DC.
  EXPECT_EQ(CreditsForSchedule(1.0, 50.0, 24), 438000u);
}

TEST(CreditsTest, FiveDollarsBuysHalfMillion) {
  // §4.4: "$5 USD" provisions "500,000 data credits".
  EXPECT_EQ(UsdToCredits(5.0), 500000u);
  EXPECT_DOUBLE_EQ(CreditsToUsd(500000), 5.0);
}

TEST(CreditsTest, WalletOutlivesFiftyYearSchedule) {
  // The paper's arithmetic: the $5 wallet covers the 50-year schedule.
  EXPECT_GT(UsdToCredits(5.0), CreditsForSchedule(1.0, 50.0, 24));
}

TEST(CreditsTest, PacketUnitRounding) {
  EXPECT_EQ(CreditsForPacket(0), 1u);
  EXPECT_EQ(CreditsForPacket(1), 1u);
  EXPECT_EQ(CreditsForPacket(24), 1u);
  EXPECT_EQ(CreditsForPacket(25), 2u);
  EXPECT_EQ(CreditsForPacket(48), 2u);
  EXPECT_EQ(CreditsForPacket(49), 3u);
}

TEST(CreditsTest, BiggerPayloadsCostProportionally) {
  EXPECT_EQ(CreditsForSchedule(1.0, 1.0, 48), 2 * CreditsForSchedule(1.0, 1.0, 24));
}

TEST(WalletTest, ChargesAndTracks) {
  DataCreditWallet wallet(10);
  EXPECT_TRUE(wallet.ChargePacket(24));
  EXPECT_TRUE(wallet.ChargePacket(48));  // 2 credits.
  EXPECT_EQ(wallet.balance(), 7u);
  EXPECT_EQ(wallet.spent(), 3u);
}

TEST(WalletTest, RefusesWhenEmpty) {
  DataCreditWallet wallet(1);
  EXPECT_TRUE(wallet.ChargePacket(12));
  EXPECT_FALSE(wallet.ChargePacket(12));
  EXPECT_EQ(wallet.balance(), 0u);
  EXPECT_EQ(wallet.refused(), 1u);
}

TEST(WalletTest, RefusesPartialAffordability) {
  DataCreditWallet wallet(1);
  // 30-byte packet needs 2 credits; balance 1 -> refuse, keep the credit.
  EXPECT_FALSE(wallet.ChargePacket(30));
  EXPECT_EQ(wallet.balance(), 1u);
}

TEST(WalletTest, FromUsdFactory) {
  const auto wallet = DataCreditWallet::FromUsd(5.0);
  EXPECT_EQ(wallet.balance(), 500000u);
}

TEST(WalletTest, ProjectedExhaustionMatchesArithmetic) {
  DataCreditWallet wallet(500000);
  // 1 pkt/hour, 1 DC each: 500,000 hours ~ 57.07 years.
  const SimTime t = wallet.ProjectedExhaustion(1.0, 24);
  EXPECT_NEAR(t.ToHours(), 500000.0, 1.0);
  EXPECT_GT(t.ToYears(), 50.0);  // The paper's margin claim.
}

TEST(WalletTest, IdleWalletNeverExhausts) {
  DataCreditWallet wallet(100);
  EXPECT_EQ(wallet.ProjectedExhaustion(0.0), SimTime::Max());
}

TEST(WalletTest, FiftyYearsOfHourlyChargesFits) {
  DataCreditWallet wallet(UsdToCredits(5.0));
  for (int i = 0; i < 438000; ++i) {
    ASSERT_TRUE(wallet.ChargePacket(24));
  }
  EXPECT_EQ(wallet.balance(), 62000u);  // 500,000 - 438,000.
}

}  // namespace
}  // namespace centsim
