#include "src/radio/link_budget.h"

#include <gtest/gtest.h>

#include <cmath>

namespace centsim {
namespace {

TEST(DbmTest, Conversions) {
  EXPECT_DOUBLE_EQ(DbmToMilliwatts(0.0), 1.0);
  EXPECT_DOUBLE_EQ(DbmToMilliwatts(10.0), 10.0);
  EXPECT_NEAR(DbmToMilliwatts(-30.0), 0.001, 1e-12);
  EXPECT_DOUBLE_EQ(MilliwattsToDbm(1.0), 0.0);
  EXPECT_NEAR(MilliwattsToDbm(DbmToMilliwatts(-87.3)), -87.3, 1e-9);
}

TEST(NoiseFloorTest, KnownValues) {
  // 2 MHz BW, 7 dB NF: -174 + 63 + 7 = -104 dBm.
  EXPECT_NEAR(NoiseFloorDbm(2e6, 7.0), -104.0, 0.05);
  // 125 kHz LoRa, 6 dB NF: -174 + 51 + 6 = -117 dBm.
  EXPECT_NEAR(NoiseFloorDbm(125e3, 6.0), -117.0, 0.05);
}

TEST(PathLossTest, MedianLossGrowsWithDistance) {
  PathLossModel pl = PathLossModel::Urban24GHz();
  double prev = 0.0;
  for (double d : {1.0, 10.0, 100.0, 1000.0}) {
    const double loss = pl.MedianLossDb(d);
    EXPECT_GT(loss, prev);
    prev = loss;
  }
}

TEST(PathLossTest, ReferenceDistanceFloor) {
  PathLossModel pl = PathLossModel::Urban24GHz();
  EXPECT_DOUBLE_EQ(pl.MedianLossDb(0.1), pl.MedianLossDb(1.0));
}

TEST(PathLossTest, TenXDistanceAddsTenNdB) {
  PathLossModel::Params p;
  p.exponent = 3.0;
  p.reference_loss_db = 40.0;
  PathLossModel pl(p);
  EXPECT_NEAR(pl.MedianLossDb(100.0) - pl.MedianLossDb(10.0), 30.0, 1e-9);
}

TEST(PathLossTest, RangeInversionRoundTrips) {
  PathLossModel pl = PathLossModel::Urban915MHz();
  const double loss = pl.MedianLossDb(500.0);
  EXPECT_NEAR(pl.RangeForLossDb(loss), 500.0, 0.5);
}

TEST(PathLossTest, ShadowingIsFrozenPerLink) {
  PathLossModel pl = PathLossModel::Urban24GHz();
  const double a1 = pl.LinkLossDb(200.0, /*link_seed=*/42);
  const double a2 = pl.LinkLossDb(200.0, /*link_seed=*/42);
  const double b = pl.LinkLossDb(200.0, /*link_seed=*/43);
  EXPECT_DOUBLE_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

TEST(PathLossTest, ShadowingHasConfiguredSpread) {
  PathLossModel pl = PathLossModel::Urban24GHz();
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const double dev = pl.LinkLossDb(100.0, i) - pl.MedianLossDb(100.0);
    sum += dev;
    sum_sq += dev * dev;
  }
  const double mean = sum / n;
  const double sd = std::sqrt(sum_sq / n - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.3);
  EXPECT_NEAR(sd, pl.params().shadowing_sigma_db, 0.3);
}

TEST(LinkBudgetTest, ReceivedPowerArithmetic) {
  LinkBudget lb;
  lb.tx_power_dbm = 14.0;
  lb.tx_antenna_gain_db = 2.0;
  lb.rx_antenna_gain_db = 3.0;
  lb.path_loss_db = 110.0;
  EXPECT_DOUBLE_EQ(lb.ReceivedPowerDbm(), -91.0);
  EXPECT_DOUBLE_EQ(lb.SnrDb(-117.0), 26.0);
}

}  // namespace
}  // namespace centsim
