#include "src/security/trust.h"

#include <gtest/gtest.h>

#include <cmath>

namespace centsim {
namespace {

TEST(TrustTest, SecurityBitsDecayLinearly) {
  TrustModelParams p;
  p.initial_security_bits = 64.0;
  p.bits_lost_per_year = 1.0;
  LongitudinalTrust trust(p);
  EXPECT_DOUBLE_EQ(trust.SecurityBitsAt(0), 64.0);
  EXPECT_DOUBLE_EQ(trust.SecurityBitsAt(10), 54.0);
  EXPECT_DOUBLE_EQ(trust.SecurityBitsAt(100), 0.0);  // Clamped.
}

TEST(TrustTest, AlgorithmHorizon) {
  TrustModelParams p;
  p.initial_security_bits = 64.0;
  p.feasible_attack_bits = 40.0;
  p.bits_lost_per_year = 0.8;
  LongitudinalTrust trust(p);
  EXPECT_NEAR(trust.AlgorithmHorizonYears(), 30.0, 1e-9);
  EXPECT_DOUBLE_EQ(trust.TrustAt(30.0), 0.0);
  EXPECT_GT(trust.TrustAt(29.0), 0.0);
}

TEST(TrustTest, NoDriftMeansInfiniteHorizon) {
  TrustModelParams p;
  p.bits_lost_per_year = 0.0;
  LongitudinalTrust trust(p);
  EXPECT_TRUE(std::isinf(trust.AlgorithmHorizonYears()));
}

TEST(TrustTest, KeyExposureCompounds) {
  TrustModelParams p;
  p.annual_leak_probability = 0.01;
  p.rekey_period_years = 0.0;
  LongitudinalTrust trust(p);
  EXPECT_DOUBLE_EQ(trust.KeyIntactProbability(0), 1.0);
  EXPECT_NEAR(trust.KeyIntactProbability(50), std::pow(0.99, 50), 1e-12);
}

TEST(TrustTest, RekeyingResetsExposure) {
  TrustModelParams frozen;
  frozen.annual_leak_probability = 0.01;
  TrustModelParams rotated = frozen;
  rotated.rekey_period_years = 5.0;
  LongitudinalTrust a(frozen);
  LongitudinalTrust b(rotated);
  // At year 40, the frozen device has 40 years of exposure; the rotated
  // one has at most 5.
  EXPECT_LT(a.KeyIntactProbability(40), b.KeyIntactProbability(40));
  EXPECT_GE(b.KeyIntactProbability(40), std::pow(0.99, 5.0) - 1e-12);
}

TEST(TrustTest, PaperShapeTransmitOnlyTrustIsFinite) {
  // §4.1: transmit-only devices have "limited longitudinal trust". With
  // default parameters the trust horizon exists and is decades, not
  // centuries.
  LongitudinalTrust trust(TrustModelParams{});
  const double horizon = trust.TrustHorizonYears(0.5);
  EXPECT_GT(horizon, 10.0);
  EXPECT_LT(horizon, 100.0);
}

TEST(TrustTest, TrustMonotoneNonIncreasing) {
  LongitudinalTrust trust(TrustModelParams{});
  double prev = 1.1;
  for (double t = 0; t <= 60; t += 5) {
    const double v = trust.TrustAt(t);
    EXPECT_LE(v, prev + 1e-12);
    prev = v;
  }
}

}  // namespace
}  // namespace centsim
