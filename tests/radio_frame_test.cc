#include "src/radio/frame.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

TEST(CrcTest, KnownVector) {
  // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc16Ccitt(data, sizeof(data)), 0x29B1);
}

TEST(CrcTest, EmptyInput) { EXPECT_EQ(Crc16Ccitt(nullptr, 0), 0xFFFF); }

TEST(CrcTest, SensitiveToSingleBit) {
  std::vector<uint8_t> a = {0x00, 0x01, 0x02, 0x03};
  std::vector<uint8_t> b = a;
  b[2] ^= 0x10;
  EXPECT_NE(Crc16Ccitt(a.data(), a.size()), Crc16Ccitt(b.data(), b.size()));
}

TEST(SensorReadingTest, SerializeIsTwelveBytes) {
  SensorReading r;
  EXPECT_EQ(r.Serialize().size(), 12u);
}

TEST(SensorReadingTest, RoundTrip) {
  SensorReading r;
  r.device_id = 0xDEADBEEF;
  r.sequence = 123456789;
  r.value_centi = -1234;
  r.sensor_type = 7;
  r.battery_soc = 200;
  const auto parsed = SensorReading::Parse(r.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, r);
}

TEST(SensorReadingTest, ParseRejectsWrongSize) {
  EXPECT_FALSE(SensorReading::Parse(std::vector<uint8_t>(11)).has_value());
  EXPECT_FALSE(SensorReading::Parse(std::vector<uint8_t>(13)).has_value());
}

TEST(SensorReadingTest, NegativeValueRoundTrips) {
  SensorReading r;
  r.value_centi = -32768;
  const auto parsed = SensorReading::Parse(r.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->value_centi, -32768);
}

TEST(SensorReadingTest, FitsInDataCreditUnit) {
  // The whole report, with 2-byte FCS, stays under Helium's 24-byte unit.
  SensorReading r;
  const Frame f = Frame::WithFcs(r.Serialize());
  EXPECT_LE(f.WireSize(), 24u);
}

TEST(FrameTest, ValidatesCleanFrame) {
  const Frame f = Frame::WithFcs({1, 2, 3, 4, 5});
  EXPECT_TRUE(f.Validate());
}

TEST(FrameTest, DetectsCorruption) {
  Frame f = Frame::WithFcs({1, 2, 3, 4, 5});
  f.CorruptBit(17);
  EXPECT_FALSE(f.Validate());
}

TEST(FrameTest, DetectsFcsCorruption) {
  Frame f = Frame::WithFcs({9, 9, 9});
  f.CorruptBit(3 * 8 + 5);  // Beyond payload: flips an FCS bit.
  EXPECT_FALSE(f.Validate());
}

TEST(FrameTest, AllSingleBitErrorsDetected) {
  // CRC-16 detects every single-bit error.
  const std::vector<uint8_t> payload = {0xA5, 0x5A, 0xFF, 0x00, 0x37};
  for (size_t bit = 0; bit < payload.size() * 8; ++bit) {
    Frame f = Frame::WithFcs(payload);
    f.CorruptBit(bit);
    EXPECT_FALSE(f.Validate()) << "bit " << bit;
  }
}

}  // namespace
}  // namespace centsim
