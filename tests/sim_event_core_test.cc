// Tests for the allocation-free event core: EventFn small-buffer storage,
// EventPool slot/generation recycling, the scheduler's O(1) cancel
// semantics, and the zero-steady-state-allocation guarantee.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "src/sim/alloc_probe.h"
#include "src/sim/event_fn.h"
#include "src/sim/event_pool.h"
#include "src/sim/metrics.h"
#include "src/sim/scheduler.h"

namespace centsim {
namespace {

// --- EventFn ---------------------------------------------------------------

TEST(EventFnTest, SmallCaptureStaysInline) {
  int hits = 0;
  EventFn fn([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.is_inline());
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(EventFnTest, CaptureAtBudgetStaysInline) {
  std::array<char, EventFn::kInlineSize> payload{};
  payload[0] = 7;
  int sink = 0;
  EventFn fn([payload, &sink]() mutable { sink = payload[0]; });
  // capture is kInlineSize + a reference — over budget by one pointer.
  EXPECT_FALSE(fn.is_inline());

  std::array<char, EventFn::kInlineSize - sizeof(void*)> small{};
  small[0] = 9;
  static int g_sink = 0;
  EventFn fits([small] { g_sink = small[0]; });
  EXPECT_TRUE(fits.is_inline());
  fits();
  EXPECT_EQ(g_sink, 9);
}

TEST(EventFnTest, OversizedCaptureFallsBackToHeapAndStillRuns) {
  std::array<uint64_t, 32> big{};  // 256 bytes, far over budget.
  big[31] = 42;
  uint64_t seen = 0;
  EventFn fn([big, &seen] { seen = big[31]; });
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(seen, 42u);
}

TEST(EventFnTest, MoveTransfersTargetAndEmptiesSource) {
  int hits = 0;
  EventFn a([&hits] { ++hits; });
  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  EventFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(EventFnTest, DestroysCaptureExactlyOnce) {
  auto token = std::make_shared<int>(5);
  std::weak_ptr<int> watch = token;
  {
    EventFn fn([token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(watch.expired());  // Capture keeps it alive.
    EventFn moved(std::move(fn));
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());  // Destroyed with the (moved-to) EventFn.
}

// --- EventPool -------------------------------------------------------------

TEST(EventPoolTest, PackedIdsRoundTrip) {
  const EventId id = EventPool::Pack(7, 1234);
  EXPECT_EQ(EventPool::SlotOf(id), 7u);
  EXPECT_EQ(EventPool::GenerationOf(id), 1234u);
  EXPECT_NE(id, kInvalidEventId);
}

TEST(EventPoolTest, ReleaseBumpsGenerationAndInvalidatesOldIds) {
  EventPool pool;
  const EventId first = pool.Acquire(EventFn([] {}), "t");
  EXPECT_TRUE(pool.IsLive(first));
  pool.Release(EventPool::SlotOf(first));
  EXPECT_FALSE(pool.IsLive(first));

  // LIFO recycling hands the same slot back with a fresh generation.
  const EventId second = pool.Acquire(EventFn([] {}), "t");
  EXPECT_EQ(EventPool::SlotOf(second), EventPool::SlotOf(first));
  EXPECT_NE(second, first);
  EXPECT_FALSE(pool.IsLive(first));
  EXPECT_TRUE(pool.IsLive(second));
}

TEST(EventPoolTest, GenerationStaysUniqueAcrossManyRecycles) {
  EventPool pool;
  std::set<EventId> seen;
  std::vector<EventId> history;
  for (int i = 0; i < 1 << 12; ++i) {
    const EventId id = pool.Acquire(EventFn([] {}), "t");
    EXPECT_TRUE(seen.insert(id).second) << "id reused after " << i << " recycles";
    history.push_back(id);
    pool.Release(EventPool::SlotOf(id));
  }
  // Every historical id is stale — none can false-positive as live.
  for (const EventId id : history) {
    EXPECT_FALSE(pool.IsLive(id));
  }
}

// --- Scheduler cancel semantics --------------------------------------------

TEST(SchedulerCancelTest, CancelInsideRunningEventOfItselfFails) {
  Scheduler sched;
  bool self_cancel = true;
  EventId self = kInvalidEventId;
  self = sched.ScheduleAt(SimTime::Seconds(1), [&] { self_cancel = sched.Cancel(self); });
  sched.RunUntil(SimTime::Seconds(2));
  EXPECT_FALSE(self_cancel);  // Running means no longer pending.
  EXPECT_EQ(sched.pending_count(), 0u);
}

TEST(SchedulerCancelTest, CancelInsideRunningEventOfPeerPreventsIt) {
  Scheduler sched;
  bool peer_ran = false;
  bool cancel_ok = false;
  const EventId peer = sched.ScheduleAt(SimTime::Seconds(2), [&] { peer_ran = true; });
  sched.ScheduleAt(SimTime::Seconds(1), [&] { cancel_ok = sched.Cancel(peer); });
  sched.RunUntil(SimTime::Seconds(3));
  EXPECT_TRUE(cancel_ok);
  EXPECT_FALSE(peer_ran);
  EXPECT_EQ(sched.executed_count(), 1u);
}

TEST(SchedulerCancelTest, DoubleCancelFails) {
  Scheduler sched;
  const EventId id = sched.ScheduleAt(SimTime::Seconds(1), [] {});
  EXPECT_TRUE(sched.Cancel(id));
  EXPECT_FALSE(sched.Cancel(id));
  EXPECT_EQ(sched.pending_count(), 0u);
}

TEST(SchedulerCancelTest, CancelAfterFireFails) {
  Scheduler sched;
  const EventId id = sched.ScheduleAt(SimTime::Seconds(1), [] {});
  sched.RunUntil(SimTime::Seconds(2));
  EXPECT_FALSE(sched.Cancel(id));
}

TEST(SchedulerCancelTest, StaleIdSurvivesSlotReuse) {
  Scheduler sched;
  // Fire one event so its slot recycles, then occupy it with a new event:
  // the stale id must not cancel the new occupant.
  const EventId old_id = sched.ScheduleAt(SimTime::Seconds(1), [] {});
  sched.RunUntil(SimTime::Seconds(2));
  bool ran = false;
  const EventId new_id = sched.ScheduleAt(SimTime::Seconds(3), [&] { ran = true; });
  EXPECT_EQ(EventPool::SlotOf(new_id), EventPool::SlotOf(old_id));  // LIFO reuse.
  EXPECT_FALSE(sched.Cancel(old_id));
  sched.RunUntil(SimTime::Seconds(4));
  EXPECT_TRUE(ran);
}

TEST(SchedulerCancelTest, CancelledEntryDoesNotBlockLaterEventsInHeap) {
  Scheduler sched;
  std::vector<int> order;
  const EventId a = sched.ScheduleAt(SimTime::Seconds(1), [&] { order.push_back(1); });
  sched.ScheduleAt(SimTime::Seconds(1), [&] { order.push_back(2); });
  sched.ScheduleAt(SimTime::Seconds(2), [&] { order.push_back(3); });
  sched.Cancel(a);
  sched.RunUntil(SimTime::Seconds(3));
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
}

// --- Late-schedule clamping -------------------------------------------------

TEST(SchedulerLateScheduleTest, PastTimeClampsToNowAndCounts) {
  Scheduler sched;
  SimTime ran_at;
  sched.ScheduleAt(SimTime::Seconds(10), [&] {
    // A buggy component schedules into the past: the event must run at
    // Now(), never roll the clock backwards.
    sched.ScheduleAt(SimTime::Seconds(1), [&] { ran_at = sched.Now(); });
  });
  sched.RunUntil(SimTime::Seconds(20));
  EXPECT_EQ(ran_at, SimTime::Seconds(10));
  EXPECT_EQ(sched.late_schedule_count(), 1u);
  EXPECT_EQ(sched.Now(), SimTime::Seconds(20));
}

TEST(SchedulerLateScheduleTest, ClampPublishesMetricLazily) {
  MetricsRegistry registry;
  Scheduler sched;
  sched.SetMetrics(&registry);
  sched.ScheduleAt(SimTime::Seconds(1), [] {});
  sched.RunUntil(SimTime::Seconds(2));
  // Clean run: the instrument must not pollute the registry.
  EXPECT_EQ(registry.FindCounter("scheduler.late_schedule"), nullptr);

  sched.ScheduleAt(SimTime::Seconds(1), [] {});  // Now() is 2s: late.
  const Counter* late = registry.FindCounter("scheduler.late_schedule");
  ASSERT_NE(late, nullptr);
  EXPECT_EQ(late->count(), 1u);
  EXPECT_EQ(sched.late_schedule_count(), 1u);
}

// --- PeriodicEvent regressions ----------------------------------------------

TEST(PeriodicEventTest, StartWhileRunningKeepsExactlyOnePending) {
  Scheduler sched;
  int fires = 0;
  PeriodicEvent tick(sched, SimTime::Hours(1), [&] { ++fires; });
  tick.Start(SimTime::Hours(1));
  EXPECT_EQ(sched.pending_count(), 1u);
  tick.Start(SimTime::Hours(2));  // Restart without Stop(): no leaked slot.
  EXPECT_EQ(sched.pending_count(), 1u);
  tick.Stop();
  EXPECT_EQ(sched.pending_count(), 0u);
  tick.Start(SimTime::Hours(1));
  EXPECT_EQ(sched.pending_count(), 1u);
  sched.RunUntil(SimTime::Hours(3) + SimTime::Minutes(1));
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sched.pending_count(), 1u);  // The next tick, nothing else.
}

TEST(PeriodicEventTest, StopInsideCallbackHaltsCleanly) {
  Scheduler sched;
  int fires = 0;
  PeriodicEvent* handle = nullptr;
  PeriodicEvent tick(sched, SimTime::Hours(1), [&] {
    if (++fires == 3) {
      handle->Stop();
    }
  });
  handle = &tick;
  tick.Start(SimTime::Hours(1));
  sched.RunUntil(SimTime::Hours(10));
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sched.pending_count(), 0u);
  EXPECT_FALSE(tick.running());
}

// --- Steady-state allocation guarantee --------------------------------------

// Self-rescheduling functor: the capture (pointer + two counters) is far
// under EventFn's inline budget, so rescheduling must never allocate.
struct SteadyTick {
  Scheduler* sched;
  uint64_t* ticks;
  uint64_t limit;
  void operator()() const {
    if (++*ticks < limit) {
      sched->ScheduleAfter(SimTime::Micros(10), *this);
    }
  }
};

TEST(SchedulerAllocTest, SteadyStateSelfReschedulingIsAllocationFree) {
  if (!AllocProbeEnabled()) {
    GTEST_SKIP() << "allocation probe disabled (sanitizer build)";
  }
  Scheduler sched;
  uint64_t ticks = 0;
  // Warm up: first schedules grow the pool and the heap arrays.
  sched.ScheduleAfter(SimTime::Micros(10), SteadyTick{&sched, &ticks, 1000});
  sched.RunUntil(SimTime::Seconds(1));
  ASSERT_EQ(ticks, 1000u);

  ticks = 0;
  AllocScope scope;
  sched.ScheduleAfter(SimTime::Micros(10), SteadyTick{&sched, &ticks, 20000});
  sched.RunUntil(SimTime::Seconds(10));
  EXPECT_EQ(ticks, 20000u);
  EXPECT_EQ(scope.delta(), 0u) << "steady-state event loop allocated";
}

TEST(SchedulerAllocTest, PeriodicEventSteadyStateIsAllocationFree) {
  if (!AllocProbeEnabled()) {
    GTEST_SKIP() << "allocation probe disabled (sanitizer build)";
  }
  Scheduler sched;
  uint64_t fires = 0;
  PeriodicEvent tick(sched, SimTime::Hours(1), [&fires] { ++fires; });
  tick.Start(SimTime::Hours(1));
  sched.RunUntil(SimTime::Hours(100));  // Warm up pool + heap.
  ASSERT_EQ(fires, 100u);

  AllocScope scope;
  sched.RunUntil(SimTime::Hours(10100));
  EXPECT_EQ(fires, 10100u);
  EXPECT_EQ(scope.delta(), 0u) << "periodic rescheduling allocated";
}

// --- Staged (ladder) front-end ---------------------------------------------
//
// Backlogs past kDirectLoadMax stage in time-bucketed rungs instead of the
// heap. These tests drive the rung paths hard and check the one property
// that matters: the fire order is exactly (time, schedule order),
// identical to a reference stable sort.

TEST(SchedulerStagedTest, LargeShuffledBacklogFiresInExactOrder) {
  Scheduler sched;
  std::mt19937 rng(20260806u);
  std::uniform_int_distribution<int64_t> micros(0, 5'000'000);
  const int n = 20000;
  std::vector<std::pair<int64_t, int>> expected;  // (at, schedule index)
  std::vector<std::pair<int64_t, int>> fired;
  fired.reserve(n);
  for (int i = 0; i < n; ++i) {
    const int64_t at = micros(rng);
    expected.emplace_back(at, i);
    sched.ScheduleAt(SimTime::Micros(at), [&fired, at, i] { fired.emplace_back(at, i); });
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  sched.RunUntil(SimTime::Seconds(10));
  EXPECT_EQ(fired, expected);
}

TEST(SchedulerStagedTest, CancelsWhileStagedNeverFire) {
  Scheduler sched;
  const int n = 8000;  // Well past the direct-load threshold.
  std::vector<EventId> ids;
  uint64_t fires = 0;
  for (int i = 0; i < n; ++i) {
    ids.push_back(
        sched.ScheduleAt(SimTime::Micros(i % 977), [&fires] { ++fires; }));
  }
  for (int i = 0; i < n; i += 3) {
    EXPECT_TRUE(sched.Cancel(ids[i]));
  }
  EXPECT_EQ(sched.pending_count(), static_cast<uint64_t>(n - (n + 2) / 3));
  sched.RunUntil(SimTime::Seconds(1));
  EXPECT_EQ(fires, static_cast<uint64_t>(n - (n + 2) / 3));
  EXPECT_EQ(sched.pending_count(), 0u);
}

TEST(SchedulerStagedTest, ClusteredTimestampSplitsKeepScheduleOrder) {
  // >4096 events on one timestamp inside a wide window forces the
  // bucket-split path (a finer rung) and then the single-timestamp
  // sequential run; sprinkled events elsewhere keep the outer rung wide.
  Scheduler sched;
  std::vector<int> fired;
  const int cluster = 6000;
  for (int i = 0; i < cluster; ++i) {
    sched.ScheduleAt(SimTime::Seconds(500), [&fired, i] { fired.push_back(i); });
  }
  int outliers_run = 0;
  for (int i = 0; i < 700; ++i) {
    sched.ScheduleAt(SimTime::Seconds(i * 1.37), [&outliers_run] { ++outliers_run; });
  }
  sched.RunUntil(SimTime::Seconds(1000));
  ASSERT_EQ(fired.size(), static_cast<size_t>(cluster));
  for (int i = 0; i < cluster; ++i) {
    ASSERT_EQ(fired[i], i) << "cluster fired out of schedule order at " << i;
  }
  EXPECT_EQ(outliers_run, 700);
}

TEST(SchedulerStagedTest, ScheduleIntoSplitBucketGapDuringDrain) {
  // Regression: a bucket split promotes its entries to a finer rung, and
  // that child rung must cover the parent bucket's FULL window — not just
  // the entries' span. A callback firing mid-drain schedules 50 ms ahead,
  // into the gap between the cluster's 500 us span and the parent
  // bucket's edge; with a span-sized child that entry fell into the
  // parent's already-passed bucket and was dropped, leaking staged_ and
  // hanging RunUntil.
  Scheduler sched;
  int cluster_run = 0;
  bool gap_fired = false;
  int64_t gap_fired_at = 0;
  const int64_t base = 500'000'000;  // 500 s.
  for (int i = 0; i < 5000; ++i) {
    const bool first = i == 0;
    sched.ScheduleAt(SimTime::Micros(base + i % 500), [&, first] {
      ++cluster_run;
      if (first) {
        sched.ScheduleAfter(SimTime::Millis(50), [&] {
          gap_fired = true;
          gap_fired_at = sched.Now().micros();
        });
      }
    });
  }
  // Outliers below 300 s plus a 2000 s anchor stretch the bottom rung to
  // ~23 s buckets while leaving the cluster's bucket holding ONLY the
  // 500 us cluster — so a span-sized child rung leaves almost the whole
  // parent-bucket window uncovered.
  int outliers_run = 0;
  for (int i = 0; i < 600; ++i) {
    sched.ScheduleAt(SimTime::Seconds(i * 0.5), [&outliers_run] { ++outliers_run; });
  }
  sched.ScheduleAt(SimTime::Seconds(2000), [&outliers_run] { ++outliers_run; });
  sched.RunUntil(SimTime::Seconds(2100));
  EXPECT_EQ(cluster_run, 5000);
  EXPECT_EQ(outliers_run, 601);
  EXPECT_TRUE(gap_fired) << "event scheduled into the split-bucket gap was lost";
  EXPECT_EQ(gap_fired_at, base + 50'000);
  EXPECT_EQ(sched.pending_count(), 0u);
}

TEST(SchedulerStagedTest, MidDrainSchedulesLandAnywhereKeepOrder) {
  // Callbacks during a deep staged drain schedule follow-ups at random
  // offsets — into the running bucket's tail, sibling buckets, the
  // windows of retired rungs, and past every rung — exercising frontier
  // routing across splits and retirements. Every follow-up must fire, in
  // exact (time, schedule order).
  Scheduler sched;
  std::mt19937 rng(77u);
  std::uniform_int_distribution<int64_t> offset(0, 200'000'000);  // Up to 200 s ahead.
  std::vector<std::pair<int64_t, int>> fired;  // (fire time, schedule tag)
  int next_tag = 0;
  const int base_events = 6000;
  for (int i = 0; i < base_events; ++i) {
    const int tag = next_tag++;
    sched.ScheduleAt(SimTime::Micros((i * 100'003) % 600'000'000), [&, tag] {
      fired.emplace_back(sched.Now().micros(), tag);
      if (tag < base_events && tag % 5 == 0) {
        const int echo = next_tag++;
        sched.ScheduleAfter(SimTime::Micros(offset(rng)), [&, echo] {
          fired.emplace_back(sched.Now().micros(), echo);
        });
      }
    });
  }
  sched.RunUntil(SimTime::Seconds(2000));
  ASSERT_EQ(fired.size(), static_cast<size_t>(base_events + base_events / 5));
  EXPECT_EQ(sched.pending_count(), 0u);
  for (size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1].first, fired[i].first) << "time went backwards at " << i;
    if (fired[i - 1].first == fired[i].first) {
      ASSERT_LT(fired[i - 1].second, fired[i].second) << "tie broke schedule order at " << i;
    }
  }
}

TEST(SchedulerStagedTest, CallbacksScheduleAcrossBucketsDuringDrain) {
  // While a staged backlog drains, callbacks keep scheduling both at the
  // running timestamp (same bucket window, must run this pass, after all
  // earlier-scheduled events) and far beyond the current rung.
  Scheduler sched;
  std::vector<std::pair<int64_t, int>> fired;
  int next_tag = 2000;
  for (int i = 0; i < 2000; ++i) {
    const int64_t at = (i % 631) * 1000;
    sched.ScheduleAt(SimTime::Micros(at), [&, at, i] {
      fired.emplace_back(at, i);
      if (i % 50 == 0) {
        const int echo = next_tag++;
        sched.ScheduleAfter(SimTime(), [&fired, &sched, echo] {
          fired.emplace_back(sched.Now().micros(), echo);
        });
        const int far = next_tag++;
        sched.ScheduleAfter(SimTime::Hours(2), [&fired, &sched, far] {
          fired.emplace_back(sched.Now().micros(), far);
        });
      }
    });
  }
  sched.RunUntil(SimTime::Hours(3));
  ASSERT_EQ(fired.size(), 2000u + 2 * 40u);
  // The exact (time, seq) contract, checked pairwise: time never goes
  // backwards, and ties fire in schedule order (tags only grow).
  for (size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1].first, fired[i].first) << "time went backwards at " << i;
    if (fired[i - 1].first == fired[i].first) {
      ASSERT_LT(fired[i - 1].second, fired[i].second)
          << "tie broke schedule order at " << i;
    }
  }
}

}  // namespace
}  // namespace centsim
