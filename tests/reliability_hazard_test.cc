#include "src/reliability/hazard.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/stats.h"

namespace centsim {
namespace {

// Property: empirical survival from sampling must match the analytic
// survival function, for every hazard model.
void ExpectSamplingMatchesSurvival(const HazardModel& model, SimTime probe, double tol) {
  RandomStream rng(404);
  const int n = 20000;
  int survived = 0;
  for (int i = 0; i < n; ++i) {
    if (model.SampleLife(rng) > probe) {
      ++survived;
    }
  }
  const double empirical = static_cast<double>(survived) / n;
  EXPECT_NEAR(empirical, model.Survival(probe), tol);
}

TEST(ExponentialHazardTest, SurvivalFormula) {
  ExponentialHazard h(SimTime::Years(10));
  EXPECT_NEAR(h.Survival(SimTime::Years(10)), std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(h.Survival(SimTime()), 1.0);
}

TEST(ExponentialHazardTest, SamplingMatchesSurvival) {
  ExponentialHazard h(SimTime::Years(10));
  ExpectSamplingMatchesSurvival(h, SimTime::Years(5), 0.01);
}

TEST(ExponentialHazardTest, MemorylessConditioning) {
  ExponentialHazard h(SimTime::Years(10));
  RandomStream rng(7);
  SummaryStats fresh;
  SummaryStats aged;
  for (int i = 0; i < 30000; ++i) {
    fresh.Add(h.SampleRemainingLife(rng, SimTime()).ToYears());
    aged.Add(h.SampleRemainingLife(rng, SimTime::Years(40)).ToYears());
  }
  EXPECT_NEAR(fresh.mean(), aged.mean(), 0.25);
}

TEST(WeibullHazardTest, MttfGammaFormula) {
  WeibullHazard h(2.0, SimTime::Years(10));
  EXPECT_NEAR(h.Mttf().ToYears(), 10.0 * std::tgamma(1.5), 1e-6);
}

TEST(WeibullHazardTest, ShapeOneIsExponential) {
  WeibullHazard w(1.0, SimTime::Years(10));
  ExponentialHazard e(SimTime::Years(10));
  for (double y : {1.0, 5.0, 20.0}) {
    EXPECT_NEAR(w.Survival(SimTime::Years(y)), e.Survival(SimTime::Years(y)), 1e-9);
  }
}

TEST(WeibullHazardTest, SamplingMatchesSurvival) {
  WeibullHazard h(3.0, SimTime::Years(15));
  ExpectSamplingMatchesSurvival(h, SimTime::Years(12), 0.015);
}

TEST(WeibullHazardTest, WearoutConditioningShortensRemainingLife) {
  // For shape > 1 (wear-out), an aged item has less remaining life.
  WeibullHazard h(4.0, SimTime::Years(15));
  RandomStream rng(11);
  SummaryStats fresh;
  SummaryStats aged;
  for (int i = 0; i < 20000; ++i) {
    fresh.Add(h.SampleRemainingLife(rng, SimTime()).ToYears());
    aged.Add(h.SampleRemainingLife(rng, SimTime::Years(12)).ToYears());
  }
  EXPECT_LT(aged.mean(), fresh.mean() * 0.5);
}

TEST(WeibullHazardTest, InfantMortalityConditioningExtendsLife) {
  // For shape < 1, surviving burn-in implies a longer remaining life.
  WeibullHazard h(0.5, SimTime::Years(10));
  RandomStream rng(13);
  SummaryStats fresh;
  SummaryStats aged;
  for (int i = 0; i < 20000; ++i) {
    fresh.Add(h.SampleRemainingLife(rng, SimTime()).ToYears());
    aged.Add(h.SampleRemainingLife(rng, SimTime::Years(5)).ToYears());
  }
  EXPECT_GT(aged.mean(), fresh.mean());
}

TEST(WeibullHazardTest, ConditionalSamplingMatchesConditionalSurvival) {
  // P(T > a + t | T > a) = S(a+t)/S(a).
  WeibullHazard h(3.0, SimTime::Years(15));
  const SimTime age = SimTime::Years(10);
  const SimTime extra = SimTime::Years(4);
  RandomStream rng(17);
  int survived = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    if (h.SampleRemainingLife(rng, age) > extra) {
      ++survived;
    }
  }
  const double expected = h.Survival(age + extra) / h.Survival(age);
  EXPECT_NEAR(static_cast<double>(survived) / n, expected, 0.01);
}

TEST(BathtubHazardTest, SurvivalIsProductOfPhases) {
  BathtubHazard::Params p;
  BathtubHazard h(p);
  const SimTime t = SimTime::Years(8);
  const double s = h.Survival(t);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
  // Survival must be below each individual phase's survival.
  EXPECT_LE(s, WeibullHazard(p.wearout_shape, p.wearout_scale).Survival(t) + 1e-12);
}

TEST(BathtubHazardTest, SamplingMatchesSurvival) {
  BathtubHazard::Params p;
  p.wearout_scale = SimTime::Years(12);
  BathtubHazard h(p);
  ExpectSamplingMatchesSurvival(h, SimTime::Years(10), 0.015);
}

TEST(BathtubHazardTest, MttfIntegralIsBelowWearoutScale) {
  BathtubHazard::Params p;
  p.wearout_scale = SimTime::Years(15);
  BathtubHazard h(p);
  EXPECT_LT(h.Mttf().ToYears(), 15.0);
  EXPECT_GT(h.Mttf().ToYears(), 3.0);
}

TEST(NeverFailsTest, Properties) {
  NeverFails h;
  RandomStream rng(1);
  EXPECT_EQ(h.SampleLife(rng), SimTime::Max());
  EXPECT_DOUBLE_EQ(h.Survival(SimTime::Years(1000)), 1.0);
}

class WeibullShapeSweep : public ::testing::TestWithParam<double> {};

TEST_P(WeibullShapeSweep, MedianMatchesClosedForm) {
  const double shape = GetParam();
  WeibullHazard h(shape, SimTime::Years(20));
  // Median = scale * ln(2)^(1/k).
  const double median = 20.0 * std::pow(std::log(2.0), 1.0 / shape);
  EXPECT_NEAR(h.Survival(SimTime::Years(median)), 0.5, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, WeibullShapeSweep, ::testing::Values(0.5, 1.0, 2.0, 3.5, 5.0));

}  // namespace
}  // namespace centsim
