// Cross-cutting property sweeps (TEST_P) over parameter spaces that the
// single-point tests do not cover.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/radio/link_budget.h"
#include "src/radio/lora.h"
#include "src/reliability/component.h"
#include "src/reliability/hazard.h"
#include "src/sim/random.h"
#include "src/sim/scheduler.h"
#include "src/sim/stats.h"

namespace centsim {
namespace {

// --- LoRa PER monotonicity across every SF ------------------------------

class LoraSfSweep : public ::testing::TestWithParam<LoraSf> {};

TEST_P(LoraSfSweep, PerMonotoneNonIncreasingInPower) {
  const LoraSf sf = GetParam();
  double prev = 1.1;
  for (double dbm = -150.0; dbm <= -90.0; dbm += 1.0) {
    const double per = LoraPhy::PacketErrorRate(sf, dbm);
    EXPECT_LE(per, prev + 1e-12) << "at " << dbm << " dBm";
    prev = per;
  }
}

TEST_P(LoraSfSweep, AirtimeMonotoneInPayload) {
  LoraConfig cfg;
  cfg.sf = GetParam();
  SimTime prev;
  for (size_t payload = 1; payload <= 64; payload += 7) {
    const SimTime t = LoraPhy::Airtime(cfg, payload);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST_P(LoraSfSweep, SensitivityBelowNoiseFloorForHighSf) {
  const LoraSf sf = GetParam();
  const double sens = LoraPhy::SensitivityDbm(sf);
  // All LoRa SFs demodulate below the 125 kHz noise floor + 0 dB.
  EXPECT_LT(sens, NoiseFloorDbm(125e3, 6.0) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllSfs, LoraSfSweep,
                         ::testing::Values(LoraSf::kSf7, LoraSf::kSf8, LoraSf::kSf9,
                                           LoraSf::kSf10, LoraSf::kSf11, LoraSf::kSf12));

// --- Series systems: more components never help -------------------------

class SeriesGrowth : public ::testing::TestWithParam<int> {};

TEST_P(SeriesGrowth, AddingComponentsNeverImprovesSurvival) {
  const int extra = GetParam();
  SeriesSystem base;
  base.Add(MakeMicrocontroller());
  SeriesSystem grown = base;
  for (int i = 0; i < extra; ++i) {
    grown.Add(MakeConnectorSolder());
  }
  for (double y : {5.0, 15.0, 30.0}) {
    EXPECT_LE(grown.Survival(SimTime::Years(y)), base.Survival(SimTime::Years(y)) + 1e-12);
  }
  EXPECT_LE(grown.Mttf().ToYears(), base.Mttf().ToYears() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Growth, SeriesGrowth, ::testing::Values(1, 2, 4, 8));

// --- Scheduler stress: random interleaving vs reference ordering --------

class SchedulerStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerStress, RandomScheduleCancelsStayConsistent) {
  const uint64_t seed = GetParam();
  RandomStream rng(seed);
  Scheduler sched;
  std::vector<std::pair<SimTime, int>> fired;
  std::vector<EventId> ids;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const SimTime at = SimTime::Micros(static_cast<int64_t>(rng.NextBelow(100000)));
    ids.push_back(sched.ScheduleAt(at, [&fired, at, i] { fired.push_back({at, i}); }));
  }
  // Cancel a random third.
  int cancelled = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(1.0 / 3.0)) {
      ASSERT_TRUE(sched.Cancel(ids[i]));
      ++cancelled;
    }
  }
  sched.RunUntil(SimTime::Seconds(1));
  EXPECT_EQ(fired.size(), static_cast<size_t>(n - cancelled));
  // Fired order must be non-decreasing in time.
  for (size_t i = 1; i < fired.size(); ++i) {
    EXPECT_GE(fired[i].first, fired[i - 1].first);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerStress, ::testing::Values(1u, 17u, 99u, 1234u));

// --- Histogram quantiles track exact quantiles ---------------------------

class QuantileAgreement : public ::testing::TestWithParam<double> {};

TEST_P(QuantileAgreement, HistogramNearExactForNormalData) {
  const double q = GetParam();
  RandomStream rng(7);
  Histogram hist(-5.0, 5.0, 400);
  SampleSet exact;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.Normal(0.0, 1.0);
    hist.Add(v);
    exact.Add(v);
  }
  EXPECT_NEAR(hist.Quantile(q), exact.Quantile(q), 0.05) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Quantiles, QuantileAgreement,
                         ::testing::Values(0.05, 0.25, 0.5, 0.75, 0.95));

// --- Weibull conditional-draw property across shapes ---------------------

class WeibullConditional : public ::testing::TestWithParam<double> {};

TEST_P(WeibullConditional, RemainingLifeMatchesConditionalSurvival) {
  const double shape = GetParam();
  WeibullHazard h(shape, SimTime::Years(12));
  const SimTime age = SimTime::Years(6);
  const SimTime extra = SimTime::Years(3);
  RandomStream rng(31);
  int survived = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (h.SampleRemainingLife(rng, age) > extra) {
      ++survived;
    }
  }
  const double expected = h.Survival(age + extra) / h.Survival(age);
  EXPECT_NEAR(static_cast<double>(survived) / n, expected, 0.012);
}

INSTANTIATE_TEST_SUITE_P(Shapes, WeibullConditional, ::testing::Values(0.6, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace centsim
