// Validation: the analytic contention models (used at fleet scale) against
// the exact SharedMedium packet-level simulation (used at packet scale).
// If these diverge, the fleet results are built on sand.

#include <gtest/gtest.h>

#include <vector>

#include "src/radio/lora.h"
#include "src/radio/medium.h"
#include "src/sim/random.h"

namespace centsim {
namespace {

// Simulates Poisson frame arrivals on one channel with equal receive power
// (no capture) and measures the fraction of frames with no overlap.
double ExactAlohaSuccess(double arrival_rate_hz, SimTime airtime, double horizon_s,
                         uint64_t seed) {
  RandomStream rng(seed);
  struct Frame {
    double start;
    double end;
  };
  std::vector<Frame> frames;
  double t = 0.0;
  while (true) {
    t += rng.Exponential(1.0 / arrival_rate_hz);
    if (t > horizon_s) {
      break;
    }
    frames.push_back({t, t + airtime.ToSeconds()});
  }
  if (frames.empty()) {
    return 1.0;
  }
  uint64_t clean = 0;
  for (size_t i = 0; i < frames.size(); ++i) {
    bool overlapped = false;
    // Only neighbors can overlap (sorted arrivals).
    for (size_t j = i; j-- > 0;) {
      if (frames[j].end <= frames[i].start) {
        break;
      }
      overlapped = true;
      break;
    }
    if (!overlapped && i + 1 < frames.size() && frames[i + 1].start < frames[i].end) {
      overlapped = true;
    }
    if (!overlapped) {
      ++clean;
    }
  }
  return static_cast<double>(clean) / frames.size();
}

class AlohaValidation : public ::testing::TestWithParam<double> {};

TEST_P(AlohaValidation, AnalyticMatchesPacketLevel) {
  const double g = GetParam();  // Normalized offered load.
  LoraConfig cfg;
  cfg.sf = LoraSf::kSf9;
  const SimTime airtime = LoraPhy::Airtime(cfg, 12);
  const double rate_hz = g / airtime.ToSeconds();
  const double exact = ExactAlohaSuccess(rate_hz, airtime, /*horizon_s=*/20000.0, 99);
  const double analytic = AlohaModel::SuccessProbability(rate_hz, airtime);
  EXPECT_NEAR(exact, analytic, 0.02) << "G=" << g;
}

INSTANTIATE_TEST_SUITE_P(Loads, AlohaValidation, ::testing::Values(0.01, 0.05, 0.1, 0.3, 0.6));

TEST(MediumValidationTest, SharedMediumAgreesWithPairwiseOverlapCount) {
  // Drive the SharedMedium with the same arrival process and check its
  // per-frame verdicts against the direct overlap computation.
  RandomStream rng(7);
  LoraConfig cfg;
  cfg.sf = LoraSf::kSf9;
  const SimTime airtime = LoraPhy::Airtime(cfg, 12);
  const double rate_hz = 0.2 / airtime.ToSeconds();

  SharedMedium medium;
  std::vector<SharedMedium::Transmission> txs;
  double t = 0.0;
  uint64_t id = 0;
  while (t < 50000.0) {
    t += rng.Exponential(1.0 / rate_hz);
    SharedMedium::Transmission tx;
    tx.start = SimTime::Seconds(t);
    tx.end = tx.start + airtime;
    tx.channel = 1;
    tx.rx_power_dbm = -80.0;  // Equal power: no capture possible.
    tx.tx_id = ++id;
    medium.Register(tx);
    txs.push_back(tx);
  }
  uint64_t medium_clean = 0;
  for (const auto& tx : txs) {
    if (medium.Delivered(tx, /*capture_margin_db=*/6.0)) {
      ++medium_clean;
    }
  }
  uint64_t direct_clean = 0;
  for (size_t i = 0; i < txs.size(); ++i) {
    bool overlap = (i > 0 && txs[i - 1].end > txs[i].start) ||
                   (i + 1 < txs.size() && txs[i + 1].start < txs[i].end);
    direct_clean += overlap ? 0 : 1;
  }
  EXPECT_EQ(medium_clean, direct_clean);
}

}  // namespace
}  // namespace centsim
