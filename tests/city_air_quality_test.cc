#include "src/city/air_quality.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace centsim {
namespace {

PollutionField MakeField(uint64_t seed = 1) {
  PollutionField::Params p;
  return PollutionField(p, RandomStream(seed));
}

TEST(PollutionFieldTest, BackgroundFarFromSources) {
  const auto field = MakeField();
  EXPECT_NEAR(field.ConcentrationAt(-1e7, -1e7), 8.0, 1e-6);
}

TEST(PollutionFieldTest, ConcentrationAboveBackgroundInside) {
  const auto field = MakeField();
  double max_c = 0.0;
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 20; ++j) {
      max_c = std::max(max_c, field.ConcentrationAt(i * field.side_m() / 20.0,
                                                    j * field.side_m() / 20.0));
    }
  }
  EXPECT_GT(max_c, 16.0);  // Hotspots exceed 2x background.
}

TEST(PollutionFieldTest, LocalityAtBlockScale) {
  // The paper's point: pollution varies at city-block (~100 m) scale.
  const auto field = MakeField();
  double max_gradient = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double x = i * field.side_m() / 200.0;
    const double a = field.ConcentrationAt(x, field.side_m() / 2);
    const double b = field.ConcentrationAt(x + 100.0, field.side_m() / 2);
    max_gradient = std::max(max_gradient, std::abs(a - b));
  }
  EXPECT_GT(max_gradient, 3.0);  // >3 ug/m^3 across one block somewhere.
}

TEST(DensityTest, ZeroSensorsZeroRecallMetrics) {
  const auto field = MakeField();
  const auto result = EvaluateSensorDensity(field, 0, RandomStream(2));
  EXPECT_EQ(result.sensor_count, 0u);
  EXPECT_DOUBLE_EQ(result.mean_abs_error, 0.0);  // No reconstruction made.
}

TEST(DensityTest, ErrorFallsWithDensity) {
  const auto field = MakeField();
  const auto sparse = EvaluateSensorDensity(field, 10, RandomStream(3));
  const auto medium = EvaluateSensorDensity(field, 100, RandomStream(3));
  const auto dense = EvaluateSensorDensity(field, 1000, RandomStream(3));
  EXPECT_GT(sparse.mean_abs_error, medium.mean_abs_error);
  EXPECT_GT(medium.mean_abs_error, dense.mean_abs_error);
}

TEST(DensityTest, HotspotRecallRisesWithDensity) {
  const auto field = MakeField();
  const auto sparse = EvaluateSensorDensity(field, 10, RandomStream(4));
  const auto dense = EvaluateSensorDensity(field, 2000, RandomStream(4));
  EXPECT_GT(dense.hotspot_recall, sparse.hotspot_recall);
  EXPECT_GT(dense.hotspot_recall, 0.8);
}

TEST(DensityTest, SensorsPerKm2Computed) {
  const auto field = MakeField();
  const auto result = EvaluateSensorDensity(field, 250, RandomStream(5));
  EXPECT_NEAR(result.sensors_per_km2, 10.0, 0.01);  // 250 over 25 km^2.
}

TEST(DensityTest, DeterministicPerSeed) {
  const auto field = MakeField();
  const auto a = EvaluateSensorDensity(field, 100, RandomStream(6));
  const auto b = EvaluateSensorDensity(field, 100, RandomStream(6));
  EXPECT_DOUBLE_EQ(a.mean_abs_error, b.mean_abs_error);
  EXPECT_DOUBLE_EQ(a.hotspot_recall, b.hotspot_recall);
}

}  // namespace
}  // namespace centsim
