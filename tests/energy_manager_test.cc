#include "src/energy/energy_manager.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace centsim {
namespace {

LoadProfile TestLoad() {
  LoadProfile load;
  load.sleep_power_w = 1e-6;
  load.tx_energy_j = 0.010;
  load.brownout_reserve_j = 0.05;
  return load;
}

EnergyManager MakeManager(double harvest_w, double capacity_j = 10.0) {
  EnergyStorage::Params p;
  p.capacity_j = capacity_j;
  p.initial_fraction = 0.5;
  p.charge_efficiency = 1.0;
  p.self_discharge_per_day = 0.0;
  p.capacity_fade_per_year = 0.0;
  // Constant-output harvester for precise accounting.
  return EnergyManager(HarvesterModel::Constant(harvest_w), EnergyStorage(p), TestLoad());
}

TEST(EnergyManagerTest, SustainableRateFromSurplus) {
  // 1 mW harvest, 1 uW sleep -> ~0.999 mW surplus -> 86.3 J/day -> 8630 tx.
  EnergyManager mgr = MakeManager(1e-3);
  EXPECT_NEAR(mgr.SustainableTxPerDay(), (1e-3 - 1e-6) * 86400.0 / 0.010, 1.0);
  const auto interval = mgr.SustainableInterval();
  ASSERT_TRUE(interval.has_value());
  EXPECT_NEAR(interval->ToSeconds(), 86400.0 / mgr.SustainableTxPerDay(), 1.0);
}

TEST(EnergyManagerTest, DeadHarvesterIsUnsustainable) {
  EnergyManager mgr = MakeManager(0.0);
  EXPECT_DOUBLE_EQ(mgr.SustainableTxPerDay(), 0.0);
  EXPECT_FALSE(mgr.SustainableInterval().has_value());
}

TEST(EnergyManagerTest, TransmitDeductsEnergy) {
  EnergyManager mgr = MakeManager(0.0);  // No harvest; draw down storage.
  const double before = mgr.storage().charge_j();
  EXPECT_TRUE(mgr.TryTransmit(SimTime::Seconds(1)));
  EXPECT_NEAR(mgr.storage().charge_j(), before - 0.010 - 1e-6, 1e-6);
  EXPECT_EQ(mgr.tx_granted(), 1u);
}

TEST(EnergyManagerTest, RefusesBelowReserve) {
  EnergyManager mgr = MakeManager(0.0, /*capacity_j=*/0.11);  // 0.055 J stored.
  // First tx: 0.055 >= 0.010 + 0.05 reserve? 0.055 < 0.06 -> refused.
  EXPECT_FALSE(mgr.TryTransmit(SimTime::Seconds(1)));
  EXPECT_EQ(mgr.tx_denied(), 1u);
}

TEST(EnergyManagerTest, HarvestRefillsBetweenEvents) {
  EnergyManager mgr = MakeManager(1e-3, /*capacity_j=*/1.0);  // 0.5 J stored.
  // Drain close to empty.
  for (int i = 0; i < 40; ++i) {
    mgr.TryTransmit(SimTime::Seconds(i + 1));
  }
  const double low = mgr.storage().charge_j();
  // One hour of 1 mW harvest = 3.6 J, clipped at 1 J capacity.
  EXPECT_TRUE(mgr.TryTransmit(SimTime::Hours(2)));
  EXPECT_GT(mgr.storage().charge_j(), low);
}

TEST(EnergyManagerTest, SleepFloorDrainsOverLongIdle) {
  EnergyManager mgr = MakeManager(0.0, /*capacity_j=*/10.0);  // 5 J stored.
  mgr.AdvanceTo(SimTime::Days(30));
  // 1 uW * 30 d = 2.59 J drained.
  EXPECT_NEAR(mgr.storage().charge_j(), 5.0 - 1e-6 * 30 * 86400, 1e-3);
}

TEST(EnergyManagerTest, EstimateNextAffordableImmediateWhenCharged) {
  EnergyManager mgr = MakeManager(1e-3);
  const SimTime now = SimTime::Hours(1);
  mgr.AdvanceTo(now);
  EXPECT_EQ(mgr.EstimateNextAffordable(now, 0.010), now);
}

TEST(EnergyManagerTest, EstimateNextAffordableInFutureWhenDepleted) {
  EnergyManager mgr = MakeManager(1e-3, /*capacity_j=*/0.12);
  SimTime now = SimTime::Seconds(1);
  // Drain.
  while (mgr.TryTransmit(now)) {
    now += SimTime::Seconds(1);
  }
  const SimTime eta = mgr.EstimateNextAffordable(now, 0.010);
  EXPECT_GT(eta, now);
}

TEST(EnergyManagerTest, EnergyNeutralOperationOverYears) {
  // Property: at the sustainable rate, the device keeps transmitting for a
  // simulated decade without running dry.
  EnergyManager mgr = MakeManager(1e-4, /*capacity_j=*/20.0);
  const double per_day = mgr.SustainableTxPerDay() * 0.8;  // 20% margin.
  const SimTime interval = SimTime::Days(1.0 / per_day);
  SimTime now;
  uint64_t denied = 0;
  for (int i = 0; i < 3650 && now < SimTime::Years(10); ++i) {
    now += interval;
    if (!mgr.TryTransmit(now)) {
      ++denied;
    }
  }
  EXPECT_EQ(denied, 0u);
}

// --- EnergyOps::FastForwardTo (sampled-engine bulk advance) -----------------

struct FastForwardRig {
  HarvesterModel harvester = HarvesterModel::Solar(SolarHarvester::Params{});
  EnergyStorage::Params storage;
  LoadProfile load;
  EnergyStorage::State state = EnergyStorage::InitialState(storage);
  SimTime last_advance;
  EnergyCounters counters;
  EnergyMetricHooks hooks;  // All null: the fleet's untracked configuration.
};

TEST(EnergyFastForwardTest, ZeroLengthIsBitIdenticalNoOp) {
  FastForwardRig rig;
  // Put the state somewhere non-trivial first.
  EnergyOps::FastForwardTo(rig.harvester, rig.storage, rig.load, rig.state, rig.last_advance,
                           rig.counters, rig.hooks, SimTime::Days(93) + SimTime::Hours(5),
                           SimTime::Hours(2));
  const EnergyStorage::State before = rig.state;
  const SimTime advance_before = rig.last_advance;
  const EnergyCounters counters_before = rig.counters;

  // to == last_advance and to < last_advance: nothing may move, bit for bit.
  for (const SimTime to : {rig.last_advance, rig.last_advance - SimTime::Days(1)}) {
    const FastForwardResult res =
        EnergyOps::FastForwardTo(rig.harvester, rig.storage, rig.load, rig.state,
                                 rig.last_advance, rig.counters, rig.hooks, to, SimTime::Hours(2));
    EXPECT_EQ(res.harvested_j, 0.0);
    EXPECT_EQ(res.attempts, 0u);
    EXPECT_EQ(res.granted, 0u);
    EXPECT_EQ(res.denied, 0u);
    EXPECT_EQ(rig.state.charge_j, before.charge_j);
    EXPECT_EQ(rig.state.capacity_now_j, before.capacity_now_j);
    EXPECT_EQ(rig.state.last_update, before.last_update);
    EXPECT_EQ(rig.last_advance, advance_before);
    EXPECT_EQ(rig.counters.tx_granted, counters_before.tx_granted);
    EXPECT_EQ(rig.counters.tx_denied, counters_before.tx_denied);
  }
}

TEST(EnergyFastForwardTest, HarvestsTheClosedFormIntegral) {
  FastForwardRig rig;
  const SimTime to = SimTime::Years(2) + SimTime::Days(3);
  const double expected = rig.harvester.EnergyOverAnalytic(SimTime(), to);
  const FastForwardResult res = EnergyOps::FastForwardTo(
      rig.harvester, rig.storage, rig.load, rig.state, rig.last_advance, rig.counters, rig.hooks,
      to, SimTime());  // No transmit duty cycle.
  EXPECT_DOUBLE_EQ(res.harvested_j, expected);
  EXPECT_EQ(res.attempts, 0u);
  EXPECT_EQ(rig.last_advance, to);
  EXPECT_EQ(rig.state.last_update, to);
  EXPECT_GE(rig.state.charge_j, 0.0);
  EXPECT_LE(rig.state.charge_j, rig.state.capacity_now_j);
}

TEST(EnergyFastForwardTest, AbundantEnergyGrantsEveryAttemptLikeDetailed) {
  // A well-fed node: the detailed TryTransmit loop grants every attempt,
  // and the bulk advance must agree exactly on the attempt/grant counts.
  FastForwardRig detailed;
  FastForwardRig fast;
  const SimTime interval = SimTime::Hours(6);
  const SimTime horizon = SimTime::Years(1);

  uint64_t detailed_grants = 0;
  uint64_t detailed_attempts = 0;
  for (SimTime t = interval; t <= horizon; t += interval) {
    ++detailed_attempts;
    if (EnergyOps::TryTransmit(detailed.harvester, detailed.storage, detailed.load,
                               detailed.state, detailed.last_advance, detailed.counters,
                               detailed.hooks, t)) {
      ++detailed_grants;
    }
  }
  EXPECT_EQ(detailed_grants, detailed_attempts);  // Premise: energy-neutral.

  const FastForwardResult res = EnergyOps::FastForwardTo(
      fast.harvester, fast.storage, fast.load, fast.state, fast.last_advance, fast.counters,
      fast.hooks, horizon, interval);
  EXPECT_EQ(res.attempts, detailed_attempts);
  EXPECT_EQ(res.granted, detailed_grants);
  EXPECT_EQ(res.denied, 0u);
  EXPECT_EQ(fast.counters.tx_granted, detailed.counters.tx_granted);
  // Charge parity is approximate: the detailed loop integrated each
  // 6-hour hop with the trapezoid, the bulk advance used the closed form.
  EXPECT_NEAR(fast.state.charge_j, detailed.state.charge_j,
              0.05 * detailed.storage.capacity_j);
}

TEST(EnergyFastForwardTest, StarvedNodeDeniesInExpectationLikeDetailed) {
  // A starved node (weak harvester, hungry radio): grants are limited by
  // harvest, so the expected-outcome accounting must track the detailed
  // loop's grant totals within a few percent.
  FastForwardRig detailed;
  detailed.harvester = HarvesterModel::Constant(4e-6);  // Barely above sleep.
  detailed.load.tx_energy_j = 0.02;  // ~4x the sustainable budget.
  // Start near empty: a large opening buffer decays differently under the
  // two paths' self-discharge treatments and isn't what this test pins.
  detailed.storage.initial_fraction = 0.02;
  detailed.state = EnergyStorage::InitialState(detailed.storage);
  FastForwardRig fast;
  fast.harvester = detailed.harvester;
  fast.load = detailed.load;
  fast.storage = detailed.storage;
  fast.state = detailed.state;

  const SimTime interval = SimTime::Hours(1);
  const SimTime horizon = SimTime::Years(1);
  for (SimTime t = interval; t <= horizon; t += interval) {
    EnergyOps::TryTransmit(detailed.harvester, detailed.storage, detailed.load, detailed.state,
                           detailed.last_advance, detailed.counters, detailed.hooks, t);
  }
  const FastForwardResult res = EnergyOps::FastForwardTo(
      fast.harvester, fast.storage, fast.load, fast.state, fast.last_advance, fast.counters,
      fast.hooks, horizon, interval);

  ASSERT_GT(detailed.counters.tx_denied, 0u);  // Premise: genuinely starved.
  ASSERT_GT(detailed.counters.tx_granted, 0u);
  EXPECT_EQ(res.attempts, detailed.counters.tx_granted + detailed.counters.tx_denied);
  const double detailed_grants = static_cast<double>(detailed.counters.tx_granted);
  const double fast_grants = static_cast<double>(res.granted);
  EXPECT_LT(std::fabs(fast_grants - detailed_grants) / detailed_grants, 0.05)
      << "detailed " << detailed_grants << " fast " << fast_grants;
}

TEST(EnergyFastForwardTest, SplitSpanMatchesSingleSpan) {
  // Fast-forwarding [0, T) in one call or in several back-to-back calls
  // lands on the same state — the property that lets the sampled engine
  // place windows anywhere.
  FastForwardRig one;
  FastForwardRig split;
  const SimTime horizon = SimTime::Years(1);
  EnergyOps::FastForwardTo(one.harvester, one.storage, one.load, one.state, one.last_advance,
                           one.counters, one.hooks, horizon, SimTime());
  for (int step = 1; step <= 4; ++step) {
    EnergyOps::FastForwardTo(split.harvester, split.storage, split.load, split.state,
                             split.last_advance, split.counters, split.hooks,
                             SimTime::Micros(horizon.micros() * step / 4), SimTime());
  }
  EXPECT_EQ(split.last_advance, one.last_advance);
  EXPECT_NEAR(split.state.charge_j, one.state.charge_j, 1e-9 * one.storage.capacity_j);
  EXPECT_NEAR(split.state.capacity_now_j, one.state.capacity_now_j,
              1e-9 * one.storage.capacity_j);
}

}  // namespace
}  // namespace centsim
