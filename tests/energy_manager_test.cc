#include "src/energy/energy_manager.h"

#include <gtest/gtest.h>

#include <memory>

namespace centsim {
namespace {

LoadProfile TestLoad() {
  LoadProfile load;
  load.sleep_power_w = 1e-6;
  load.tx_energy_j = 0.010;
  load.brownout_reserve_j = 0.05;
  return load;
}

EnergyManager MakeManager(double harvest_w, double capacity_j = 10.0) {
  EnergyStorage::Params p;
  p.capacity_j = capacity_j;
  p.initial_fraction = 0.5;
  p.charge_efficiency = 1.0;
  p.self_discharge_per_day = 0.0;
  p.capacity_fade_per_year = 0.0;
  // Constant-output harvester for precise accounting.
  return EnergyManager(HarvesterModel::Constant(harvest_w), EnergyStorage(p), TestLoad());
}

TEST(EnergyManagerTest, SustainableRateFromSurplus) {
  // 1 mW harvest, 1 uW sleep -> ~0.999 mW surplus -> 86.3 J/day -> 8630 tx.
  EnergyManager mgr = MakeManager(1e-3);
  EXPECT_NEAR(mgr.SustainableTxPerDay(), (1e-3 - 1e-6) * 86400.0 / 0.010, 1.0);
  const auto interval = mgr.SustainableInterval();
  ASSERT_TRUE(interval.has_value());
  EXPECT_NEAR(interval->ToSeconds(), 86400.0 / mgr.SustainableTxPerDay(), 1.0);
}

TEST(EnergyManagerTest, DeadHarvesterIsUnsustainable) {
  EnergyManager mgr = MakeManager(0.0);
  EXPECT_DOUBLE_EQ(mgr.SustainableTxPerDay(), 0.0);
  EXPECT_FALSE(mgr.SustainableInterval().has_value());
}

TEST(EnergyManagerTest, TransmitDeductsEnergy) {
  EnergyManager mgr = MakeManager(0.0);  // No harvest; draw down storage.
  const double before = mgr.storage().charge_j();
  EXPECT_TRUE(mgr.TryTransmit(SimTime::Seconds(1)));
  EXPECT_NEAR(mgr.storage().charge_j(), before - 0.010 - 1e-6, 1e-6);
  EXPECT_EQ(mgr.tx_granted(), 1u);
}

TEST(EnergyManagerTest, RefusesBelowReserve) {
  EnergyManager mgr = MakeManager(0.0, /*capacity_j=*/0.11);  // 0.055 J stored.
  // First tx: 0.055 >= 0.010 + 0.05 reserve? 0.055 < 0.06 -> refused.
  EXPECT_FALSE(mgr.TryTransmit(SimTime::Seconds(1)));
  EXPECT_EQ(mgr.tx_denied(), 1u);
}

TEST(EnergyManagerTest, HarvestRefillsBetweenEvents) {
  EnergyManager mgr = MakeManager(1e-3, /*capacity_j=*/1.0);  // 0.5 J stored.
  // Drain close to empty.
  for (int i = 0; i < 40; ++i) {
    mgr.TryTransmit(SimTime::Seconds(i + 1));
  }
  const double low = mgr.storage().charge_j();
  // One hour of 1 mW harvest = 3.6 J, clipped at 1 J capacity.
  EXPECT_TRUE(mgr.TryTransmit(SimTime::Hours(2)));
  EXPECT_GT(mgr.storage().charge_j(), low);
}

TEST(EnergyManagerTest, SleepFloorDrainsOverLongIdle) {
  EnergyManager mgr = MakeManager(0.0, /*capacity_j=*/10.0);  // 5 J stored.
  mgr.AdvanceTo(SimTime::Days(30));
  // 1 uW * 30 d = 2.59 J drained.
  EXPECT_NEAR(mgr.storage().charge_j(), 5.0 - 1e-6 * 30 * 86400, 1e-3);
}

TEST(EnergyManagerTest, EstimateNextAffordableImmediateWhenCharged) {
  EnergyManager mgr = MakeManager(1e-3);
  const SimTime now = SimTime::Hours(1);
  mgr.AdvanceTo(now);
  EXPECT_EQ(mgr.EstimateNextAffordable(now, 0.010), now);
}

TEST(EnergyManagerTest, EstimateNextAffordableInFutureWhenDepleted) {
  EnergyManager mgr = MakeManager(1e-3, /*capacity_j=*/0.12);
  SimTime now = SimTime::Seconds(1);
  // Drain.
  while (mgr.TryTransmit(now)) {
    now += SimTime::Seconds(1);
  }
  const SimTime eta = mgr.EstimateNextAffordable(now, 0.010);
  EXPECT_GT(eta, now);
}

TEST(EnergyManagerTest, EnergyNeutralOperationOverYears) {
  // Property: at the sustainable rate, the device keeps transmitting for a
  // simulated decade without running dry.
  EnergyManager mgr = MakeManager(1e-4, /*capacity_j=*/20.0);
  const double per_day = mgr.SustainableTxPerDay() * 0.8;  // 20% margin.
  const SimTime interval = SimTime::Days(1.0 / per_day);
  SimTime now;
  uint64_t denied = 0;
  for (int i = 0; i < 3650 && now < SimTime::Years(10); ++i) {
    now += interval;
    if (!mgr.TryTransmit(now)) {
      ++denied;
    }
  }
  EXPECT_EQ(denied, 0u);
}

}  // namespace
}  // namespace centsim
