#include "src/net/helium.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace centsim {
namespace {

HeliumPopulation MakeDefault(uint64_t seed = 1) {
  HeliumPopulation::Params p;
  return HeliumPopulation(p, RandomStream(seed));
}

TEST(HeliumTest, PopulationSizeMatches) {
  const auto pop = MakeDefault();
  EXPECT_EQ(pop.hotspots().size(), 12400u);
}

TEST(HeliumTest, TopTenShareNearPaperMeasurement) {
  // Paper footnote 5: "50% of nodes belong to just ten ASes".
  const auto pop = MakeDefault();
  EXPECT_NEAR(pop.TopAsShare(10), 0.50, 0.03);
}

TEST(HeliumTest, LongTailNearTwoHundredAses) {
  // "...the long tail extends to nearly 200 unique ASes".
  const auto pop = MakeDefault();
  EXPECT_GE(pop.UniqueAsCount(), 180u);
  EXPECT_LE(pop.UniqueAsCount(), 200u);
}

TEST(HeliumTest, CensusSortedDescendingAndSumsToPopulation) {
  const auto pop = MakeDefault();
  const auto census = pop.AsCensus();
  uint64_t total = 0;
  uint32_t prev = UINT32_MAX;
  for (uint32_t c : census) {
    EXPECT_LE(c, prev);
    prev = c;
    total += c;
  }
  EXPECT_EQ(total, 12400u);
}

TEST(HeliumTest, TopShareMonotoneInK) {
  const auto pop = MakeDefault();
  double prev = 0.0;
  for (uint32_t k : {1u, 5u, 10u, 50u, 200u}) {
    const double share = pop.TopAsShare(k);
    EXPECT_GE(share, prev);
    prev = share;
  }
  EXPECT_DOUBLE_EQ(pop.TopAsShare(10000), 1.0);
}

TEST(HeliumTest, HotspotsSpreadOverRegion) {
  const auto pop = MakeDefault();
  double max_x = 0.0;
  for (const auto& h : pop.hotspots()) {
    EXPECT_GE(h.x_m, 0.0);
    EXPECT_LE(h.x_m, 60000.0);
    max_x = std::max(max_x, h.x_m);
  }
  EXPECT_GT(max_x, 30000.0);
}

TEST(HeliumTest, DifferentSeedsDifferentDraws) {
  const auto a = MakeDefault(1);
  const auto b = MakeDefault(2);
  // Same aggregate shape, different realizations.
  EXPECT_NEAR(a.TopAsShare(10), b.TopAsShare(10), 0.05);
  bool any_diff = false;
  for (size_t i = 0; i < 100; ++i) {
    any_diff |= a.hotspots()[i].as_rank != b.hotspots()[i].as_rank;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace centsim
