#include "src/mgmt/succession.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

TEST(SuccessionTest, FiftyYearsHasMultipleHandovers) {
  // §4.5: "those who start it will most likely be retired by the time it
  // is complete" — with ~9-year median tenures, 50 years sees several
  // custodians.
  SuccessionParams params;
  const auto report = SimulateSuccession(params, SimTime::Years(50), RandomStream(1));
  EXPECT_GE(report.handovers, 2u);
  EXPECT_LE(report.handovers, 12u);
  EXPECT_EQ(report.eras.size(), report.handovers + 1);
}

TEST(SuccessionTest, ExpectedHandoversFormula) {
  SuccessionParams params;
  params.median_tenure_years = 10.0;
  params.tenure_sigma = 0.0;  // Deterministic tenures.
  EXPECT_NEAR(ExpectedHandovers(params, SimTime::Years(50)), 5.0, 1e-9);
}

TEST(SuccessionTest, ErasCoverHorizonContiguously) {
  SuccessionParams params;
  const auto report = SimulateSuccession(params, SimTime::Years(50), RandomStream(2));
  SimTime expected_start;
  for (const auto& era : report.eras) {
    EXPECT_EQ(era.start, expected_start);
    EXPECT_GT(era.end, era.start);
    expected_start = era.end;
  }
  EXPECT_EQ(report.eras.back().end, SimTime::Years(50));
}

TEST(SuccessionTest, KnowledgeNeverIncreasesWithoutDiary) {
  SuccessionParams params;
  params.diary_maintained = false;
  const auto report = SimulateSuccession(params, SimTime::Years(80), RandomStream(3));
  double prev = 1.0;
  for (const auto& era : report.eras) {
    EXPECT_LE(era.knowledge_after, prev + 1e-12);
    prev = era.knowledge_after;
  }
}

TEST(SuccessionTest, DiaryPreservesKnowledge) {
  // The paper's living diary is the mitigation: same custodian sequence,
  // higher retained knowledge.
  SuccessionParams with;
  with.diary_maintained = true;
  SuccessionParams without = with;
  without.diary_maintained = false;
  const auto a = SimulateSuccession(with, SimTime::Years(50), RandomStream(4));
  const auto b = SimulateSuccession(without, SimTime::Years(50), RandomStream(4));
  EXPECT_GT(a.final_knowledge, b.final_knowledge);
  EXPECT_GE(a.min_knowledge, b.min_knowledge);
}

TEST(SuccessionTest, KnowledgeAtInterpolatesEras) {
  SuccessionParams params;
  params.tenure_sigma = 0.0;
  params.median_tenure_years = 10.0;
  params.orderly_handover_probability = 1.0;
  params.handover_retention = 0.8;
  params.diary_maintained = false;
  const auto report = SimulateSuccession(params, SimTime::Years(25), RandomStream(5));
  EXPECT_DOUBLE_EQ(report.KnowledgeAt(SimTime::Years(5)), 1.0);
  EXPECT_NEAR(report.KnowledgeAt(SimTime::Years(15)), 0.8, 1e-9);
  EXPECT_NEAR(report.KnowledgeAt(SimTime::Years(24)), 0.64, 1e-9);
}

TEST(SuccessionTest, DeterministicPerSeed) {
  SuccessionParams params;
  const auto a = SimulateSuccession(params, SimTime::Years(50), RandomStream(6));
  const auto b = SimulateSuccession(params, SimTime::Years(50), RandomStream(6));
  EXPECT_EQ(a.handovers, b.handovers);
  EXPECT_DOUBLE_EQ(a.final_knowledge, b.final_knowledge);
}

}  // namespace
}  // namespace centsim
