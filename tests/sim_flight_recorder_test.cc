#include "src/sim/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/sim/alloc_probe.h"
#include "src/telemetry/json.h"
#include "src/telemetry/run_status.h"

namespace centsim {
namespace {

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(1).capacity(), 2u);
  EXPECT_EQ(FlightRecorder(5).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(64).capacity(), 64u);
  EXPECT_EQ(FlightRecorder(65).capacity(), 128u);
}

TEST(FlightRecorderTest, RetainsEverythingBelowCapacity) {
  FlightRecorder recorder(8);
  recorder.Record("alpha", SimTime::Micros(10), 1);
  recorder.Record("beta", SimTime::Micros(20), 2);
  recorder.Record("gamma", SimTime::Micros(30), 3);

  const std::vector<FlightRecorder::Entry> entries = recorder.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].seq, 1u);
  EXPECT_STREQ(entries[0].category, "alpha");
  EXPECT_EQ(entries[0].sim_at.micros(), 10);
  EXPECT_EQ(entries[0].arg, 1u);
  EXPECT_EQ(entries[2].seq, 3u);
  EXPECT_STREQ(entries[2].category, "gamma");
  EXPECT_EQ(recorder.total_recorded(), 3u);
}

TEST(FlightRecorderTest, WraparoundKeepsOnlyTheLastCapacityEntries) {
  FlightRecorder recorder(8);
  ASSERT_EQ(recorder.capacity(), 8u);
  for (uint64_t i = 0; i < 100; ++i) {
    recorder.Record("tick", SimTime::Micros(static_cast<int64_t>(i)), i);
  }
  EXPECT_EQ(recorder.total_recorded(), 100u);

  const std::vector<FlightRecorder::Entry> entries = recorder.Snapshot();
  ASSERT_EQ(entries.size(), 8u);
  // Oldest retained entry is append #93 (seq 93, arg 92), newest #100.
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].seq, 93u + i);
    EXPECT_EQ(entries[i].arg, 92u + i);
    EXPECT_EQ(entries[i].sim_at.micros(), static_cast<int64_t>(92 + i));
  }
  // Wall offsets are monotonic within the window.
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i].wall_ns, entries[i - 1].wall_ns);
  }
}

TEST(FlightRecorderTest, SteadyStateAppendIsAllocationFree) {
  if (!AllocProbeEnabled()) {
    GTEST_SKIP() << "allocation probe disabled (sanitizer build)";
  }
  FlightRecorder recorder(64);
  recorder.Record("warm", SimTime::Micros(0), 0);  // Everything pre-allocated anyway.
  AllocScope scope;
  for (uint64_t i = 0; i < 10000; ++i) {
    recorder.Record("tick", SimTime::Micros(static_cast<int64_t>(i)), i);
  }
  EXPECT_EQ(scope.delta(), 0u) << "flight-recorder append allocated";
}

TEST(FlightRecorderTest, ConcurrentSnapshotNeverSeesTornEntries) {
  FlightRecorder recorder(16);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      // arg mirrors sim_us: a torn read would show disagreeing fields.
      recorder.Record("w", SimTime::Micros(static_cast<int64_t>(i)), i);
      ++i;
    }
  });
  for (int round = 0; round < 200; ++round) {
    for (const FlightRecorder::Entry& e : recorder.Snapshot()) {
      ASSERT_STREQ(e.category, "w");
      ASSERT_EQ(e.arg, static_cast<uint64_t>(e.sim_at.micros()));
    }
  }
  stop.store(true, std::memory_order_release);
  writer.join();
}

TEST(FlightRecorderTest, FdDumpWritesOneValidJsonObjectPerEntry) {
  FlightRecorder recorder(8);
  for (uint64_t i = 0; i < 20; ++i) {
    recorder.Record("dump", SimTime::Micros(static_cast<int64_t>(i * 5)), i);
  }
  const std::string path = testing::TempDir() + "flight_fd_dump.jsonl";
  const int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(recorder.DumpTo(fd), 8u);
  close(fd);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    std::string error;
    EXPECT_TRUE(JsonLint(line, &error)) << line << ": " << error;
    EXPECT_NE(line.find("\"category\":\"dump\""), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, 8u);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, JsonlDumpMatchesSnapshot) {
  FlightRecorder recorder(8);
  for (uint64_t i = 0; i < 12; ++i) {
    recorder.Record("jsonl", SimTime::Micros(static_cast<int64_t>(i)), 1000 + i);
  }
  const std::string path = testing::TempDir() + "flight_dump.jsonl";
  ASSERT_TRUE(WriteFlightRecorderJsonl(recorder, path));

  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    std::string error;
    EXPECT_TRUE(JsonLint(line, &error)) << line << ": " << error;
    lines.push_back(line);
  }
  const std::vector<FlightRecorder::Entry> entries = recorder.Snapshot();
  ASSERT_EQ(lines.size(), entries.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("\"seq\":" + std::to_string(entries[i].seq)), std::string::npos);
    EXPECT_NE(lines[i].find("\"arg\":" + std::to_string(entries[i].arg)), std::string::npos);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace centsim
