#include "src/telemetry/sensors.h"

#include <gtest/gtest.h>

#include <cmath>

namespace centsim {
namespace {

TEST(SensorsTest, KindNames) {
  EXPECT_STREQ(SensorKindName(SensorKind::kTemperature), "temperature");
  EXPECT_STREQ(SensorKindName(SensorKind::kAirQuality), "air-quality");
}

TEST(SensorsTest, TemperatureDiurnalSwing) {
  SensorModel temp(SensorKind::kTemperature, 1);
  const SimTime day = SimTime::Days(100);
  const double afternoon = temp.TruthAt(day + SimTime::Hours(15));
  const double predawn = temp.TruthAt(day + SimTime::Hours(4));
  EXPECT_GT(afternoon, predawn);
}

TEST(SensorsTest, TemperatureSeasonalSwing) {
  SensorModel temp(SensorKind::kTemperature, 1);
  // Mid-summer noon vs mid-winter noon (northern phase).
  const double summer = temp.TruthAt(SimTime::Days(182) + SimTime::Hours(12));
  const double winter = temp.TruthAt(SimTime::Days(0) + SimTime::Hours(12));
  EXPECT_GT(summer, winter + 5.0);
}

TEST(SensorsTest, ConcreteHealthDeclinesOverDecades) {
  SensorModel emi(SensorKind::kConcreteHealth, 2);
  EXPECT_GT(emi.TruthAt(SimTime::Years(1)), emi.TruthAt(SimTime::Years(40)) + 10.0);
}

TEST(SensorsTest, VibrationRushHourPeaks) {
  SensorModel vib(SensorKind::kVibration, 3);
  const SimTime day = SimTime::Days(10);
  EXPECT_GT(vib.TruthAt(day + SimTime::Hours(8)), vib.TruthAt(day + SimTime::Hours(3)));
}

TEST(SensorsTest, AirQualityNonNegativeAndEpisodic) {
  SensorModel pm(SensorKind::kAirQuality, 4);
  double max_v = 0.0;
  double min_v = 1e9;
  for (int h = 0; h < 24 * 30; ++h) {
    const double v = pm.TruthAt(SimTime::Hours(h));
    EXPECT_GE(v, 0.0);
    max_v = std::max(max_v, v);
    min_v = std::min(min_v, v);
  }
  EXPECT_GT(max_v, 2.0 * min_v);  // Episodes exist.
}

TEST(SensorsTest, MeasurementsReproducible) {
  SensorModel a(SensorKind::kTemperature, 42);
  SensorModel b(SensorKind::kTemperature, 42);
  for (int h = 0; h < 100; ++h) {
    EXPECT_DOUBLE_EQ(a.MeasureAt(SimTime::Hours(h)), b.MeasureAt(SimTime::Hours(h)));
  }
}

TEST(SensorsTest, SitesDiffer) {
  SensorModel a(SensorKind::kTemperature, 1);
  SensorModel b(SensorKind::kTemperature, 2);
  bool any_diff = false;
  for (int h = 0; h < 48; ++h) {
    any_diff |= a.TruthAt(SimTime::Hours(h)) != b.TruthAt(SimTime::Hours(h));
  }
  EXPECT_TRUE(any_diff);
}

TEST(SensorsTest, MeasurementNoiseIsSmall) {
  SensorModel temp(SensorKind::kTemperature, 5);
  for (int h = 0; h < 200; ++h) {
    const SimTime t = SimTime::Hours(h);
    EXPECT_NEAR(temp.MeasureAt(t), temp.TruthAt(t), std::abs(temp.TruthAt(t)) * 0.02 + 0.1);
  }
}

TEST(SensorsTest, QuantizationClampsToInt16) {
  SensorModel emi(SensorKind::kConcreteHealth, 6);
  const int16_t q = emi.MeasureCentiAt(SimTime::Years(1));
  EXPECT_GT(q, 0);
}

TEST(SensorsTest, FasterSamplingLowersReconstructionError) {
  SensorModel pm(SensorKind::kAirQuality, 7);
  const double hourly = ReconstructionError(pm, SimTime::Hours(1), SimTime::Days(14));
  const double daily = ReconstructionError(pm, SimTime::Days(1), SimTime::Days(14));
  EXPECT_LT(hourly, daily);
}

TEST(SensorsTest, SlowPhenomenaTolerateSlowSampling) {
  // Concrete health barely moves in a week: daily sampling is nearly as
  // good as hourly — the application-rate insight behind 1 pkt/hour being
  // plenty for structural monitoring.
  SensorModel emi(SensorKind::kConcreteHealth, 8);
  const double hourly = ReconstructionError(emi, SimTime::Hours(1), SimTime::Days(28));
  const double daily = ReconstructionError(emi, SimTime::Days(1), SimTime::Days(28));
  EXPECT_LT(daily, hourly + 0.5);
}

}  // namespace
}  // namespace centsim
