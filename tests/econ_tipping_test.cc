#include "src/econ/tipping_point.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

TEST(TippingTest, ReplacementCostLinearInFleet) {
  ReplacementCostParams repl;
  OwnedInfraParams infra;
  const auto a = AnalyzeTippingPoint(1000, repl, infra);
  const auto b = AnalyzeTippingPoint(2000, repl, infra);
  EXPECT_NEAR(b.replace_all_cost_usd, 2.0 * a.replace_all_cost_usd, 1.0);
}

TEST(TippingTest, SmallFleetFavorsReplacement) {
  ReplacementCostParams repl;
  OwnedInfraParams infra;
  const auto result = AnalyzeTippingPoint(10, repl, infra);
  EXPECT_FALSE(result.vertical_integration_wins);
}

TEST(TippingTest, CityScaleFavorsIntegration) {
  // §3.4: "there will always be a tipping point..." — at LA scale, owning
  // gateways+backhaul beats replacing 591k devices.
  ReplacementCostParams repl;
  OwnedInfraParams infra;
  const auto result = AnalyzeTippingPoint(591315, repl, infra);
  EXPECT_TRUE(result.vertical_integration_wins);
}

TEST(TippingTest, FleetSizeBisectionConsistent) {
  ReplacementCostParams repl;
  OwnedInfraParams infra;
  const uint64_t tip = TippingPointFleetSize(repl, infra);
  ASSERT_GT(tip, 1u);
  EXPECT_FALSE(AnalyzeTippingPoint(tip - 1, repl, infra).vertical_integration_wins);
  EXPECT_TRUE(AnalyzeTippingPoint(tip, repl, infra).vertical_integration_wins);
}

TEST(TippingTest, CheaperDevicesRaiseTippingPoint) {
  // If replacement devices are cheap, integration pays off later.
  ReplacementCostParams cheap;
  cheap.device_unit_usd = 10.0;
  ReplacementCostParams pricey;
  pricey.device_unit_usd = 200.0;
  OwnedInfraParams infra;
  EXPECT_GT(TippingPointFleetSize(cheap, infra), TippingPointFleetSize(pricey, infra));
}

TEST(TippingTest, ExpensiveInfraRaisesTippingPoint) {
  ReplacementCostParams repl;
  OwnedInfraParams cheap_infra;
  OwnedInfraParams pricey_infra;
  pricey_infra.backhaul_capex_per_gateway_usd = 20000.0;
  EXPECT_GT(TippingPointFleetSize(repl, pricey_infra), TippingPointFleetSize(repl, cheap_infra));
}

TEST(TippingTest, BetterFanoutLowersTippingPoint) {
  ReplacementCostParams repl;
  OwnedInfraParams dense;
  dense.devices_per_gateway = 5000;
  OwnedInfraParams sparse;
  sparse.devices_per_gateway = 100;
  EXPECT_LT(TippingPointFleetSize(repl, dense), TippingPointFleetSize(repl, sparse));
}

TEST(TippingTest, NeverWinsReturnsZero) {
  ReplacementCostParams repl;
  repl.device_unit_usd = 0.0;
  repl.truck_roll.minutes_per_device = 0.0;  // Free replacement.
  OwnedInfraParams infra;
  EXPECT_EQ(TippingPointFleetSize(repl, infra), 0u);
}

}  // namespace
}  // namespace centsim
