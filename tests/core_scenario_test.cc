#include "src/core/scenario.h"

#include <gtest/gtest.h>

#include "src/core/montecarlo.h"

namespace centsim {
namespace {

TEST(ScenarioTest, DefaultsWhenEmpty) {
  const auto cfg = FiftyYearConfigFrom(*Config::Parse(""));
  EXPECT_EQ(cfg.devices_802154, FiftyYearConfig{}.devices_802154);
  EXPECT_EQ(cfg.horizon, SimTime::Years(50));
}

TEST(ScenarioTest, FiftyYearKeysApplied) {
  const auto parsed = Config::Parse(R"(
[experiment]
seed = 777
horizon_years = 10
area_side_m = 1800

[devices]
count_802154 = 5
count_lora = 7
report_interval_hours = 2
replace_failed = false
replacement_delay_days = 10

[gateways]
owned = 3
helium_hotspots = 6
hotspot_replacement_prob = 0.4

[maintenance]
enabled = false
annual_budget_hours = 55

[wallet]
usd_per_device = 12.5
)");
  ASSERT_TRUE(parsed.has_value());
  const auto cfg = FiftyYearConfigFrom(*parsed);
  EXPECT_EQ(cfg.seed, 777u);
  EXPECT_EQ(cfg.horizon, SimTime::Years(10));
  EXPECT_DOUBLE_EQ(cfg.area_side_m, 1800.0);
  EXPECT_EQ(cfg.devices_802154, 5u);
  EXPECT_EQ(cfg.devices_lora, 7u);
  EXPECT_EQ(cfg.report_interval, SimTime::Hours(2));
  EXPECT_FALSE(cfg.replace_failed_devices);
  EXPECT_EQ(cfg.device_replacement_delay, SimTime::Days(10));
  EXPECT_EQ(cfg.owned_gateways, 3u);
  EXPECT_EQ(cfg.helium_hotspots, 6u);
  EXPECT_DOUBLE_EQ(cfg.hotspot_replacement_prob, 0.4);
  EXPECT_FALSE(cfg.maintenance.enabled);
  EXPECT_DOUBLE_EQ(cfg.maintenance.annual_budget_hours, 55.0);
  EXPECT_DOUBLE_EQ(cfg.wallet_usd_per_device, 12.5);
}

TEST(ScenarioTest, CenturyKeysApplied) {
  const auto parsed = Config::Parse(R"(
[century]
seed = 9
fleet_size = 1234
horizon_years = 60
zone_count = 9
cycle_period_years = 5
device_class = battery
proactive_refresh_age_years = 12
life_improvement_per_decade = 1.2
)");
  ASSERT_TRUE(parsed.has_value());
  const auto cfg = CenturyConfigFrom(*parsed);
  EXPECT_EQ(cfg.seed, 9u);
  EXPECT_EQ(cfg.fleet_size, 1234u);
  EXPECT_EQ(cfg.horizon, SimTime::Years(60));
  EXPECT_EQ(cfg.batch.zone_count, 9u);
  EXPECT_EQ(cfg.batch.cycle_period, SimTime::Years(5));
  EXPECT_EQ(cfg.device_class, DeviceClassKind::kBatteryPowered);
  EXPECT_EQ(cfg.proactive_refresh_age, SimTime::Years(12));
  EXPECT_DOUBLE_EQ(cfg.life_improvement_per_decade, 1.2);
}

TEST(ScenarioTest, ScenarioRunsEndToEnd) {
  const auto parsed = Config::Parse(R"(
[experiment]
seed = 5
horizon_years = 3
[devices]
count_802154 = 2
count_lora = 2
report_interval_hours = 12
)");
  ASSERT_TRUE(parsed.has_value());
  const auto report = RunFiftyYearExperiment(FiftyYearConfigFrom(*parsed));
  EXPECT_GT(report.total_packets, 500u);
}

TEST(MonteCarloTest, EnsembleAggregates) {
  FiftyYearConfig base;
  base.seed = 100;
  base.devices_802154 = 2;
  base.devices_lora = 2;
  base.helium_hotspots = 2;
  base.report_interval = SimTime::Hours(12);
  base.horizon = SimTime::Years(3);
  const auto ensemble = SweepFiftyYear(base, 5, /*weekly_goal=*/0.5);
  EXPECT_EQ(ensemble.runs, 5u);
  EXPECT_EQ(ensemble.weekly_uptime.count(), 5u);
  EXPECT_GE(ensemble.GoalProbability(), 0.0);
  EXPECT_LE(ensemble.GoalProbability(), 1.0);
  // Different seeds should produce at least two distinct uptime values or
  // failure counts (not a degenerate sweep).
  EXPECT_GT(ensemble.device_failures.count(), 0u);
}

TEST(MonteCarloTest, GoalProbabilityMonotoneInGoal) {
  FiftyYearConfig base;
  base.seed = 200;
  base.devices_802154 = 2;
  base.devices_lora = 2;
  base.helium_hotspots = 2;
  base.report_interval = SimTime::Hours(12);
  base.horizon = SimTime::Years(3);
  const auto lenient = SweepFiftyYear(base, 4, 0.3);
  const auto strict = SweepFiftyYear(base, 4, 0.999);
  EXPECT_GE(lenient.runs_meeting_weekly_goal, strict.runs_meeting_weekly_goal);
}

}  // namespace
}  // namespace centsim
