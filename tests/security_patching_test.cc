#include "src/security/patching.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

TEST(PatchingTest, VulnerabilityCountMatchesRate) {
  ExposureParams p;
  p.cves_per_year = 6.0;
  double total = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    total += SimulateExposure(p, SimTime::Years(10), RandomStream(i)).vulnerabilities;
  }
  EXPECT_NEAR(total / trials, 60.0, 4.0);
}

TEST(PatchingTest, FirewalledGatewayRarelyCompromised) {
  // §4.4's aggressively-firewalled unidirectional gateway: it is safe to
  // neglect updates.
  const double p = CompromiseProbability(FirewalledUnidirectionalGateway(), SimTime::Years(50),
                                         400, RandomStream(1));
  EXPECT_LT(p, 0.35);
}

TEST(PatchingTest, UnattendedPublicGatewayIsDoomed) {
  const double p = CompromiseProbability(UnattendedPublicGateway(), SimTime::Years(50), 400,
                                         RandomStream(2));
  EXPECT_GT(p, 0.95);
}

TEST(PatchingTest, MaintenanceOrdersThePostures) {
  const SimTime horizon = SimTime::Years(20);
  const double firewalled =
      CompromiseProbability(FirewalledUnidirectionalGateway(), horizon, 300, RandomStream(3));
  const double maintained =
      CompromiseProbability(MaintainedPublicGateway(), horizon, 300, RandomStream(3));
  const double unattended =
      CompromiseProbability(UnattendedPublicGateway(), horizon, 300, RandomStream(3));
  EXPECT_LT(firewalled, maintained);
  EXPECT_LT(maintained, unattended);
}

TEST(PatchingTest, FasterPatchingReducesExposure) {
  ExposureParams slow = MaintainedPublicGateway();
  slow.mean_patch_lag = SimTime::Days(90);
  ExposureParams fast = MaintainedPublicGateway();
  fast.mean_patch_lag = SimTime::Days(2);
  double slow_exposure = 0.0;
  double fast_exposure = 0.0;
  for (int i = 0; i < 200; ++i) {
    slow_exposure += SimulateExposure(slow, SimTime::Years(10), RandomStream(i)).exposed_years;
    fast_exposure += SimulateExposure(fast, SimTime::Years(10), RandomStream(i)).exposed_years;
  }
  EXPECT_LT(fast_exposure, slow_exposure);
}

TEST(PatchingTest, CompromiseTimestampWithinHorizon) {
  const auto report =
      SimulateExposure(UnattendedPublicGateway(), SimTime::Years(50), RandomStream(9));
  if (report.compromised) {
    EXPECT_GT(report.compromised_at, SimTime());
    EXPECT_LT(report.compromised_at, SimTime::Years(51));
  }
  EXPECT_GE(report.vulnerabilities, report.reachable);
}

TEST(PatchingTest, DeterministicPerSeed) {
  const auto a = SimulateExposure(MaintainedPublicGateway(), SimTime::Years(30), RandomStream(7));
  const auto b = SimulateExposure(MaintainedPublicGateway(), SimTime::Years(30), RandomStream(7));
  EXPECT_EQ(a.vulnerabilities, b.vulnerabilities);
  EXPECT_EQ(a.compromised, b.compromised);
  EXPECT_DOUBLE_EQ(a.exposed_years, b.exposed_years);
}

}  // namespace
}  // namespace centsim
