// Sampled-engine parity and snapshot-portability tests (ROADMAP item 2).
//
// The load-bearing property is window-placement invariance: because both
// sampled drivers key every boundary RNG draw per entity, the composite
// trajectory (every failure, visit, and replacement) is identical no
// matter where the detailed windows land — and a run whose sample period
// equals its window length (all fast-forwards zero-length) is the same
// trajectory again, which pins the zero-length-fast-forward no-op
// contract end to end.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>

#include "src/core/district.h"
#include "src/core/experiment.h"
#include "src/core/theseus.h"
#include "src/sim/sampling.h"
#include "src/sim/time.h"

namespace centsim {
namespace {

namespace fs = std::filesystem;

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name) : path_(testing::TempDir() + name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

SamplingPlan QuickSampling() {
  SamplingPlan plan;
  plan.mode = SimMode::kSampled;
  plan.detailed_window = SimTime::Days(14);
  plan.sample_period = SimTime::Days(140);
  plan.min_windows = 4;
  plan.ci_target = 0.05;
  return plan;
}

CenturyConfig QuickCentury() {
  CenturyConfig cfg;
  cfg.seed = 5;
  cfg.fleet_size = 400;
  cfg.horizon = SimTime::Years(100);
  cfg.batch.zone_count = 8;
  cfg.batch.cycle_period = SimTime::Years(6);
  return cfg;
}

// A smaller century for the many-run invariance/snapshot tests.
CenturyConfig SmallCentury() {
  CenturyConfig cfg;
  cfg.seed = 11;
  cfg.fleet_size = 200;
  cfg.horizon = SimTime::Years(30);
  cfg.batch.zone_count = 4;
  cfg.batch.cycle_period = SimTime::Years(6);
  return cfg;
}

// --- Century: sampled engine ------------------------------------------------

TEST(CenturySampledTest, DefaultPlanIsOffAndRoutesSerial) {
  CenturyConfig cfg = QuickCentury();
  EXPECT_FALSE(cfg.sampling.enabled());
  const CenturyReport report = RunCenturyScenario(cfg);
  EXPECT_FALSE(report.sampled);
  EXPECT_EQ(report.windows_measured, 0u);
  EXPECT_EQ(report.sim_skipped_us, 0);
  EXPECT_TRUE(report.metric_cis.empty());
}

TEST(CenturySampledTest, ReportsCisAndSkipsMostOfTheHorizon) {
  CenturyConfig cfg = QuickCentury();
  cfg.sampling = QuickSampling();
  const CenturyReport report = RunCenturyScenario(cfg);

  EXPECT_TRUE(report.sampled);
  EXPECT_GE(report.windows_measured, cfg.sampling.min_windows);
  EXPECT_GT(report.sim_skipped_us, 0);
  EXPECT_LT(report.sim_skipped_us, cfg.horizon.micros());
  ASSERT_EQ(report.metric_cis.size(), 3u);
  EXPECT_EQ(report.metric_cis[0].name, "availability");
  EXPECT_EQ(report.metric_cis[1].name, "failures_per_device_year");
  EXPECT_EQ(report.metric_cis[2].name, "replacements_per_device_year");
  for (const MetricCi& ci : report.metric_cis) {
    EXPECT_EQ(ci.windows, report.windows_measured);
    EXPECT_GE(ci.ci_half_width, 0.0);
  }

  // The paper metrics still come out of the full (windows + walk)
  // trajectory, not just the measured windows.
  EXPECT_GT(report.mean_availability, 0.8);
  EXPECT_LE(report.mean_availability, 1.0);
  EXPECT_GT(report.total_failures, 400u);
  EXPECT_GT(report.total_replacements, 300u);
  EXPECT_GE(report.units_deployed, 400u);
  EXPECT_GE(report.max_unit_generations, 3.0);
  EXPECT_EQ(report.yearly_availability.size(), 100u);
}

TEST(CenturySampledTest, AgreesWithSerialEngineInDistribution) {
  CenturyConfig cfg = QuickCentury();
  const CenturyReport serial = RunCenturyScenario(cfg);
  cfg.sampling = QuickSampling();
  const CenturyReport sampled = RunCenturyScenario(cfg);

  // Same per-site RNG keys, life draws via the survival table instead of
  // the component sampler: agreement is distributional, a few percent at
  // this fleet size.
  EXPECT_NEAR(sampled.mean_availability, serial.mean_availability, 0.05);
  const double serial_failures = static_cast<double>(serial.total_failures);
  const double sampled_failures = static_cast<double>(sampled.total_failures);
  EXPECT_LT(std::fabs(sampled_failures - serial_failures) / serial_failures, 0.25);
}

TEST(CenturySampledTest, TrajectoryInvariantUnderWindowPlacement) {
  // Three engines over the same config: generously spaced windows, densely
  // spaced windows, and back-to-back windows (sample_period == window, so
  // every fast-forward is zero-length). Per-entity RNG keying promises the
  // exact same trajectory from all three.
  CenturyConfig a = SmallCentury();
  a.sampling = QuickSampling();
  a.sampling.detailed_window = SimTime::Days(7);
  a.sampling.sample_period = SimTime::Days(170);

  CenturyConfig b = SmallCentury();
  b.sampling = QuickSampling();
  b.sampling.detailed_window = SimTime::Days(45);
  b.sampling.sample_period = SimTime::Days(90);

  CenturyConfig c = SmallCentury();
  c.sampling = QuickSampling();
  c.sampling.detailed_window = SimTime::Days(140);
  c.sampling.sample_period = SimTime::Days(140);  // Zero-length fast-forwards.

  const CenturyReport ra = RunCenturyScenario(a);
  const CenturyReport rb = RunCenturyScenario(b);
  const CenturyReport rc = RunCenturyScenario(c);

  EXPECT_EQ(ra.total_failures, rb.total_failures);
  EXPECT_EQ(ra.total_replacements, rb.total_replacements);
  EXPECT_EQ(ra.units_deployed, rb.units_deployed);
  EXPECT_EQ(ra.proactive_replacements, rb.proactive_replacements);
  EXPECT_EQ(ra.max_unit_generations, rb.max_unit_generations);
  EXPECT_NEAR(ra.mean_availability, rb.mean_availability, 1e-9);

  EXPECT_EQ(ra.total_failures, rc.total_failures);
  EXPECT_EQ(ra.total_replacements, rc.total_replacements);
  EXPECT_EQ(ra.units_deployed, rc.units_deployed);
  EXPECT_NEAR(ra.mean_availability, rc.mean_availability, 1e-9);

  // The zero-skip engine really did run everything detailed.
  EXPECT_EQ(rc.sim_skipped_us, 0);
  EXPECT_GT(ra.sim_skipped_us, rb.sim_skipped_us);
}

TEST(CenturySampledTest, DeterministicAcrossRuns) {
  CenturyConfig cfg = SmallCentury();
  cfg.sampling = QuickSampling();
  const CenturyReport first = RunCenturyScenario(cfg);
  const CenturyReport second = RunCenturyScenario(cfg);
  EXPECT_EQ(first.total_failures, second.total_failures);
  EXPECT_EQ(first.total_replacements, second.total_replacements);
  EXPECT_EQ(first.units_deployed, second.units_deployed);
  EXPECT_EQ(first.windows_measured, second.windows_measured);
  EXPECT_EQ(first.mean_availability, second.mean_availability);
}

// Fast-forward == detailed in expectation, across 32 seeds: the sampled
// engine's failure/replacement process must be statistically the same
// process the serial engine simulates event by event.
TEST(CenturySampledTest, ExpectationParityAcrossSeeds) {
  CenturyConfig base;
  base.fleet_size = 100;
  base.horizon = SimTime::Years(30);
  base.batch.zone_count = 4;
  base.batch.cycle_period = SimTime::Years(6);

  double serial_failures = 0.0, sampled_failures = 0.0;
  double serial_avail = 0.0, sampled_avail = 0.0;
  constexpr int kSeeds = 32;
  for (int s = 0; s < kSeeds; ++s) {
    CenturyConfig cfg = base;
    cfg.seed = 1000 + static_cast<uint64_t>(s);
    const CenturyReport serial = RunCenturyScenario(cfg);
    cfg.sampling = QuickSampling();
    const CenturyReport sampled = RunCenturyScenario(cfg);
    serial_failures += static_cast<double>(serial.total_failures);
    sampled_failures += static_cast<double>(sampled.total_failures);
    serial_avail += serial.mean_availability;
    sampled_avail += sampled.mean_availability;
  }
  serial_failures /= kSeeds;
  sampled_failures /= kSeeds;
  serial_avail /= kSeeds;
  sampled_avail /= kSeeds;

  EXPECT_GT(serial_failures, 0.0);
  EXPECT_LT(std::fabs(sampled_failures - serial_failures) / serial_failures, 0.05)
      << "serial " << serial_failures << " sampled " << sampled_failures;
  EXPECT_NEAR(sampled_avail, serial_avail, 0.02)
      << "serial " << serial_avail << " sampled " << sampled_avail;
}

// --- Century: snapshots across engines --------------------------------------

TEST(CenturySampledTest, SampledCheckpointRestoresIntoSampled) {
  ScratchDir dir("sampled_ckpt_sampled");
  CenturyConfig save_cfg = SmallCentury();
  save_cfg.sampling = QuickSampling();
  save_cfg.snapshot.checkpoint_every = SimTime::Years(10);
  save_cfg.snapshot.checkpoint_dir = dir.path();
  const CenturyReport saved = RunCenturyScenario(save_cfg);
  EXPECT_GE(saved.checkpoints_written, 1u);
  ASSERT_FALSE(saved.last_checkpoint_path.empty());

  // Writing checkpoints is passive: same trajectory as the plain run.
  CenturyConfig plain_cfg = SmallCentury();
  plain_cfg.sampling = QuickSampling();
  const CenturyReport plain = RunCenturyScenario(plain_cfg);
  EXPECT_EQ(saved.total_failures, plain.total_failures);
  EXPECT_EQ(saved.total_replacements, plain.total_replacements);
  EXPECT_NEAR(saved.mean_availability, plain.mean_availability, 1e-9);

  // Restore into the sampled engine: the continuation re-derives every
  // per-entity stream, so full-run totals match the straight run exactly.
  CenturyConfig resume_cfg = SmallCentury();
  resume_cfg.sampling = QuickSampling();
  resume_cfg.snapshot.resume_from = saved.last_checkpoint_path;
  const CenturyReport restored = RunCenturyScenario(resume_cfg);
  EXPECT_GT(restored.restore_seconds, 0.0);
  EXPECT_EQ(restored.total_failures, plain.total_failures);
  EXPECT_EQ(restored.total_replacements, plain.total_replacements);
  EXPECT_EQ(restored.units_deployed, plain.units_deployed);
  EXPECT_NEAR(restored.mean_availability, plain.mean_availability, 1e-9);
}

TEST(CenturySampledTest, SampledCheckpointRestoresIntoSerial) {
  // The acceptance contract: a checkpoint cut at a detailed-window barrier
  // restores into EITHER mode. Sampled -> serial continues with the serial
  // event loop from the barrier; draws differ past the barrier (different
  // samplers), so this pins "completes with sane metrics", not parity.
  ScratchDir dir("sampled_ckpt_serial");
  CenturyConfig save_cfg = SmallCentury();
  save_cfg.sampling = QuickSampling();
  save_cfg.snapshot.checkpoint_every = SimTime::Years(10);
  save_cfg.snapshot.checkpoint_dir = dir.path();
  const CenturyReport saved = RunCenturyScenario(save_cfg);
  ASSERT_FALSE(saved.last_checkpoint_path.empty());

  CenturyConfig resume_cfg = SmallCentury();  // sampling off: serial engine.
  resume_cfg.snapshot.resume_from = saved.last_checkpoint_path;
  const CenturyReport restored = RunCenturyScenario(resume_cfg);
  EXPECT_FALSE(restored.sampled);
  EXPECT_GT(restored.restore_seconds, 0.0);
  EXPECT_GT(restored.mean_availability, 0.5);
  EXPECT_LE(restored.mean_availability, 1.0);
  EXPECT_GT(restored.total_failures, 100u);
  EXPECT_GT(restored.total_replacements, 50u);
  EXPECT_EQ(restored.yearly_availability.size(), 30u);
}

TEST(CenturySampledTest, SerialCheckpointRestoresIntoSampled) {
  ScratchDir dir("serial_ckpt_sampled");
  CenturyConfig save_cfg = SmallCentury();
  save_cfg.snapshot.checkpoint_every = SimTime::Years(10);
  save_cfg.snapshot.checkpoint_dir = dir.path();
  const CenturyReport saved = RunCenturyScenario(save_cfg);
  ASSERT_FALSE(saved.last_checkpoint_path.empty());

  CenturyConfig resume_cfg = SmallCentury();
  resume_cfg.sampling = QuickSampling();
  resume_cfg.snapshot.resume_from = saved.last_checkpoint_path;
  const CenturyReport restored = RunCenturyScenario(resume_cfg);
  EXPECT_TRUE(restored.sampled);
  EXPECT_GT(restored.restore_seconds, 0.0);
  EXPECT_GT(restored.mean_availability, 0.5);
  EXPECT_LE(restored.mean_availability, 1.0);
  EXPECT_GT(restored.total_failures, saved.total_failures / 4);
  EXPECT_EQ(restored.yearly_availability.size(), 30u);
}

// --- District: sampled engine ------------------------------------------------

DistrictConfig QuickDistrict() {
  DistrictConfig cfg;
  cfg.seed = 4;
  cfg.device_count = 400;
  cfg.area_km2 = 4.0;
  cfg.zone_grid = 2;
  cfg.horizon = SimTime::Years(20);
  cfg.batch_cycle = SimTime::Years(6);
  return cfg;
}

TEST(DistrictSampledTest, AgreesWithSerialEngineInDistribution) {
  DistrictConfig cfg = QuickDistrict();
  const DistrictReport serial = RunDistrictScenario(cfg);
  cfg.sampling = QuickSampling();
  const DistrictReport sampled = RunDistrictScenario(cfg);

  EXPECT_TRUE(sampled.sampled);
  EXPECT_GE(sampled.windows_measured, cfg.sampling.min_windows);
  EXPECT_GT(sampled.sim_skipped_us, 0);
  ASSERT_EQ(sampled.metric_cis.size(), 3u);
  EXPECT_EQ(sampled.metric_cis[0].name, "service_availability");

  // Same geometry (digest-compatible construction), per-entity RNG keys:
  // distribution-level agreement, like the sharded engine.
  EXPECT_EQ(sampled.gateway_count, serial.gateway_count);
  EXPECT_DOUBLE_EQ(sampled.initial_coverage, serial.initial_coverage);
  EXPECT_NEAR(sampled.mean_service_availability, serial.mean_service_availability, 0.08);
  EXPECT_NEAR(sampled.mean_device_availability, serial.mean_device_availability, 0.08);
  const double serial_failures = static_cast<double>(serial.device_failures);
  EXPECT_GT(serial_failures, 0.0);
  EXPECT_LT(std::fabs(static_cast<double>(sampled.device_failures) - serial_failures) /
                serial_failures,
            0.3);
  EXPECT_GT(sampled.gateway_failures, 0u);
  EXPECT_GE(sampled.gateway_repairs + 1, sampled.gateway_failures);
}

TEST(DistrictSampledTest, TrajectoryInvariantUnderWindowPlacement) {
  DistrictConfig a = QuickDistrict();
  a.sampling = QuickSampling();
  a.sampling.detailed_window = SimTime::Days(7);
  a.sampling.sample_period = SimTime::Days(170);

  DistrictConfig b = QuickDistrict();
  b.sampling = QuickSampling();
  b.sampling.detailed_window = SimTime::Days(60);
  b.sampling.sample_period = SimTime::Days(60);  // All fast-forwards zero-length.

  const DistrictReport ra = RunDistrictScenario(a);
  const DistrictReport rb = RunDistrictScenario(b);

  EXPECT_EQ(ra.device_failures, rb.device_failures);
  EXPECT_EQ(ra.device_replacements, rb.device_replacements);
  EXPECT_EQ(ra.gateway_failures, rb.gateway_failures);
  EXPECT_EQ(ra.gateway_repairs, rb.gateway_repairs);
  EXPECT_NEAR(ra.mean_service_availability, rb.mean_service_availability, 1e-9);
  EXPECT_NEAR(ra.mean_device_availability, rb.mean_device_availability, 1e-9);
  EXPECT_EQ(rb.sim_skipped_us, 0);
  EXPECT_GT(ra.sim_skipped_us, 0);
}

TEST(DistrictSampledTest, SerialCheckpointRestoresIntoSampled) {
  ScratchDir dir("district_serial_ckpt_sampled");
  DistrictConfig save_cfg = QuickDistrict();
  save_cfg.snapshot.checkpoint_every = SimTime::Years(8);
  save_cfg.snapshot.checkpoint_dir = dir.path();
  const DistrictReport saved = RunDistrictScenario(save_cfg);
  ASSERT_FALSE(saved.last_checkpoint_path.empty());

  DistrictConfig resume_cfg = QuickDistrict();
  resume_cfg.sampling = QuickSampling();
  resume_cfg.snapshot.resume_from = saved.last_checkpoint_path;
  const DistrictReport restored = RunDistrictScenario(resume_cfg);
  EXPECT_TRUE(restored.sampled);
  EXPECT_GT(restored.restore_seconds, 0.0);
  EXPECT_GT(restored.mean_service_availability, 0.3);
  EXPECT_LE(restored.mean_service_availability, 1.0);
  EXPECT_GT(restored.device_failures, 0u);
  EXPECT_EQ(restored.yearly_service.size(), 20u);
}

// --- Validation --------------------------------------------------------------

TEST(SampledValidateTest, SamplingAndShardingAreMutuallyExclusive) {
  CenturyConfig century = QuickCentury();
  century.sampling = QuickSampling();
  century.shard.shards = 2;
  EXPECT_FALSE(century.Validate().empty());

  DistrictConfig district = QuickDistrict();
  district.sampling = QuickSampling();
  district.shard.shards = 2;
  EXPECT_FALSE(district.Validate().empty());
}

TEST(SampledValidateTest, DistrictSampledRefusesCheckpointWriting) {
  DistrictConfig cfg = QuickDistrict();
  cfg.sampling = QuickSampling();
  cfg.snapshot.checkpoint_every = SimTime::Years(5);
  cfg.snapshot.checkpoint_dir = "/tmp/never";
  EXPECT_FALSE(cfg.Validate().empty());
  // Restore-only plans are fine.
  cfg.snapshot.checkpoint_every = SimTime();
  cfg.snapshot.checkpoint_dir.clear();
  cfg.snapshot.resume_from = "whatever.snap";
  EXPECT_TRUE(cfg.Validate().empty());
}

TEST(SampledValidateTest, FiftyYearRejectsSampledMode) {
  FiftyYearConfig cfg;
  EXPECT_TRUE(cfg.Validate().empty());
  cfg.sampling.mode = SimMode::kSampled;
  EXPECT_FALSE(cfg.Validate().empty());
}

TEST(SampledValidateTest, BadPlanDiagnosticsPropagate) {
  CenturyConfig cfg = QuickCentury();
  cfg.sampling.mode = SimMode::kSampled;
  cfg.sampling.ci_target = -0.5;
  EXPECT_FALSE(cfg.Validate().empty());
}

}  // namespace
}  // namespace centsim
