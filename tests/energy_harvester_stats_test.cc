#include "src/energy/harvester_stats.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

TEST(HarvesterStatsTest, SolarDroughtIsTheNight) {
  SolarHarvester::Params sp;
  sp.peak_power_w = 0.01;
  SolarHarvester sun(sp);
  const auto r = AssessHarvester(sun, SimTime(), SimTime::Days(30), SimTime::Minutes(15),
                                 /*threshold_w=*/1e-5);
  // Nights are ~12 h; seasonal/weather wobble can stretch the worst one.
  EXPECT_GT(r.longest_drought, SimTime::Hours(10));
  EXPECT_LT(r.longest_drought, SimTime::Hours(20));
  EXPECT_GT(r.fraction_above_threshold, 0.3);
  EXPECT_LT(r.fraction_above_threshold, 0.6);
}

TEST(HarvesterStatsTest, CorrosionIsNearlyAlwaysOn) {
  CorrosionHarvester::Params cp;
  CorrosionHarvester rebar(cp);
  const auto r = AssessHarvester(rebar, SimTime(), SimTime::Days(30), SimTime::Hours(1),
                                 /*threshold_w=*/100e-6);
  EXPECT_DOUBLE_EQ(r.fraction_above_threshold, 1.0);
  EXPECT_EQ(r.longest_drought, SimTime());
  EXPECT_GT(r.capacity_factor, 0.95);  // Near-constant source.
}

TEST(HarvesterStatsTest, CorrosionBeatsSolarOnDependability) {
  // The "ambient battery" argument (paper refs [20, 21]): a weaker but
  // steady source needs far less bridging storage than a stronger bursty
  // one.
  SolarHarvester::Params sp;
  sp.peak_power_w = 0.01;
  SolarHarvester sun(sp);
  CorrosionHarvester::Params cp;
  CorrosionHarvester rebar(cp);
  const double load = 50e-6;  // 50 uW continuous-equivalent load.
  const auto solar = AssessHarvester(sun, SimTime(), SimTime::Days(60), SimTime::Minutes(30), load);
  const auto corrosion =
      AssessHarvester(rebar, SimTime(), SimTime::Days(60), SimTime::Minutes(30), load);
  EXPECT_GT(solar.mean_power_w, corrosion.mean_power_w);     // Solar is stronger...
  EXPECT_GT(solar.bridging_storage_j, corrosion.bridging_storage_j);  // ...but needier.
  EXPECT_GT(corrosion.capacity_factor, solar.capacity_factor);
}

TEST(HarvesterStatsTest, MeanMatchesHarvesterMeanPower) {
  SolarHarvester::Params sp;
  SolarHarvester sun(sp);
  const auto r =
      AssessHarvester(sun, SimTime(), SimTime::Days(30), SimTime::Minutes(10), 1e-6);
  EXPECT_NEAR(r.mean_power_w, sun.MeanPower(SimTime(), SimTime::Days(30)),
              r.mean_power_w * 0.05);
}

TEST(HarvesterStatsTest, DegenerateInputs) {
  SolarHarvester::Params sp;
  SolarHarvester sun(sp);
  const auto r = AssessHarvester(sun, SimTime::Days(1), SimTime::Days(1), SimTime::Hours(1), 1.0);
  EXPECT_DOUBLE_EQ(r.mean_power_w, 0.0);
  EXPECT_EQ(r.longest_drought, SimTime());
}

TEST(HarvesterStatsTest, BridgingStorageScalesWithThreshold) {
  SolarHarvester::Params sp;
  SolarHarvester sun(sp);
  const auto lo = AssessHarvester(sun, SimTime(), SimTime::Days(30), SimTime::Minutes(30), 1e-5);
  const auto hi = AssessHarvester(sun, SimTime(), SimTime::Days(30), SimTime::Minutes(30), 5e-3);
  EXPECT_GE(hi.bridging_storage_j, lo.bridging_storage_j);
}

}  // namespace
}  // namespace centsim
