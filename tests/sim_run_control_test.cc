#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/sim/ensemble.h"
#include "src/sim/flight_recorder.h"
#include "src/sim/profiler.h"
#include "src/sim/run_progress.h"
#include "src/sim/scheduler.h"
#include "src/telemetry/json.h"
#include "src/telemetry/run_status.h"

#if defined(__SANITIZE_THREAD__)
#define CENTSIM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CENTSIM_TSAN 1
#endif
#endif

namespace centsim {
namespace {

namespace fs = std::filesystem;

// --- Scheduler::Snapshot introspection --------------------------------------

TEST(SchedulerSnapshotTest, EmptyQueue) {
  Scheduler sched;
  const SchedulerSnapshot snap = sched.Snapshot();
  EXPECT_TRUE(snap.queue_empty);
  EXPECT_EQ(snap.pending, 0u);
  EXPECT_EQ(snap.heap_size, 0u);
  EXPECT_EQ(snap.staged, 0u);
  EXPECT_EQ(snap.next_event_us, snap.now_us);
}

TEST(SchedulerSnapshotTest, AccountsForEveryQueuedEntry) {
  Scheduler sched;
  // A spread of near and far events: wherever the ladder puts them, the
  // snapshot must account for every entry and report the earliest time.
  for (int i = 0; i < 50; ++i) {
    sched.ScheduleAt(SimTime::Micros(10 + i), [] {});
  }
  for (int i = 0; i < 50; ++i) {
    sched.ScheduleAt(SimTime::Hours(1 + i), [] {});
  }
  sched.ScheduleAt(SimTime::Years(30), [] {});

  const SchedulerSnapshot snap = sched.Snapshot();
  EXPECT_FALSE(snap.queue_empty);
  EXPECT_EQ(snap.pending, 101u);
  EXPECT_EQ(snap.heap_size + snap.staged + snap.run_remaining, 101u);
  EXPECT_EQ(snap.next_event_us, 10);

  // Rung occupancy + far stage must add up to the staged total.
  size_t rung_entries = 0;
  for (const SchedulerSnapshot::RungInfo& rung : snap.rungs) {
    EXPECT_GT(rung.width_us, 0);
    EXPECT_LE(rung.next_bucket, rung.bucket_count);
    rung_entries += rung.entries;
  }
  EXPECT_EQ(rung_entries + snap.far_count, snap.staged);
}

TEST(SchedulerSnapshotTest, CancelledEventsStayInHeapButNotPending) {
  Scheduler sched;
  sched.ScheduleAt(SimTime::Micros(5), [] {});
  const EventId doomed = sched.ScheduleAt(SimTime::Micros(6), [] {});
  sched.ScheduleAt(SimTime::Micros(7), [] {});
  ASSERT_TRUE(sched.Cancel(doomed));

  const SchedulerSnapshot snap = sched.Snapshot();
  EXPECT_EQ(snap.pending, 2u);  // Live events only.
  EXPECT_EQ(snap.heap_size + snap.staged, 3u);  // Stale entry still queued.
  EXPECT_FALSE(snap.queue_empty);
}

TEST(SchedulerSnapshotTest, DrainedQueueReportsNowAsNextEvent) {
  Scheduler sched;
  sched.ScheduleAt(SimTime::Micros(100), [] {});
  sched.RunUntil(SimTime::Seconds(1));
  const SchedulerSnapshot snap = sched.Snapshot();
  EXPECT_TRUE(snap.queue_empty);
  EXPECT_EQ(snap.executed, 1u);
  EXPECT_EQ(snap.now_us, SimTime::Seconds(1).micros());
  EXPECT_EQ(snap.next_event_us, snap.now_us);
}

// --- Sampled progress / recorder hooks --------------------------------------

// Fast-sampling profiler so small tests hit the piggyback paths often.
SchedulerProfiler::Options FastSampling() {
  SchedulerProfiler::Options options;
  options.time_sample_every = 4;
  options.queue_depth_sample_every = 8;
  return options;
}

TEST(RunControlHooksTest, ProgressCellPublishesOnDepthSamples) {
  Scheduler sched;
  SchedulerProfiler profiler(FastSampling());
  ProgressCell cell;
  RunControlHooks hooks;
  hooks.profiler = &profiler;
  hooks.progress = &cell;
  sched.AttachRunControl(hooks);

  for (int i = 0; i < 500; ++i) {
    sched.ScheduleAt(SimTime::Micros(i), [] {}, "rc.tick");
  }
  sched.RunUntil(SimTime::Seconds(1));
  sched.DetachRunControl(hooks);

  const ProgressCell::View view = cell.Load();
  EXPECT_GT(view.ticks, 10u);  // 500 events / depth-sample-every-8.
  EXPECT_GT(view.sim_us, 0);
  EXPECT_GT(view.executed, 0u);
  EXPECT_LE(view.executed, 500u);
  EXPECT_FALSE(view.done);
  EXPECT_FALSE(view.stalled);
}

TEST(RunControlHooksTest, FlightRecorderSamplesOnTimedEvents) {
  Scheduler sched;
  SchedulerProfiler profiler(FastSampling());
  FlightRecorder recorder(256);
  RunControlHooks hooks;
  hooks.profiler = &profiler;
  hooks.recorder = &recorder;
  sched.AttachRunControl(hooks);

  for (int i = 0; i < 400; ++i) {
    sched.ScheduleAt(SimTime::Micros(i), [] {}, "rc.sampled");
  }
  sched.RunUntil(SimTime::Seconds(1));
  sched.DetachRunControl(hooks);

  // 400 events, 1-in-4 timed: the ring must have seen roughly a quarter.
  EXPECT_GE(recorder.total_recorded(), 50u);
  EXPECT_LE(recorder.total_recorded(), 400u);
  for (const FlightRecorder::Entry& e : recorder.Snapshot()) {
    EXPECT_STREQ(e.category, "rc.sampled");
  }
}

TEST(RunControlHooksTest, NoProfilerMeansNoSampling) {
  Scheduler sched;
  FlightRecorder recorder(64);
  ProgressCell cell;
  RunControlHooks hooks;  // No profiler: piggyback branches never taken.
  hooks.recorder = &recorder;
  hooks.progress = &cell;
  sched.AttachRunControl(hooks);
  for (int i = 0; i < 300; ++i) {
    sched.ScheduleAt(SimTime::Micros(i), [] {});
  }
  sched.RunUntil(SimTime::Seconds(1));
  sched.DetachRunControl(hooks);
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_EQ(cell.Load().ticks, 0u);
}

TEST(RunControlHooksTest, AttachRegistersSchedulerSlotAndDetachClearsIt) {
  Scheduler sched;
  SchedulerSlot slot;
  RunControlHooks hooks;
  hooks.scheduler_slot = &slot;
  sched.AttachRunControl(hooks);

  bool reached = false;
  EXPECT_TRUE(slot.With([&](Scheduler& s) {
    reached = true;
    EXPECT_EQ(&s, &sched);
  }));
  EXPECT_TRUE(reached);

  sched.DetachRunControl(hooks);
  EXPECT_FALSE(slot.With([](Scheduler&) { FAIL() << "slot not cleared"; }));
}

TEST(RunControlHooksTest, DetachStopsRecording) {
  Scheduler sched;
  SchedulerProfiler profiler(FastSampling());
  FlightRecorder recorder(64);
  RunControlHooks hooks;
  hooks.profiler = &profiler;
  hooks.recorder = &recorder;
  sched.AttachRunControl(hooks);
  for (int i = 0; i < 100; ++i) {
    sched.ScheduleAt(SimTime::Micros(i), [] {});
  }
  sched.RunUntil(SimTime::Millis(1));
  sched.DetachRunControl(hooks);
  const uint64_t at_detach = recorder.total_recorded();
  EXPECT_GT(at_detach, 0u);

  // Profiler re-attached alone: events run but the ring stays frozen.
  sched.SetProfiler(&profiler);
  for (int i = 0; i < 100; ++i) {
    sched.ScheduleAfter(SimTime::Micros(i), [] {});
  }
  sched.RunUntil(SimTime::Seconds(1));
  EXPECT_EQ(recorder.total_recorded(), at_detach);
}

// --- SIGUSR1 on-demand status ------------------------------------------------

TEST(StatusSignalTest, Usr1SetsFlagConsumedOnce) {
  InstallStatusSignalHandler();
  (void)ConsumeStatusRequest();  // Drain any stale request.
  EXPECT_FALSE(ConsumeStatusRequest());
  ASSERT_EQ(raise(SIGUSR1), 0);
  EXPECT_TRUE(ConsumeStatusRequest());
  EXPECT_FALSE(ConsumeStatusRequest());
}

// --- Watchdog: synthetic stuck replica through EnsembleRunner ----------------

// Released by the test once the watchdog has dumped the stuck replica.
std::atomic<bool> g_release_wedge{false};

// Minimal experiment following the unified API whose replica can wedge:
// it executes a stream of quick ticks (so progress gets published), then
// one event that spins on g_release_wedge — sim time and executed count
// freeze exactly the way a hung callback would freeze them.
struct StuckExperiment {
  struct Config {
    uint64_t seed = 1;
    SimTime horizon = SimTime::Seconds(1);
    uint32_t fleet_size = 100;  // Exercises the devices-per-replica gauge.
    bool wedge = false;
    RunControlHooks control;
    std::vector<std::string> Validate() const { return {}; }
  };
  struct Report {
    uint64_t events_executed = 0;
  };
  static constexpr const char* Name() { return "stuck-replica-test"; }

  static Report Run(const Config& config) {
    Scheduler sched;
    sched.AttachRunControl(config.control);
    for (int i = 0; i < 2000; ++i) {
      sched.ScheduleAt(SimTime::Micros(i), [] {}, "stuck.tick");
    }
    if (config.wedge) {
      sched.ScheduleAt(SimTime::Micros(5000), [] {
        while (!g_release_wedge.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }, "stuck.wedge");
    }
    Report report;
    sched.RunUntil(config.horizon);
    report.events_executed = sched.executed_count();
    sched.DetachRunControl(config.control);
    return report;
  }
};

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return content;
}

TEST(WatchdogTest, StalledReplicaIsDumpedAndFlagged) {
  const std::string dir = testing::TempDir() + "watchdog_stall_test";
  fs::remove_all(dir);

  g_release_wedge.store(false, std::memory_order_release);
  StuckExperiment::Config base;
  base.wedge = true;
  EnsembleOptions options;
  options.replicas = 1;
  options.threads = 1;
  options.status_dir = dir;
  options.artifacts_dir = dir;
  options.heartbeat_seconds = 0.05;
  options.stall_deadline_seconds = 0.25;
#if defined(CENTSIM_TSAN)
  // The deep snapshot of a live (spinning) replica is documented
  // best-effort and inherently racy; keep TSan runs clean.
  options.deep_stall_snapshot = false;
#endif

  // The wedge spins until the watchdog has produced the stall dump (with a
  // hard timeout so a watchdog bug fails the test instead of hanging it).
  const std::string flight_dump = dir + "/replica_0_flight.jsonl";
  std::thread releaser([&] {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (!fs::exists(flight_dump) && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    g_release_wedge.store(true, std::memory_order_release);
  });
  const auto result = EnsembleRunner<StuckExperiment>::Run(base, options);
  releaser.join();

  // The watchdog flagged the replica (sticky: it finished afterwards).
  EXPECT_EQ(result.stalled_replicas, 1u);
  ASSERT_EQ(result.manifest.replica_runs.size(), 1u);
  EXPECT_TRUE(result.manifest.replica_runs[0].stalled);
  EXPECT_EQ(result.manifest.StalledReplicaCount(), 1u);
  EXPECT_GT(result.replicas[0].events_executed, 0u);

  // Stall artifacts: flight dump (JSONL, every line parseable) ...
  ASSERT_TRUE(fs::exists(flight_dump));
  {
    std::ifstream in(flight_dump);
    std::string line;
    size_t lines = 0;
    while (std::getline(in, line)) {
      std::string error;
      EXPECT_TRUE(JsonLint(line, &error)) << line << ": " << error;
      ++lines;
    }
    EXPECT_GT(lines, 0u);
  }
#if !defined(CENTSIM_TSAN)
  // ... the deep scheduler snapshot ...
  const std::string sched_dump = dir + "/replica_0_sched.json";
  ASSERT_TRUE(fs::exists(sched_dump));
  {
    std::string error;
    const std::string content = ReadAll(sched_dump);
    EXPECT_TRUE(JsonLint(content, &error)) << error;
    EXPECT_NE(content.find("\"pending\""), std::string::npos);
  }
#endif
  // ... and the live status files, including a "stall" heartbeat line.
  ASSERT_TRUE(fs::exists(dir + "/run_status.json"));
  EXPECT_FALSE(fs::exists(dir + "/run_status.json.tmp"));
  {
    std::string error;
    EXPECT_TRUE(JsonLint(ReadAll(dir + "/run_status.json"), &error)) << error;
  }
  EXPECT_NE(ReadAll(dir + "/status.jsonl").find("\"event\":\"stall\""), std::string::npos);

  // The manifest on disk carries the verdict too.
  const std::string manifest = ReadAll(dir + "/ensemble_manifest.json");
  EXPECT_NE(manifest.find("\"stalled_replicas\": 1"), std::string::npos);

  fs::remove_all(dir);
}

TEST(WatchdogTest, HealthyEnsembleHasNoStalls) {
  const std::string dir = testing::TempDir() + "watchdog_healthy_test";
  fs::remove_all(dir);

  StuckExperiment::Config base;
  base.wedge = false;
  EnsembleOptions options;
  options.replicas = 3;
  options.threads = 2;
  options.status_dir = dir;
  options.heartbeat_seconds = 0.02;
  options.stall_deadline_seconds = 30.0;  // Armed, but far beyond the run.

  const auto result = EnsembleRunner<StuckExperiment>::Run(base, options);
  EXPECT_EQ(result.stalled_replicas, 0u);
  EXPECT_EQ(result.manifest.StalledReplicaCount(), 0u);
  for (const auto& run : result.manifest.replica_runs) {
    EXPECT_FALSE(run.stalled);
  }
  EXPECT_EQ(result.status_dir, dir);

  // Stop() always writes a final status even if no heartbeat fired.
  ASSERT_TRUE(fs::exists(dir + "/run_status.json"));
  std::string error;
  const std::string status = ReadAll(dir + "/run_status.json");
  EXPECT_TRUE(JsonLint(status, &error)) << error;
  EXPECT_NE(status.find("\"replicas_done\": 3"), std::string::npos);
  EXPECT_NE(ReadAll(dir + "/status.jsonl").find("\"event\":\"final\""), std::string::npos);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace centsim
