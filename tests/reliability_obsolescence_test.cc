#include "src/reliability/obsolescence.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

TEST(ObsolescenceTest, KindNames) {
  EXPECT_STREQ(ObsolescenceKindName(ObsolescenceKind::kTechnical), "technical");
  EXPECT_STREQ(ObsolescenceKindName(ObsolescenceKind::kFunctional), "functional");
}

TEST(TimelineTest, EventsSortedByTime) {
  TechnologyTimeline tl;
  tl.Add({"b", SimTime::Years(5), ObsolescenceKind::kTechnical});
  tl.Add({"a", SimTime::Years(2), ObsolescenceKind::kTechnical});
  tl.Add({"c", SimTime::Years(9), ObsolescenceKind::kTechnical});
  const auto& events = tl.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].technology, "a");
  EXPECT_EQ(events[2].technology, "c");
}

TEST(TimelineTest, SunsetsByCutsCorrectly) {
  TechnologyTimeline tl = TechnologyTimeline::UsCellularDefault();
  EXPECT_EQ(tl.SunsetsBy(SimTime::Years(1)).size(), 0u);
  EXPECT_EQ(tl.SunsetsBy(SimTime::Years(5)).size(), 2u);   // 2G + 3G.
  EXPECT_EQ(tl.SunsetsBy(SimTime::Years(50)).size(), 5u);  // All.
}

TEST(TimelineTest, SunsetOfFindsTechnology) {
  TechnologyTimeline tl = TechnologyTimeline::UsCellularDefault();
  const auto e = tl.SunsetOf("cellular-4g");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->at, SimTime::Years(14));
  EXPECT_FALSE(tl.SunsetOf("carrier-pigeon").has_value());
}

TEST(TimelineTest, IsSunsetRespectsTime) {
  TechnologyTimeline tl = TechnologyTimeline::UsCellularDefault();
  EXPECT_FALSE(tl.IsSunset("cellular-4g", SimTime::Years(10)));
  EXPECT_TRUE(tl.IsSunset("cellular-4g", SimTime::Years(14)));
  EXPECT_FALSE(tl.IsSunset("unknown", SimTime::Years(100)));
}

TEST(TimelineTest, RandomTimelineIsOrderedAndBounded) {
  RandomStream rng(1);
  TechnologyTimeline tl = TechnologyTimeline::RandomCellular(rng, 5, 8.0, 15.0);
  ASSERT_EQ(tl.events().size(), 5u);
  SimTime prev;
  for (const auto& e : tl.events()) {
    EXPECT_GT(e.at, prev);
    EXPECT_LE((e.at - prev).ToYears(), 15.0 + 1e-9);
    EXPECT_GE((e.at - prev).ToYears(), 8.0 - 1e-9);
    prev = e.at;
  }
}

}  // namespace
}  // namespace centsim
