#include "src/security/siphash.h"

#include <gtest/gtest.h>

#include <vector>

namespace centsim {
namespace {

// Official SipHash-2-4 test vectors (Aumasson & Bernstein reference code):
// key = 00 01 02 ... 0f, message = 00 01 02 ... (n-1) bytes.
SipHashKey ReferenceKey() {
  SipHashKey key;
  for (int i = 0; i < 16; ++i) {
    key[i] = static_cast<uint8_t>(i);
  }
  return key;
}

std::vector<uint8_t> ReferenceMessage(size_t n) {
  std::vector<uint8_t> msg(n);
  for (size_t i = 0; i < n; ++i) {
    msg[i] = static_cast<uint8_t>(i);
  }
  return msg;
}

TEST(SipHashTest, EmptyInputVector) {
  EXPECT_EQ(SipHash24(ReferenceKey(), nullptr, 0), 0x726fdb47dd0e0e31ULL);
}

TEST(SipHashTest, OneByteVector) {
  const auto msg = ReferenceMessage(1);
  EXPECT_EQ(SipHash24(ReferenceKey(), msg.data(), msg.size()), 0x74f839c593dc67fdULL);
}

TEST(SipHashTest, EightByteVector) {
  const auto msg = ReferenceMessage(8);
  EXPECT_EQ(SipHash24(ReferenceKey(), msg.data(), msg.size()), 0x93f5f5799a932462ULL);
}

TEST(SipHashTest, FifteenByteVector) {
  const auto msg = ReferenceMessage(15);
  EXPECT_EQ(SipHash24(ReferenceKey(), msg.data(), msg.size()), 0xa129ca6149be45e5ULL);
}

TEST(SipHashTest, KeySensitivity) {
  const auto msg = ReferenceMessage(12);
  SipHashKey other = ReferenceKey();
  other[0] ^= 1;
  EXPECT_NE(SipHash24(ReferenceKey(), msg.data(), msg.size()),
            SipHash24(other, msg.data(), msg.size()));
}

TEST(SipHashTest, MessageSensitivity) {
  auto msg = ReferenceMessage(12);
  const uint64_t clean = SipHash24(ReferenceKey(), msg.data(), msg.size());
  msg[5] ^= 0x80;
  EXPECT_NE(SipHash24(ReferenceKey(), msg.data(), msg.size()), clean);
}

TEST(SipHashTest, LengthIsPartOfDomain) {
  // A message and its zero-extended version must differ.
  const auto short_msg = std::vector<uint8_t>{0, 0, 0};
  const auto long_msg = std::vector<uint8_t>{0, 0, 0, 0};
  EXPECT_NE(SipHash24(ReferenceKey(), short_msg.data(), short_msg.size()),
            SipHash24(ReferenceKey(), long_msg.data(), long_msg.size()));
}

}  // namespace
}  // namespace centsim
