#include "src/core/device.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/core/fleet.h"
#include "src/energy/harvester.h"
#include "src/net/backhaul.h"

namespace centsim {
namespace {

class DeviceFixture : public ::testing::Test {
 protected:
  DeviceFixture()
      : sim_(21),
        fabric_(sim_),
        backhaul_("bh", {SimTime::Years(1000), SimTime::Hours(1)}, RandomStream(2)) {
    fabric_.SetEndpoint(&endpoint_);
    GatewayConfig gc;
    gc.id = 500;
    gc.tech = RadioTech::k802154;
    gc.name = "gw";
    gateway_ = std::make_unique<Gateway>(sim_, gc, SeriesSystem::RaspberryPiGateway());
    gateway_->SetRepairPolicy([](SimTime t) { return t + SimTime::Hours(1); });
    gateway_->AttachBackhaul(&backhaul_);
    gateway_->Deploy();
    fabric_.AddGateway(gateway_.get());
  }

  std::unique_ptr<EdgeDevice> MakeDevice(EdgeDeviceConfig cfg, bool big_energy = true) {
    // 50 mW constant ("big solar") vs the default small solar cell.
    EnergyManager energy(big_energy ? HarvesterModel::Constant(0.05)
                                    : HarvesterModel::Solar(SolarHarvester::Params{}),
                         EnergyStorage::Supercap(), LoadProfileFor(cfg));
    return std::make_unique<EdgeDevice>(sim_, cfg, fabric_, fleet_, std::move(energy),
                                        SeriesSystem::EnergyHarvestingNode());
  }

  EdgeDeviceConfig BaseConfig(uint32_t id = 1) {
    EdgeDeviceConfig cfg;
    cfg.id = id;
    cfg.x_m = 30;
    cfg.y_m = 0;
    cfg.tech = RadioTech::k802154;
    cfg.tx_power_dbm = 4.0;
    cfg.report_interval = SimTime::Hours(1);
    return cfg;
  }

  Simulation sim_;
  NetworkFabric fabric_;
  CloudEndpoint endpoint_;
  Backhaul backhaul_;
  std::unique_ptr<Gateway> gateway_;
  DeviceFleet fleet_{sim_};
};

TEST_F(DeviceFixture, ReportsAtConfiguredCadence) {
  auto dev = MakeDevice(BaseConfig());
  dev->Deploy();
  sim_.RunUntil(SimTime::Days(10));
  // 240 hours: ~240 attempts (random phase may drop one).
  EXPECT_GE(dev->attempts(), 238u);
  EXPECT_LE(dev->attempts(), 241u);
  EXPECT_GT(dev->delivered(), 200u);
  EXPECT_EQ(endpoint_.PacketsFrom(1), dev->delivered());
}

TEST_F(DeviceFixture, RegistersOfferedLoad) {
  auto dev = MakeDevice(BaseConfig());
  dev->Deploy();
  EXPECT_NEAR(fabric_.OfferedLoadHz(RadioTech::k802154), 1.0 / 3600.0, 1e-9);
  dev.reset();
  EXPECT_NEAR(fabric_.OfferedLoadHz(RadioTech::k802154), 0.0, 1e-12);
}

TEST_F(DeviceFixture, HardwareFailureStopsReporting) {
  auto dev = MakeDevice(BaseConfig());
  bool failed = false;
  dev->SetFailureCallback([&](EdgeDevice&, SimTime) { failed = true; });
  dev->Deploy();
  sim_.RunUntil(SimTime::Years(100));  // Far beyond any BOM draw.
  EXPECT_TRUE(failed);
  EXPECT_FALSE(dev->alive());
  const uint64_t at_failure = dev->attempts();
  sim_.RunUntil(SimTime::Years(101));
  EXPECT_EQ(dev->attempts(), at_failure);
}

TEST_F(DeviceFixture, ReplaceUnitResumesService) {
  auto dev = MakeDevice(BaseConfig());
  dev->SetFailureCallback([this](EdgeDevice& d, SimTime) {
    sim_.scheduler().ScheduleAfter(SimTime::Days(7), [&d] { d.ReplaceUnit(); });
  });
  dev->Deploy();
  sim_.RunUntil(SimTime::Years(100));
  EXPECT_GE(dev->unit_generation(), 2u);
  // With prompt replacement the device keeps reporting across the century.
  EXPECT_GT(dev->delivered(), 500000u);
}

TEST_F(DeviceFixture, EnergyStarvedDeviceSkipsReports) {
  EdgeDeviceConfig cfg = BaseConfig(2);
  // A 10 mW-peak solar cell can afford hourly reports; starve it by
  // shrinking the harvest via the default (small) solar and a huge tx cost.
  cfg.tx_power_dbm = 8.0;
  auto dev = MakeDevice(cfg, /*big_energy=*/false);
  dev->Deploy();
  sim_.RunUntil(SimTime::Days(30));
  // Night hours are bridged by the supercap, so mostly fine — at minimum
  // the device must have attempted and the counters must be consistent.
  uint64_t outcome_total = 0;
  for (int o = 0; o < kDeliveryOutcomeCount; ++o) {
    outcome_total += dev->OutcomeCount(static_cast<DeliveryOutcome>(o));
  }
  EXPECT_EQ(outcome_total, dev->attempts());
}

TEST_F(DeviceFixture, LoraDeviceObeysDutyCycle) {
  EdgeDeviceConfig cfg = BaseConfig(3);
  cfg.tech = RadioTech::kLoRa;
  cfg.tx_power_dbm = 14.0;
  cfg.report_interval = SimTime::Seconds(2);  // Far inside the duty gap.
  GatewayConfig gc;
  gc.id = 600;
  gc.tech = RadioTech::kLoRa;
  gc.name = "lgw";
  Gateway lora_gw(sim_, gc, SeriesSystem::RaspberryPiGateway());
  lora_gw.SetRepairPolicy([](SimTime t) { return t + SimTime::Hours(1); });
  lora_gw.AttachBackhaul(&backhaul_);
  lora_gw.Deploy();
  fabric_.AddGateway(&lora_gw);

  auto dev = MakeDevice(cfg);
  dev->Deploy();
  sim_.RunUntil(SimTime::Hours(1));
  EXPECT_GT(dev->OutcomeCount(DeliveryOutcome::kDutyCycleDeferred), 0u);
  // SF9 ~0.165 s airtime at 1% duty: ~16.5 s between frames -> <= ~220
  // transmissions in the hour; deferred attempts dominate.
  EXPECT_LT(dev->delivered(), 250u);
}

TEST_F(DeviceFixture, GenerationCountsStartAtOne) {
  auto dev = MakeDevice(BaseConfig(4));
  EXPECT_EQ(dev->unit_generation(), 0u);
  dev->Deploy();
  EXPECT_EQ(dev->unit_generation(), 1u);
}

}  // namespace
}  // namespace centsim
