#include "src/reliability/burn_in.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

BathtubHazard InfantHeavy() {
  BathtubHazard::Params p;
  p.infant_shape = 0.4;
  p.infant_scale = SimTime::Years(30);  // Meaningful infant hazard.
  p.random_mttf = SimTime::Years(200);
  p.wearout_shape = 4.0;
  p.wearout_scale = SimTime::Years(25);
  return BathtubHazard(p);
}

TEST(BurnInTest, ScreensInfantMortality) {
  const BathtubHazard hazard = InfantHeavy();
  BurnInPolicy policy;
  policy.duration = SimTime::Days(60);
  const auto a = AssessBurnIn(hazard, policy, SimTime::Years(10));
  EXPECT_GT(a.bench_failure_fraction, 0.0);
  EXPECT_LT(a.field_failure_with, a.field_failure_without);
  EXPECT_GT(a.relative_reduction, 0.05);
}

TEST(BurnInTest, LongerBurnInScreensMore) {
  const BathtubHazard hazard = InfantHeavy();
  BurnInPolicy short_burn;
  short_burn.duration = SimTime::Days(7);
  BurnInPolicy long_burn;
  long_burn.duration = SimTime::Days(90);
  const auto s = AssessBurnIn(hazard, short_burn, SimTime::Years(10));
  const auto l = AssessBurnIn(hazard, long_burn, SimTime::Years(10));
  EXPECT_GT(l.relative_reduction, s.relative_reduction);
  EXPECT_GT(l.bench_failure_fraction, s.bench_failure_fraction);
}

TEST(BurnInTest, UselessForMemorylessHazard) {
  // Exponential components gain nothing from screening.
  ExponentialHazard hazard(SimTime::Years(20));
  BurnInPolicy policy;
  policy.duration = SimTime::Days(60);
  const auto a = AssessBurnIn(hazard, policy, SimTime::Years(10));
  EXPECT_NEAR(a.relative_reduction, 0.0, 1e-9);
}

TEST(BurnInTest, CounterproductiveForPureWearout) {
  // For a pure wear-out part, burn-in consumes life: conditional field
  // failure is *higher* after screening.
  WeibullHazard hazard(4.0, SimTime::Years(15));
  BurnInPolicy policy;
  policy.duration = SimTime::Years(1);  // Exaggerated to show the effect.
  const auto a = AssessBurnIn(hazard, policy, SimTime::Years(10));
  EXPECT_GT(a.field_failure_with, a.field_failure_without);
  EXPECT_LT(a.relative_reduction, 0.0);
}

TEST(BurnInTest, CostAccountingPositiveWhenEffective) {
  const BathtubHazard hazard = InfantHeavy();
  BurnInPolicy policy;
  policy.duration = SimTime::Days(60);
  policy.cost_per_unit_usd = 4.0;
  const auto a = AssessBurnIn(hazard, policy, SimTime::Years(10));
  EXPECT_GT(a.cost_per_prevented_failure_usd, 0.0);
}

}  // namespace
}  // namespace centsim
