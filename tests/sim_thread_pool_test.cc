#include "src/sim/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace centsim {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not deadlock.
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 10 * (round + 1));
  }
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    ++counter;
    for (int i = 0; i < 5; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  });
  pool.Wait();  // Must cover the nested submissions too.
  EXPECT_EQ(counter.load(), 6);
}

TEST(ThreadPoolTest, WorkDistributesAcrossSlotsDeterministically) {
  // Each task writes its own slot: no ordering assumptions, just
  // completeness — the pattern EnsembleRunner relies on.
  ThreadPool pool(8);
  std::vector<int> slots(64, 0);
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&slots, i] {
      std::this_thread::sleep_for(std::chrono::microseconds(100 - i));
      slots[i] = i + 1;
    });
  }
  pool.Wait();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(slots[i], i + 1);
  }
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace centsim
