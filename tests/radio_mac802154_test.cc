#include "src/radio/mac_802154.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

TEST(CsmaCaTest, IdleChannelSucceedsFirstRound) {
  CsmaParams params;
  RandomStream rng(1);
  const auto out =
      RunCsmaCa(params, SimTime(), rng, [](SimTime) { return false; });
  EXPECT_EQ(out.result, CsmaResult::kSuccess);
  EXPECT_EQ(out.backoffs, 1u);
  // Delay is backoff slots (0..7) * 320 us + one CCA.
  EXPECT_GE(out.access_delay, params.cca_duration);
  EXPECT_LE(out.access_delay, params.unit_backoff * 7.0 + params.cca_duration);
}

TEST(CsmaCaTest, BusyChannelFailsAfterMaxBackoffs) {
  CsmaParams params;
  RandomStream rng(2);
  const auto out = RunCsmaCa(params, SimTime(), rng, [](SimTime) { return true; });
  EXPECT_EQ(out.result, CsmaResult::kChannelAccessFailure);
  EXPECT_EQ(out.backoffs, params.max_csma_backoffs + 1u);
}

TEST(CsmaCaTest, BackoffExponentCapped) {
  // With BE capped at macMaxBE, the worst-case delay is bounded:
  // rounds with BE = 3,4,5,5,5 -> max slots 7+15+31+31+31 = 115.
  CsmaParams params;
  RandomStream rng(3);
  const auto out = RunCsmaCa(params, SimTime(), rng, [](SimTime) { return true; });
  const SimTime worst = params.unit_backoff * 115.0 + params.cca_duration * 5.0;
  EXPECT_LE(out.access_delay, worst);
}

TEST(CsmaCaTest, EmpiricalFailureRateMatchesClosedForm) {
  CsmaParams params;
  const double p_busy = 0.6;
  RandomStream rng(4);
  RandomStream channel_rng(5);
  int failures = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const auto out = RunCsmaCa(params, SimTime(), rng, [&](SimTime) {
      return channel_rng.NextBool(p_busy);
    });
    failures += out.result == CsmaResult::kChannelAccessFailure ? 1 : 0;
  }
  const double expected = ChannelAccessFailureProbability(params, p_busy);
  EXPECT_NEAR(static_cast<double>(failures) / trials, expected, 0.01);
}

TEST(CsmaCaTest, EmpiricalDelayMatchesClosedForm) {
  CsmaParams params;
  const double p_busy = 0.3;
  RandomStream rng(6);
  RandomStream channel_rng(7);
  double total_s = 0.0;
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    total_s += RunCsmaCa(params, SimTime(), rng, [&](SimTime) {
                 return channel_rng.NextBool(p_busy);
               }).access_delay.ToSeconds();
  }
  const double expected = ExpectedAccessDelay(params, p_busy).ToSeconds();
  EXPECT_NEAR(total_s / trials, expected, expected * 0.05);
}

TEST(CsmaCaTest, FailureProbabilityMonotoneInBusy) {
  CsmaParams params;
  double prev = -1.0;
  for (double p : {0.0, 0.3, 0.6, 0.9, 1.0}) {
    const double f = ChannelAccessFailureProbability(params, p);
    EXPECT_GT(f, prev);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(ChannelAccessFailureProbability(params, 1.0), 1.0);
}

TEST(CsmaCaTest, MoreBackoffsLowerFailureProbability) {
  CsmaParams few;
  few.max_csma_backoffs = 2;
  CsmaParams many;
  many.max_csma_backoffs = 6;
  EXPECT_GT(ChannelAccessFailureProbability(few, 0.5),
            ChannelAccessFailureProbability(many, 0.5));
}

}  // namespace
}  // namespace centsim
