#include "src/net/packet.h"

#include <gtest/gtest.h>

#include "src/net/blocklist.h"

namespace centsim {
namespace {

TEST(PacketTest, RadioTechNames) {
  EXPECT_STREQ(RadioTechName(RadioTech::k802154), "802.15.4");
  EXPECT_STREQ(RadioTechName(RadioTech::kLoRa), "LoRa");
}

TEST(PacketTest, EveryOutcomeHasAName) {
  for (int i = 0; i < kDeliveryOutcomeCount; ++i) {
    const char* name = DeliveryOutcomeName(static_cast<DeliveryOutcome>(i));
    EXPECT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "outcome " << i;
  }
}

TEST(PacketTest, DefaultsMatchPaperPayload) {
  UplinkPacket pkt;
  EXPECT_EQ(pkt.payload_bytes, 12u);  // Fits a SensorReading; under 24 B.
  EXPECT_FALSE(pkt.authenticated);
}

TEST(BlocklistTest, BlockUnblockRoundTrip) {
  Blocklist bl;
  EXPECT_FALSE(bl.IsBlocked(5));
  bl.Block(5, "bad firmware");
  EXPECT_TRUE(bl.IsBlocked(5));
  ASSERT_NE(bl.ReasonFor(5), nullptr);
  EXPECT_EQ(*bl.ReasonFor(5), "bad firmware");
  EXPECT_EQ(bl.ReasonFor(6), nullptr);
  bl.Unblock(5);
  EXPECT_FALSE(bl.IsBlocked(5));
  EXPECT_EQ(bl.size(), 0u);
}

TEST(BlocklistTest, ReblockUpdatesReason) {
  Blocklist bl;
  bl.Block(1, "first");
  bl.Block(1, "second");
  EXPECT_EQ(bl.size(), 1u);
  EXPECT_EQ(*bl.ReasonFor(1), "second");
}

}  // namespace
}  // namespace centsim
