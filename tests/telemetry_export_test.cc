#include <gtest/gtest.h>

#include <sstream>

#include "src/sim/metrics.h"
#include "src/sim/profiler.h"
#include "src/sim/scheduler.h"
#include "src/telemetry/bench_record.h"
#include "src/telemetry/chrome_trace.h"
#include "src/telemetry/json.h"
#include "src/telemetry/metrics_jsonl.h"
#include "src/telemetry/run_manifest.h"

namespace centsim {
namespace {

TEST(JsonLint, AcceptsValidDocuments) {
  for (const char* doc : {
           R"({})",
           R"([1, 2.5, -3e8, "x", true, false, null])",
           R"({"a": {"b": ["é\n\\", 0, 0.5e-3]}})",
       }) {
    std::string error;
    EXPECT_TRUE(JsonLint(doc, &error)) << doc << ": " << error;
  }
}

TEST(JsonLint, RejectsMalformedDocuments) {
  for (const char* doc : {
           "",
           "{",
           R"({"a": 1,})",
           R"({"a" 1})",
           R"([1 2])",
           R"("unterminated)",
           R"({"a": 01})",
           R"({"a": nan})",
           R"({} trailing)",
       }) {
    std::string error;
    EXPECT_FALSE(JsonLint(doc, &error)) << "accepted: " << doc;
  }
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(2.5), "2.5");
}

TEST(MetricsJsonl, EveryLineIsValidJson) {
  MetricsRegistry registry;
  registry.GetCounter("uplink.outcomes", MetricLabels{{"tech", "LoRa"}, {"outcome", "delivered"}})
      ->Increment(42.0);
  registry.GetGauge("queue.depth")->Set(7.0);
  registry.GetHistogram("outage.hours")->Observe(1.5);
  HistogramMetric* bounded = registry.GetHistogram("latency.ms", {}, 0.0, 10.0, 10);
  for (int i = 0; i < 50; ++i) {
    bounded->Observe(i % 10 + 0.5);
  }
  // A name that needs escaping must not corrupt the line.
  registry.GetCounter(R"(weird"name)", MetricLabels{{"k", "v\\w"}})->Increment();

  std::ostringstream out;
  WriteMetricsJsonl(registry, out);
  std::istringstream lines(out.str());
  std::string line;
  size_t count = 0;
  while (std::getline(lines, line)) {
    std::string error;
    EXPECT_TRUE(JsonLint(line, &error)) << line << ": " << error;
    ++count;
  }
  EXPECT_EQ(count, 5u);
  // Bounded histograms expose quantiles; unbounded ones must not.
  EXPECT_NE(out.str().find("\"p99\""), std::string::npos);
  EXPECT_NE(out.str().find("\"latency.ms\""), std::string::npos);
}

TEST(ChromeTrace, WellFormedAndCarriesSpans) {
  Scheduler sched;
  SchedulerProfiler::Options opts;
  opts.time_sample_every = 1;
  opts.queue_depth_sample_every = 8;
  SchedulerProfiler profiler(opts);
  sched.SetProfiler(&profiler);
  for (int i = 0; i < 64; ++i) {
    sched.ScheduleAt(SimTime::Micros(i), [] {}, i % 2 == 0 ? "cat.even" : "cat.odd");
  }
  sched.RunUntil(SimTime::Seconds(1));

  ChromeTraceWriter writer("unit-test");
  writer.AddProfile(profiler);
  std::ostringstream out;
  writer.WriteTo(out);

  std::string error;
  ASSERT_TRUE(JsonLint(out.str(), &error)) << error;
  EXPECT_NE(out.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.str().find("\"cat.even\""), std::string::npos);
  EXPECT_NE(out.str().find("\"cat.odd\""), std::string::npos);
  EXPECT_NE(out.str().find("queue_depth"), std::string::npos);
  EXPECT_NE(out.str().find("\"ph\":\"X\""), std::string::npos);
}

TEST(RunManifest, JsonRoundTripsKeyFields) {
  RunManifest manifest;
  manifest.run_name = "unit";
  manifest.seed = 1234;
  manifest.config_digest = ConfigDigest("a=1\nb=2\n");
  manifest.horizon = SimTime::Years(50);
  manifest.wall_seconds = 1.25;
  manifest.events_executed = 99;
  manifest.AddExtra("devices", "8");

  const std::string json = manifest.ToJson();
  std::string error;
  ASSERT_TRUE(JsonLint(json, &error)) << error;
  EXPECT_NE(json.find("\"run_name\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 1234"), std::string::npos);
  EXPECT_NE(json.find(manifest.config_digest), std::string::npos);
  EXPECT_NE(json.find("\"devices\": \"8\""), std::string::npos);
}

TEST(RunManifest, ConfigDigestIsStableAndSensitive) {
  EXPECT_EQ(ConfigDigest("seed=1\n"), ConfigDigest("seed=1\n"));
  EXPECT_NE(ConfigDigest("seed=1\n"), ConfigDigest("seed=2\n"));
  EXPECT_EQ(ConfigDigest("").size(), 16u);  // 64-bit hex.
}

TEST(BenchRecord, ProducesValidJsonWithManifest) {
  BenchReport bench("unit_test");
  bench.Add("events_per_sec", 1.5e6, "1/s");
  bench.Add("overhead", 2.5, "%");
  RunManifest manifest;
  manifest.run_name = "unit_test";
  manifest.seed = 7;
  bench.SetManifest(std::move(manifest));

  const std::string json = bench.ToJson();
  std::string error;
  ASSERT_TRUE(JsonLint(json, &error)) << error;
  EXPECT_NE(json.find("\"bench\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"events_per_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"manifest\""), std::string::npos);
}

}  // namespace
}  // namespace centsim
