// Golden determinism tests for the event core.
//
// The scheduler's ordering contract — (time, schedule order), same seed ⇒
// bit-identical outputs — is what makes century-scale ensembles
// reproducible. These tests pin a digest of full experiment outputs
// (metrics.jsonl text plus headline report fields, rendered as hexfloat)
// captured from the seed std::function/priority_queue scheduler; the
// allocation-free slot/generation event core must reproduce every byte.
//
// If a PR *intentionally* changes simulation behaviour (new mechanism, RNG
// reordering), re-capture the constants below by running with
// --gtest_also_run_disabled_tests=0 and copying the printed digests. A PR
// that only claims to change scheduler *performance* must not touch them.

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <string>

#include "src/core/experiment.h"
#include "src/core/montecarlo.h"
#include "src/sim/metrics.h"
#include "src/telemetry/metrics_jsonl.h"
#include "src/telemetry/run_manifest.h"

namespace centsim {
namespace {

// Digests captured from the seed scheduler (pre event-core), commit
// 9ba657e, seed 20260806.
constexpr const char* kGoldenFiftyYearDigest = "736963e0451e5255";
constexpr const char* kGoldenEnsembleDigest = "a5985ca18db33a95";

FiftyYearConfig GoldenConfig() {
  FiftyYearConfig cfg;
  cfg.seed = 20260806;
  cfg.devices_802154 = 3;
  cfg.devices_lora = 3;
  cfg.owned_gateways = 2;
  cfg.helium_hotspots = 3;
  cfg.report_interval = SimTime::Hours(12);
  cfg.horizon = SimTime::Years(50);
  return cfg;
}

// Folds a full fifty-year run into one digest: the complete metrics.jsonl
// text plus the headline report fields in hexfloat (bit-exact rendering).
std::string FiftyYearDigest() {
  FiftyYearConfig cfg = GoldenConfig();
  MetricsRegistry registry;
  cfg.metrics = &registry;
  const FiftyYearReport report = RunFiftyYearExperiment(cfg);
  std::ostringstream out;
  WriteMetricsJsonl(registry, out);
  out << std::hexfloat << report.weekly_uptime << '|' << report.longest_gap_weeks << '|'
      << report.total_packets << '|' << report.device_failures << '|'
      << report.device_replacements << '|' << report.owned_gateway_failures << '|'
      << report.hotspot_failures << '|' << report.maintenance_repairs << '|'
      << report.maintenance_hours << '|' << report.maintenance_cost_usd << '|'
      << report.credits_spent << '|' << report.credits_refused << '|' << report.auth_rejected
      << '|' << report.replay_rejected;
  return ConfigDigest(out.str());
}

std::string EnsembleDigest(uint32_t threads) {
  FiftyYearConfig base = GoldenConfig();
  base.horizon = SimTime::Years(5);  // Eight 5-year replicas stay quick.
  const FiftyYearEnsemble ens = SweepFiftyYear(base, 8, 0.95, threads);
  std::ostringstream out;
  out << std::hexfloat;
  for (double v : ens.weekly_uptime.values()) {
    out << v << '\n';
  }
  for (double v : ens.helium_path_uptime.values()) {
    out << v << '\n';
  }
  for (double v : ens.longest_gap_weeks.values()) {
    out << v << '\n';
  }
  out << ens.device_failures.mean() << '|' << ens.device_failures.variance() << '|'
      << ens.maintenance_hours.mean() << '|' << ens.credits_spent.mean() << '|'
      << ens.runs_meeting_weekly_goal << '|' << ens.runs_helium_path_died;
  return ConfigDigest(out.str());
}

TEST(GoldenDigestTest, FiftyYearOutputMatchesSeedScheduler) {
  const std::string digest = FiftyYearDigest();
  std::printf("golden fifty-year digest: %s\n", digest.c_str());
  EXPECT_EQ(digest, kGoldenFiftyYearDigest);
}

TEST(GoldenDigestTest, EnsembleOutputMatchesSeedSchedulerAtAnyThreadCount) {
  const std::string serial = EnsembleDigest(1);
  const std::string threaded = EnsembleDigest(3);
  std::printf("golden ensemble digest: %s\n", serial.c_str());
  EXPECT_EQ(serial, kGoldenEnsembleDigest);
  EXPECT_EQ(threaded, kGoldenEnsembleDigest);
}

}  // namespace
}  // namespace centsim
