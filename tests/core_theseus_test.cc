#include "src/core/theseus.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

CenturyConfig QuickConfig() {
  CenturyConfig cfg;
  cfg.seed = 5;
  cfg.fleet_size = 400;
  cfg.horizon = SimTime::Years(100);
  cfg.batch.zone_count = 8;
  cfg.batch.cycle_period = SimTime::Years(6);
  return cfg;
}

TEST(CenturyTest, AvailabilityBounded) {
  const auto report = RunCenturyScenario(QuickConfig());
  EXPECT_GT(report.mean_availability, 0.0);
  EXPECT_LE(report.mean_availability, 1.0);
  EXPECT_EQ(report.yearly_availability.size(), 100u);
  for (double a : report.yearly_availability) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0 + 1e-9);
  }
}

TEST(CenturyTest, ShipOfTheseusHoldsAvailabilityHigh) {
  // No unit lasts a century, yet the pipelined system stays mostly alive.
  const auto report = RunCenturyScenario(QuickConfig());
  EXPECT_GT(report.mean_availability, 0.8);
  EXPECT_GT(report.total_failures, 400u);       // Everyone dies, repeatedly.
  EXPECT_GT(report.total_replacements, 300u);   // And is replaced in batches.
  EXPECT_GE(report.max_unit_generations, 3.0);  // Multiple generations/site.
}

TEST(CenturyTest, HarvestingFleetBeatsBatteryFleet) {
  CenturyConfig cfg = QuickConfig();
  cfg.device_class = DeviceClassKind::kEnergyHarvesting;
  const auto harvesting = RunCenturyScenario(cfg);
  cfg.device_class = DeviceClassKind::kBatteryPowered;
  const auto battery = RunCenturyScenario(cfg);
  EXPECT_GT(harvesting.mean_availability, battery.mean_availability);
  EXPECT_GT(battery.total_failures, harvesting.total_failures);
}

TEST(CenturyTest, FasterBatchCadenceImprovesAvailability) {
  CenturyConfig slow = QuickConfig();
  slow.batch.cycle_period = SimTime::Years(12);
  CenturyConfig fast = QuickConfig();
  fast.batch.cycle_period = SimTime::Years(3);
  const auto a_slow = RunCenturyScenario(slow);
  const auto a_fast = RunCenturyScenario(fast);
  EXPECT_GT(a_fast.mean_availability, a_slow.mean_availability);
}

TEST(CenturyTest, ProactiveRefreshReducesFailuresInField) {
  CenturyConfig reactive = QuickConfig();
  CenturyConfig proactive = QuickConfig();
  proactive.proactive_refresh_age = SimTime::Years(10);
  const auto r = RunCenturyScenario(reactive);
  const auto p = RunCenturyScenario(proactive);
  EXPECT_GT(p.proactive_replacements, 0u);
  EXPECT_LT(p.total_failures, r.total_failures);
  EXPECT_GE(p.mean_availability, r.mean_availability);
}

TEST(CenturyTest, TechnologyImprovementExtendsLives) {
  CenturyConfig flat = QuickConfig();
  CenturyConfig improving = QuickConfig();
  improving.life_improvement_per_decade = 1.3;
  const auto a = RunCenturyScenario(flat);
  const auto b = RunCenturyScenario(improving);
  EXPECT_LT(b.total_failures, a.total_failures);
}

TEST(CenturyTest, DeterministicForSeed) {
  const auto a = RunCenturyScenario(QuickConfig());
  const auto b = RunCenturyScenario(QuickConfig());
  EXPECT_DOUBLE_EQ(a.mean_availability, b.mean_availability);
  EXPECT_EQ(a.total_failures, b.total_failures);
  EXPECT_EQ(a.units_deployed, b.units_deployed);
}

TEST(CenturyTest, UnitsDeployedConsistent) {
  const auto report = RunCenturyScenario(QuickConfig());
  EXPECT_EQ(report.units_deployed,
            400u + report.total_replacements + report.proactive_replacements);
}

TEST(CenturyTest, SurvivalMedianBelowHorizon) {
  const auto report = RunCenturyScenario(QuickConfig());
  const auto median = report.unit_survival.MedianSurvival();
  ASSERT_TRUE(median.has_value());
  EXPECT_LT(median->ToYears(), 40.0);  // No century-scale individual units.
  EXPECT_GT(median->ToYears(), 3.0);
}

}  // namespace
}  // namespace centsim
