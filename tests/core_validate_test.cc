// Config::Validate() across the three experiments of the unified
// Experiment API: valid defaults produce no diagnostics, and every
// garbage-run hazard produces an actionable message. The Run* entrypoints
// fail fast (CheckConfigOrDie) instead of running silently.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/experiment_api.h"

namespace centsim {
namespace {

bool AnyMentions(const std::vector<std::string>& diagnostics, const std::string& needle) {
  for (const std::string& diagnostic : diagnostics) {
    if (diagnostic.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(ValidateTest, DefaultConfigsAreValid) {
  EXPECT_TRUE(FiftyYearConfig{}.Validate().empty());
  EXPECT_TRUE(DistrictConfig{}.Validate().empty());
  EXPECT_TRUE(CenturyConfig{}.Validate().empty());
}

TEST(ValidateTest, FiftyYearZeroDevices) {
  FiftyYearConfig cfg;
  cfg.devices_802154 = 0;
  cfg.devices_lora = 0;
  const auto diagnostics = cfg.Validate();
  ASSERT_FALSE(diagnostics.empty());
  EXPECT_TRUE(AnyMentions(diagnostics, "no devices"));
}

TEST(ValidateTest, FiftyYearNonPositiveHorizon) {
  FiftyYearConfig cfg;
  cfg.horizon = SimTime();
  EXPECT_TRUE(AnyMentions(cfg.Validate(), "horizon"));
}

TEST(ValidateTest, FiftyYearReportIntervalBeyondHorizon) {
  FiftyYearConfig cfg;
  cfg.horizon = SimTime::Days(1);
  cfg.report_interval = SimTime::Days(2);
  EXPECT_TRUE(AnyMentions(cfg.Validate(), "exceeds horizon"));
}

TEST(ValidateTest, FiftyYearBadProbabilityAndWallet) {
  FiftyYearConfig cfg;
  cfg.hotspot_replacement_prob = 1.5;
  cfg.wallet_usd_per_device = -1.0;
  const auto diagnostics = cfg.Validate();
  EXPECT_TRUE(AnyMentions(diagnostics, "hotspot_replacement_prob"));
  EXPECT_TRUE(AnyMentions(diagnostics, "wallet_usd_per_device"));
}

TEST(ValidateTest, FiftyYearCollectsAllDiagnosticsAtOnce) {
  FiftyYearConfig cfg;
  cfg.devices_802154 = 0;
  cfg.devices_lora = 0;
  cfg.horizon = SimTime();
  cfg.area_side_m = 0.0;
  EXPECT_GE(cfg.Validate().size(), 3u);
}

TEST(ValidateTest, DistrictDiagnostics) {
  DistrictConfig cfg;
  cfg.device_count = 0;
  cfg.zone_grid = 0;
  cfg.gateway_range_m = 0.0;
  const auto diagnostics = cfg.Validate();
  EXPECT_TRUE(AnyMentions(diagnostics, "device_count"));
  EXPECT_TRUE(AnyMentions(diagnostics, "zone_grid"));
  EXPECT_TRUE(AnyMentions(diagnostics, "gateway_range_m"));
}

TEST(ValidateTest, CenturyDiagnostics) {
  CenturyConfig cfg;
  cfg.fleet_size = 0;
  cfg.batch.cycle_period = SimTime();
  cfg.life_improvement_per_decade = 0.0;
  const auto diagnostics = cfg.Validate();
  EXPECT_TRUE(AnyMentions(diagnostics, "fleet_size"));
  EXPECT_TRUE(AnyMentions(diagnostics, "cycle_period"));
  EXPECT_TRUE(AnyMentions(diagnostics, "life_improvement_per_decade"));
}

TEST(ValidateTest, RunEntrypointsFailFastOnInvalidConfig) {
  FiftyYearConfig fifty;
  fifty.devices_802154 = 0;
  fifty.devices_lora = 0;
  EXPECT_DEATH(RunFiftyYearExperiment(fifty), "invalid config");

  DistrictConfig district;
  district.device_count = 0;
  EXPECT_DEATH(RunDistrictScenario(district), "invalid config");

  CenturyConfig century;
  century.fleet_size = 0;
  EXPECT_DEATH(RunCenturyScenario(century), "invalid config");
}

TEST(ValidateTest, ExperimentNamesStable) {
  // Names are recorded in ensemble manifests; a rename is a format change.
  EXPECT_STREQ(FiftyYearExperiment::Name(), "fifty_year");
  EXPECT_STREQ(DistrictExperiment::Name(), "district");
  EXPECT_STREQ(CenturyExperiment::Name(), "century");
}

}  // namespace
}  // namespace centsim
