#include "src/core/district.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

DistrictConfig QuickConfig() {
  DistrictConfig cfg;
  cfg.seed = 4;
  cfg.device_count = 800;
  cfg.area_km2 = 9.0;
  cfg.horizon = SimTime::Years(40);
  cfg.batch_cycle = SimTime::Years(6);
  return cfg;
}

TEST(DistrictTest, PlansGatewaysAndCovers) {
  const auto report = RunDistrictScenario(QuickConfig());
  EXPECT_GT(report.gateway_count, 1u);
  EXPECT_GT(report.initial_coverage, 0.9);
}

TEST(DistrictTest, ServiceBoundedByDeviceAvailability) {
  const auto report = RunDistrictScenario(QuickConfig());
  EXPECT_GT(report.mean_service_availability, 0.0);
  EXPECT_LE(report.mean_service_availability, report.mean_device_availability + 1e-12);
  EXPECT_GE(report.CoverageLoss(), 0.0);
  EXPECT_EQ(report.yearly_service.size(), 40u);
}

TEST(DistrictTest, FleetStaysServiceableForDecades) {
  const auto report = RunDistrictScenario(QuickConfig());
  EXPECT_GT(report.mean_service_availability, 0.6);
  EXPECT_GT(report.device_failures, 200u);
  EXPECT_GT(report.device_replacements, 100u);
  EXPECT_GT(report.gateway_failures, 10u);
  EXPECT_EQ(report.gateway_repairs + /*pending repairs*/ 0u,
            report.gateway_repairs);  // Accounting self-consistent.
}

TEST(DistrictTest, SlowGatewayRepairDegradesServiceOnly) {
  DistrictConfig fast = QuickConfig();
  fast.gateway_repair_delay = SimTime::Days(3);
  DistrictConfig slow = QuickConfig();
  slow.gateway_repair_delay = SimTime::Days(120);
  const auto a = RunDistrictScenario(fast);
  const auto b = RunDistrictScenario(slow);
  // Device availability is identical dynamics; service must suffer more
  // under slow gateway repair.
  EXPECT_GT(a.mean_service_availability, b.mean_service_availability);
  EXPECT_GT(b.CoverageLoss(), a.CoverageLoss());
}

TEST(DistrictTest, LongerRangeFewerGateways) {
  DistrictConfig short_range = QuickConfig();
  short_range.gateway_range_m = 500.0;
  DistrictConfig long_range = QuickConfig();
  long_range.gateway_range_m = 1500.0;
  const auto a = RunDistrictScenario(short_range);
  const auto b = RunDistrictScenario(long_range);
  EXPECT_GT(a.gateway_count, b.gateway_count);
}

TEST(DistrictTest, BatteryFleetWorseThanHarvesting) {
  DistrictConfig harvesting = QuickConfig();
  DistrictConfig battery = QuickConfig();
  battery.device_class = DeviceClassKind::kBatteryPowered;
  const auto a = RunDistrictScenario(harvesting);
  const auto b = RunDistrictScenario(battery);
  EXPECT_GT(a.mean_service_availability, b.mean_service_availability);
  EXPECT_GT(b.device_failures, a.device_failures);
}

TEST(DistrictTest, DeterministicPerSeed) {
  const auto a = RunDistrictScenario(QuickConfig());
  const auto b = RunDistrictScenario(QuickConfig());
  EXPECT_DOUBLE_EQ(a.mean_service_availability, b.mean_service_availability);
  EXPECT_EQ(a.device_failures, b.device_failures);
  EXPECT_EQ(a.gateway_failures, b.gateway_failures);
}

}  // namespace
}  // namespace centsim
