#include "src/net/gateway.h"

#include <gtest/gtest.h>

#include "src/sim/simulation.h"

namespace centsim {
namespace {

class GatewayFixture : public ::testing::Test {
 protected:
  GatewayFixture()
      : sim_(1),
        backhaul_("bh", {SimTime::Years(1000), SimTime::Hours(1)}, RandomStream(9)) {}

  Gateway MakeGateway(GatewayConfig cfg = {}) {
    cfg.name = "gw-test";
    return Gateway(sim_, cfg, SeriesSystem::RaspberryPiGateway());
  }

  Simulation sim_;
  Backhaul backhaul_;
};

TEST_F(GatewayFixture, NotOperationalBeforeDeploy) {
  Gateway gw = MakeGateway();
  EXPECT_FALSE(gw.operational());
  gw.Deploy();
  EXPECT_TRUE(gw.operational());
}

TEST_F(GatewayFixture, AcceptForwardsToBackhaul) {
  Gateway gw = MakeGateway();
  gw.AttachBackhaul(&backhaul_);
  gw.Deploy();
  UplinkPacket pkt;
  EXPECT_EQ(gw.Accept(pkt), DeliveryOutcome::kDelivered);
  EXPECT_EQ(gw.forwarded(), 1u);
  EXPECT_EQ(backhaul_.delivered(), 1u);
}

TEST_F(GatewayFixture, NoBackhaulMeansBackhaulDown) {
  Gateway gw = MakeGateway();
  gw.Deploy();
  EXPECT_EQ(gw.Accept(UplinkPacket{}), DeliveryOutcome::kBackhaulDown);
}

TEST_F(GatewayFixture, DownGatewayRejects) {
  Gateway gw = MakeGateway();
  EXPECT_EQ(gw.Accept(UplinkPacket{}), DeliveryOutcome::kGatewayDown);
}

TEST_F(GatewayFixture, BlocklistEnforced) {
  Gateway gw = MakeGateway();
  gw.AttachBackhaul(&backhaul_);
  Blocklist blocklist;
  blocklist.Block(7, "spoofed readings");
  gw.SetBlocklist(&blocklist);
  gw.Deploy();
  UplinkPacket bad;
  bad.device_id = 7;
  UplinkPacket good;
  good.device_id = 8;
  EXPECT_EQ(gw.Accept(bad), DeliveryOutcome::kBlocklisted);
  EXPECT_EQ(gw.Accept(good), DeliveryOutcome::kDelivered);
  EXPECT_EQ(gw.rejected(), 1u);
}

TEST_F(GatewayFixture, VendorLockRejectsForeignDevices) {
  GatewayConfig cfg;
  cfg.vendor_locked = true;
  cfg.vendor = "acme";
  Gateway gw = MakeGateway(cfg);
  gw.AttachBackhaul(&backhaul_);
  gw.Deploy();
  EXPECT_EQ(gw.Accept(UplinkPacket{}, "acme"), DeliveryOutcome::kDelivered);
  EXPECT_EQ(gw.Accept(UplinkPacket{}, "other"), DeliveryOutcome::kGatewayDown);
  EXPECT_EQ(gw.Accept(UplinkPacket{}, ""), DeliveryOutcome::kGatewayDown);
}

TEST_F(GatewayFixture, PaymentHookCanRefuse) {
  Gateway gw = MakeGateway();
  gw.AttachBackhaul(&backhaul_);
  int budget = 2;
  gw.SetPaymentHook([&budget](const UplinkPacket&) { return budget-- > 0; });
  gw.Deploy();
  EXPECT_EQ(gw.Accept(UplinkPacket{}), DeliveryOutcome::kDelivered);
  EXPECT_EQ(gw.Accept(UplinkPacket{}), DeliveryOutcome::kDelivered);
  EXPECT_EQ(gw.Accept(UplinkPacket{}), DeliveryOutcome::kNoCredits);
}

TEST_F(GatewayFixture, FailsEventuallyWithoutRepair) {
  Gateway gw = MakeGateway();
  gw.AttachBackhaul(&backhaul_);
  gw.Deploy();
  sim_.RunUntil(SimTime::Years(50));
  EXPECT_FALSE(gw.operational());
  EXPECT_GE(gw.failure_count(), 1u);
  // Abandoned at first failure: exactly one.
  EXPECT_EQ(gw.failure_count(), 1u);
}

TEST_F(GatewayFixture, RepairPolicyRestoresService) {
  Gateway gw = MakeGateway();
  gw.AttachBackhaul(&backhaul_);
  gw.SetRepairPolicy([](SimTime fail_time) { return fail_time + SimTime::Days(2); });
  gw.Deploy();
  sim_.RunUntil(SimTime::Years(50));
  // With prompt repairs the gateway fails repeatedly but is up at the end
  // with overwhelming probability (2-day MTTR vs ~4-year MTBF).
  EXPECT_GT(gw.failure_count(), 3u);
  EXPECT_TRUE(gw.operational());
  const double downtime_fraction =
      gw.DowntimeThrough(sim_.Now()).ToSeconds() / SimTime::Years(50).ToSeconds();
  EXPECT_LT(downtime_fraction, 0.02);
}

TEST_F(GatewayFixture, DecommissionStopsService) {
  Gateway gw = MakeGateway();
  gw.AttachBackhaul(&backhaul_);
  gw.Deploy();
  gw.Decommission("fleet refresh");
  EXPECT_FALSE(gw.operational());
  EXPECT_TRUE(gw.decommissioned());
  EXPECT_EQ(gw.Accept(UplinkPacket{}), DeliveryOutcome::kGatewayDown);
  // No pending failure event fires afterwards.
  sim_.RunUntil(SimTime::Years(30));
  EXPECT_EQ(gw.failure_count(), 0u);
}

TEST_F(GatewayFixture, DowntimeAccountsOpenInterval) {
  Gateway gw = MakeGateway();
  gw.Deploy();
  sim_.RunUntil(SimTime::Years(50));  // Fails unrepaired somewhere inside.
  const SimTime downtime = gw.DowntimeThrough(SimTime::Years(50));
  EXPECT_GT(downtime, SimTime());
  EXPECT_LT(downtime, SimTime::Years(50));
}

}  // namespace
}  // namespace centsim
