#include "src/sim/random.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/stats.h"

namespace centsim {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  RandomStream a(123);
  RandomStream b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  RandomStream a(1);
  RandomStream b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextUint64() == b.NextUint64() ? 1 : 0;
  }
  EXPECT_LE(same, 1);
}

TEST(RandomTest, DerivedStreamsAreIndependentOfSiblingCount) {
  // The trajectory of stream 7 must not depend on whether stream 3 exists
  // or was used — the property fleet determinism relies on.
  RandomStream root_a(99);
  RandomStream root_b(99);
  RandomStream seven_a = root_a.Derive(7);
  RandomStream three = root_b.Derive(3);
  (void)three.NextUint64();
  RandomStream seven_b = root_b.Derive(7);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(seven_a.NextUint64(), seven_b.NextUint64());
  }
}

TEST(RandomTest, DerivedStreamsDifferByStreamId) {
  RandomStream root(5);
  RandomStream a = root.Derive(1);
  RandomStream b = root.Derive(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextUint64() == b.NextUint64() ? 1 : 0;
  }
  EXPECT_LE(same, 1);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  RandomStream rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomTest, NextBelowIsBoundedAndCoversSupport) {
  RandomStream rng(17);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextBelow(10);
    ASSERT_LT(v, 10u);
    ++hits[v];
  }
  for (int h : hits) {
    EXPECT_GT(h, 700);  // ~1000 expected per bucket.
    EXPECT_LT(h, 1300);
  }
}

TEST(RandomTest, UniformRespectsBounds) {
  RandomStream rng(23);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(RandomTest, NormalMomentsMatch) {
  RandomStream rng(31);
  SummaryStats s;
  for (int i = 0; i < 50000; ++i) {
    s.Add(rng.Normal(10.0, 2.0));
  }
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(RandomTest, ExponentialMeanMatches) {
  RandomStream rng(37);
  SummaryStats s;
  for (int i = 0; i < 50000; ++i) {
    s.Add(rng.Exponential(4.0));
  }
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
  EXPECT_GE(s.min(), 0.0);
}

TEST(RandomTest, WeibullMeanMatchesGammaFormula) {
  RandomStream rng(41);
  const double shape = 2.0;
  const double scale = 10.0;
  SummaryStats s;
  for (int i = 0; i < 50000; ++i) {
    s.Add(rng.Weibull(shape, scale));
  }
  const double expected = scale * std::tgamma(1.0 + 1.0 / shape);
  EXPECT_NEAR(s.mean(), expected, 0.15);
}

TEST(RandomTest, PoissonMeanMatchesSmallAndLarge) {
  RandomStream rng(43);
  for (double mean : {0.5, 3.0, 20.0, 100.0}) {
    SummaryStats s;
    for (int i = 0; i < 20000; ++i) {
      s.Add(static_cast<double>(rng.Poisson(mean)));
    }
    EXPECT_NEAR(s.mean(), mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(RandomTest, PoissonZeroMeanIsZero) {
  RandomStream rng(47);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RandomTest, LogNormalIsPositive) {
  RandomStream rng(53);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
  }
}

TEST(ZipfTest, SamplerStaysInSupport) {
  RandomStream rng(59);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.Zipf(100, 1.0);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
  }
}

TEST(ZipfTest, TableCdfIsMonotoneAndEndsAtOne) {
  ZipfTable table(50, 1.2);
  double prev = 0.0;
  for (uint64_t k = 1; k <= 50; ++k) {
    const double c = table.CdfAt(k);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(table.CdfAt(50), 1.0);
}

TEST(ZipfTest, RankOneIsMostProbable) {
  ZipfTable table(200, 1.0);
  RandomStream rng(61);
  std::vector<int> hits(201, 0);
  for (int i = 0; i < 20000; ++i) {
    ++hits[table.Sample(rng)];
  }
  for (int k = 2; k <= 200; ++k) {
    EXPECT_GE(hits[1], hits[k]);
  }
}

TEST(ZipfTest, TopTenShareNearHarmonicRatio) {
  // H(10)/H(200) ~ 0.498 for s = 1 — the Helium footnote's shape.
  ZipfTable table(200, 1.0);
  EXPECT_NEAR(table.CdfAt(10), 0.498, 0.01);
}

class ZipfExponentSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentSweep, HeavierExponentConcentratesMass) {
  const double s = GetParam();
  ZipfTable table(100, s);
  // CDF at rank 10 grows with s.
  ZipfTable lighter(100, s - 0.3);
  EXPECT_GT(table.CdfAt(10), lighter.CdfAt(10));
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentSweep, ::testing::Values(0.8, 1.0, 1.5, 2.0));

}  // namespace
}  // namespace centsim
