#include "src/radio/lorawan.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

TEST(ChannelPlanTest, Eu868Shape) {
  const auto plan = ChannelPlan::Eu868();
  EXPECT_EQ(plan.uplink_channels_hz.size(), 3u);
  EXPECT_DOUBLE_EQ(plan.duty_cycle_limit, 0.01);
  EXPECT_EQ(plan.dwell_time_limit, SimTime());
}

TEST(ChannelPlanTest, Us915Shape) {
  const auto plan = ChannelPlan::Us915();
  EXPECT_EQ(plan.uplink_channels_hz.size(), 8u);
  EXPECT_DOUBLE_EQ(plan.duty_cycle_limit, 0.0);
  EXPECT_EQ(plan.dwell_time_limit, SimTime::Millis(400));
}

TEST(ChannelPlanTest, EuDutyCycleCapsUplinks) {
  const auto plan = ChannelPlan::Eu868();
  const SimTime airtime = SimTime::Millis(100);
  // 864 s/day of allowed airtime / 0.1 s = 8640 frames.
  EXPECT_NEAR(plan.MaxUplinksPerDay(airtime), 8640.0, 1.0);
}

TEST(ChannelPlanTest, UsDwellForbidsSlowFrames) {
  const auto plan = ChannelPlan::Us915();
  LoraConfig sf11;
  sf11.sf = LoraSf::kSf11;
  const SimTime slow = LoraPhy::Airtime(sf11, 24);  // ~800 ms > 400 ms.
  EXPECT_GT(slow, plan.dwell_time_limit);
  EXPECT_DOUBLE_EQ(plan.MaxUplinksPerDay(slow), 0.0);

  LoraConfig sf8;
  sf8.sf = LoraSf::kSf8;
  const SimTime fast = LoraPhy::Airtime(sf8, 24);
  EXPECT_GT(plan.MaxUplinksPerDay(fast), 10000.0);
}

TEST(AdrTest, StrongLinkStepsDownToSf7) {
  AdrInput in;
  in.current_sf = LoraSf::kSf12;
  in.best_snr_db = 10.0;  // Huge headroom over SF12's -20 dB floor.
  const auto out = ComputeAdr(in);
  EXPECT_EQ(out.sf, LoraSf::kSf7);
  EXPECT_LT(out.tx_power_dbm, in.current_tx_power_dbm);
}

TEST(AdrTest, MarginalLinkKeepsSf) {
  AdrInput in;
  in.current_sf = LoraSf::kSf12;
  in.best_snr_db = -12.0;  // Only 8 dB above floor; margin eats it.
  const auto out = ComputeAdr(in);
  EXPECT_EQ(out.sf, LoraSf::kSf12);
  EXPECT_DOUBLE_EQ(out.tx_power_dbm, in.current_tx_power_dbm);
  EXPECT_EQ(out.steps_applied, 0);
}

TEST(AdrTest, IntermediateLinkLandsBetween) {
  AdrInput in;
  in.current_sf = LoraSf::kSf12;
  in.best_snr_db = -5.0;
  const auto out = ComputeAdr(in);
  EXPECT_LT(static_cast<int>(out.sf), static_cast<int>(LoraSf::kSf12));
  EXPECT_GT(static_cast<int>(out.sf), static_cast<int>(LoraSf::kSf7));
}

TEST(AdrTest, PowerFloorRespected) {
  AdrInput in;
  in.current_sf = LoraSf::kSf7;
  in.current_tx_power_dbm = 4.0;
  in.best_snr_db = 40.0;
  const auto out = ComputeAdr(in);
  EXPECT_GE(out.tx_power_dbm, 2.0);
}

TEST(StaticSfTest, GenerousMarginForcesHighSf) {
  // Transmit-only planning: more fade margin demanded => higher SF.
  const LoraSf tight = StaticSfForMargin(0.0, 5.0);
  const LoraSf generous = StaticSfForMargin(0.0, 18.0);
  EXPECT_GT(static_cast<int>(generous), static_cast<int>(tight));
}

TEST(StaticSfTest, StrongLinkAllowsSf7) {
  EXPECT_EQ(StaticSfForMargin(10.0, 5.0), LoraSf::kSf7);
}

TEST(StaticSfTest, HopelessLinkGetsSf12) {
  EXPECT_EQ(StaticSfForMargin(-30.0, 10.0), LoraSf::kSf12);
}

TEST(StaticSfTest, StaticChoiceCostsAirtimeVsAdr) {
  // The §4.1 trade: a transmit-only device planned with 12 dB margin flies
  // at a slower SF than ADR would settle on for the same link.
  const double snr = -2.0;
  const LoraSf planned = StaticSfForMargin(snr, 12.0);
  AdrInput in;
  in.current_sf = LoraSf::kSf12;
  in.best_snr_db = snr;
  in.margin_db = 10.0;
  const LoraSf adapted = ComputeAdr(in).sf;
  LoraConfig a;
  a.sf = planned;
  LoraConfig b;
  b.sf = adapted;
  EXPECT_GE(LoraPhy::Airtime(a, 12), LoraPhy::Airtime(b, 12));
}

TEST(LorawanOverheadTest, WireBytes) {
  EXPECT_EQ(LorawanWireBytes(12), 25u);
  EXPECT_EQ(kLorawanOverheadBytes, 13u);
}

// Golden airtime values hand-computed from the Semtech AN1200.13 formula
// (125 kHz, CR 4/5, 8-symbol preamble, explicit header, CRC on, LDRO on
// SF11/12).
struct AirtimeGolden {
  LoraSf sf;
  size_t payload;
  double expected_ms;
};

class AirtimeGoldenSweep : public ::testing::TestWithParam<AirtimeGolden> {};

TEST_P(AirtimeGoldenSweep, MatchesHandComputedValue) {
  const auto& g = GetParam();
  LoraConfig cfg;
  cfg.sf = g.sf;
  EXPECT_NEAR(LoraPhy::Airtime(cfg, g.payload).ToSeconds() * 1000.0, g.expected_ms, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Golden, AirtimeGoldenSweep,
                         ::testing::Values(AirtimeGolden{LoraSf::kSf7, 12, 41.216},
                                           AirtimeGolden{LoraSf::kSf9, 12, 144.384},
                                           AirtimeGolden{LoraSf::kSf10, 24, 370.688},
                                           AirtimeGolden{LoraSf::kSf12, 10, 991.232}));

}  // namespace
}  // namespace centsim
