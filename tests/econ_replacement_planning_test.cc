#include "src/econ/replacement_planning.h"

#include <gtest/gtest.h>

#include "src/core/theseus.h"
#include "src/reliability/hazard.h"
#include "src/sim/random.h"

namespace centsim {
namespace {

WeibullFit FitOf(double shape, double scale_years) {
  WeibullFit fit;
  fit.shape = shape;
  fit.scale_years = scale_years;
  fit.converged = true;
  return fit;
}

TEST(ReplacementPlanningTest, SteadyRateIsFleetOverRenewalPeriod) {
  // Shape 1 makes MTTF == scale exactly.
  const WeibullFit fit = FitOf(1.0, 10.0);
  const auto f = ForecastReplacements(fit, /*fleet=*/1000, /*zones=*/16, SimTime::Years(8));
  // Renewal period = 10 + 4 = 14 years.
  EXPECT_NEAR(f.steady_failures_per_year, 1000.0 / 14.0, 0.01);
  EXPECT_NEAR(f.mean_downtime_fraction, 4.0 / 14.0, 1e-9);
}

TEST(ReplacementPlanningTest, PerVisitDemand) {
  const WeibullFit fit = FitOf(1.0, 10.0);
  const auto f = ForecastReplacements(fit, 1600, 16, SimTime::Years(8));
  // Visits/year = 16 / 8 = 2; flow = 1600/14 ~ 114.3/yr -> ~57 per visit.
  EXPECT_NEAR(f.replacements_per_zone_visit, 1600.0 / 14.0 / 2.0, 0.1);
}

TEST(ReplacementPlanningTest, CostsScaleWithFlow) {
  const WeibullFit fit = FitOf(1.0, 10.0);
  const auto small = ForecastReplacements(fit, 1000, 16, SimTime::Years(8));
  const auto large = ForecastReplacements(fit, 10000, 16, SimTime::Years(8));
  EXPECT_NEAR(large.annual_hardware_cost_usd, 10.0 * small.annual_hardware_cost_usd, 1.0);
  EXPECT_GT(large.person_hours_per_year, 9.0 * small.person_hours_per_year);
}

TEST(ReplacementPlanningTest, AvailabilityFormula) {
  const WeibullFit fit = FitOf(1.0, 12.0);
  EXPECT_NEAR(SteadyStateAvailability(fit, SimTime::Years(8)), 12.0 / 16.0, 1e-9);
  // Faster cycles help.
  EXPECT_GT(SteadyStateAvailability(fit, SimTime::Years(2)),
            SteadyStateAvailability(fit, SimTime::Years(16)));
}

TEST(ReplacementPlanningTest, DegenerateInputs) {
  const WeibullFit fit = FitOf(1.0, 10.0);
  EXPECT_DOUBLE_EQ(ForecastReplacements(fit, 0, 16, SimTime::Years(8)).steady_failures_per_year,
                   0.0);
  WeibullFit bad;
  bad.shape = 2.0;
  bad.scale_years = 0.0;
  EXPECT_DOUBLE_EQ(SteadyStateAvailability(bad, SimTime::Years(8)), 0.0);
}

TEST(ReplacementPlanningTest, ForecastMatchesCenturySimulation) {
  // Cross-validation: fit the harvesting BOM's simulated lifetimes, then
  // check the analytic availability forecast against RunCenturyScenario.
  CenturyConfig cfg;
  cfg.seed = 12;
  cfg.fleet_size = 600;
  cfg.horizon = SimTime::Years(100);
  cfg.batch.zone_count = 16;
  cfg.batch.cycle_period = SimTime::Years(8);
  const auto sim_report = RunCenturyScenario(cfg);

  const auto fit = FitWeibull(sim_report.unit_survival);
  ASSERT_TRUE(fit.has_value());
  const double forecast = SteadyStateAvailability(*fit, cfg.batch.cycle_period);
  // The sim includes the perfectly-available deployment year and discrete
  // zone scheduling; agree within ~6 points.
  EXPECT_NEAR(forecast, sim_report.mean_availability, 0.06);

  // Failure-flow forecast vs simulated count.
  const auto flow =
      ForecastReplacements(*fit, cfg.fleet_size, cfg.batch.zone_count, cfg.batch.cycle_period);
  const double simulated_per_year = static_cast<double>(sim_report.total_failures) / 100.0;
  EXPECT_NEAR(flow.steady_failures_per_year, simulated_per_year,
              simulated_per_year * 0.15);
}

}  // namespace
}  // namespace centsim
