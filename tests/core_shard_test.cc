// Sharded-engine determinism tests (ROADMAP item 1): the same city run
// under ANY shard count, worker count, or window width must produce
// bit-identical reports — the property that makes "how many cores" a pure
// wall-clock knob. Also pins the sharded snapshot contract: a checkpoint
// written under K shards restores under K' shards and finishes on the
// same digest as an uninterrupted run.
//
// The serial (shards == 0) path's golden digests are pinned separately in
// core_fleet_test.cc (FleetGoldenTest); RunDistrictScenario/
// RunCenturyScenario dispatch through the same entry points these tests
// use, so those pins double as the serial-dispatch regression check.

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/district.h"
#include "src/core/theseus.h"
#include "src/sim/time.h"
#include "src/telemetry/run_manifest.h"

namespace centsim {
namespace {

namespace fs = std::filesystem;

// Unique scratch directory per test, removed on teardown.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name) : path_(testing::TempDir() + name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Hexfloat digest over every result field (perf/checkpoint accounting
// excluded) — the same idiom as the golden parity pins.
std::string DistrictDigest(const DistrictReport& r) {
  std::ostringstream out;
  out << std::hexfloat;
  out << r.gateway_count << '|' << r.initial_coverage << '|' << r.mean_device_availability
      << '|' << r.mean_service_availability << '|' << r.min_yearly_service << '|'
      << r.device_failures << '|' << r.device_replacements << '|' << r.gateway_failures
      << '|' << r.gateway_repairs;
  for (double v : r.yearly_service) {
    out << '|' << v;
  }
  return ConfigDigest(out.str());
}

std::string CenturyDigest(const CenturyReport& r) {
  std::ostringstream out;
  out << std::hexfloat;
  out << r.mean_availability << '|' << r.min_yearly_availability << '|' << r.total_failures
      << '|' << r.total_replacements << '|' << r.proactive_replacements << '|'
      << r.units_deployed << '|' << r.max_unit_generations;
  for (double v : r.yearly_availability) {
    out << '|' << v;
  }
  return ConfigDigest(out.str());
}

DistrictConfig SmallDistrict() {
  DistrictConfig cfg;
  cfg.seed = 20260808;
  cfg.device_count = 240;
  cfg.area_km2 = 4.0;
  cfg.zone_grid = 2;
  cfg.horizon = SimTime::Years(6);
  cfg.gateway_range_m = 700.0;
  cfg.batch_cycle = SimTime::Years(2);
  return cfg;
}

CenturyConfig SmallCentury() {
  CenturyConfig cfg;
  cfg.seed = 20260808;
  cfg.fleet_size = 150;
  cfg.horizon = SimTime::Years(40);
  cfg.batch.zone_count = 8;
  cfg.batch.cycle_period = SimTime::Years(5);
  cfg.proactive_refresh_age = SimTime::Years(15);
  cfg.life_improvement_per_decade = 1.05;
  return cfg;
}

// --- District: shard/worker/window invariance ----------------------------

TEST(DistrictShardTest, DigestInvariantAcrossShardCounts) {
  DistrictConfig cfg = SmallDistrict();
  cfg.shard.shards = 1;
  const DistrictReport base = RunDistrictScenario(cfg);
  const std::string digest = DistrictDigest(base);
  EXPECT_GT(base.device_failures, 0u);
  EXPECT_GT(base.gateway_failures, 0u);  // Cross-shard traffic is exercised.

  for (const uint32_t shards : {2u, 3u, 4u}) {
    cfg.shard.shards = shards;
    const DistrictReport r = RunDistrictScenario(cfg);
    EXPECT_EQ(DistrictDigest(r), digest) << "shards=" << shards;
    // events_executed is a perf gauge, not a result: every lane executes
    // its own copy of each broadcast gateway transition and zone visit, so
    // the total scales with the lane count while the REPORT stays fixed.
    EXPECT_GE(r.events_executed, base.events_executed) << "shards=" << shards;
  }
}

TEST(DistrictShardTest, DigestInvariantAcrossWorkerCounts) {
  DistrictConfig cfg = SmallDistrict();
  cfg.shard.shards = 3;
  std::string digest;
  for (const uint32_t workers : {0u, 1u, 2u}) {
    cfg.shard.workers = workers;
    const std::string d = DistrictDigest(RunDistrictScenario(cfg));
    if (digest.empty()) {
      digest = d;
    }
    EXPECT_EQ(d, digest) << "workers=" << workers;
  }
}

TEST(DistrictShardTest, DigestInvariantAcrossWindowWidths) {
  DistrictConfig cfg = SmallDistrict();
  cfg.shard.shards = 2;
  std::string digest;
  for (const int64_t days : {7, 90, 1000}) {
    cfg.shard.window = SimTime::Days(days);
    const std::string d = DistrictDigest(RunDistrictScenario(cfg));
    if (digest.empty()) {
      digest = d;
    }
    EXPECT_EQ(d, digest) << "window_days=" << days;
  }
}

TEST(DistrictShardTest, ShardCountBeyondDeviceCountClamps) {
  DistrictConfig cfg = SmallDistrict();
  cfg.device_count = 3;
  cfg.horizon = SimTime::Years(2);
  cfg.shard.shards = 1;
  const std::string digest = DistrictDigest(RunDistrictScenario(cfg));
  cfg.shard.shards = 64;  // More lanes than devices: clamped, same result.
  EXPECT_EQ(DistrictDigest(RunDistrictScenario(cfg)), digest);
}

// --- District: sharded snapshot/restore ----------------------------------

TEST(DistrictShardTest, SnapshotUnderKShardsRestoresUnderKPrime) {
  ScratchDir dir("shard_snapshot_k_kprime");

  // Uninterrupted reference run at 2 shards.
  DistrictConfig cfg = SmallDistrict();
  cfg.shard.shards = 2;
  const std::string digest = DistrictDigest(RunDistrictScenario(cfg));

  // Checkpointing run at 2 shards.
  cfg.snapshot.checkpoint_every = SimTime::Years(2);
  cfg.snapshot.checkpoint_dir = dir.path();
  const DistrictReport saved = RunDistrictScenario(cfg);
  EXPECT_EQ(DistrictDigest(saved), digest) << "checkpointing must not perturb results";
  ASSERT_GT(saved.checkpoints_written, 0u);
  ASSERT_FALSE(saved.last_checkpoint_path.empty());

  // Resume the EARLIEST checkpoint (zero-padded names sort numerically)
  // under a DIFFERENT shard count: the snapshot layout is shard-agnostic,
  // so 3 lanes pick up 2 lanes' work.
  std::string earliest;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("checkpoint_", 0) == 0 &&
        (earliest.empty() || name < fs::path(earliest).filename().string())) {
      earliest = entry.path().string();
    }
  }
  ASSERT_FALSE(earliest.empty());
  DistrictConfig resumed = SmallDistrict();
  resumed.shard.shards = 3;
  resumed.snapshot.checkpoint_dir = dir.path();
  resumed.snapshot.resume_from = earliest;
  const DistrictReport r = RunDistrictScenario(resumed);
  EXPECT_GT(r.restore_seconds, 0.0);
  EXPECT_EQ(DistrictDigest(r), digest);

  // And under shards = 1.
  resumed.shard.shards = 1;
  EXPECT_EQ(DistrictDigest(RunDistrictScenario(resumed)), digest);
}

TEST(DistrictShardTest, ResumeLatestPicksNewestShardCheckpoint) {
  ScratchDir dir("shard_snapshot_latest");
  DistrictConfig cfg = SmallDistrict();
  cfg.shard.shards = 2;
  const std::string digest = DistrictDigest(RunDistrictScenario(cfg));

  cfg.snapshot.checkpoint_every = SimTime::Years(2);
  cfg.snapshot.checkpoint_dir = dir.path();
  RunDistrictScenario(cfg);

  DistrictConfig resumed = SmallDistrict();
  resumed.shard.shards = 4;
  resumed.snapshot.checkpoint_dir = dir.path();
  resumed.snapshot.resume_latest = true;
  const DistrictReport r = RunDistrictScenario(resumed);
  EXPECT_GT(r.restore_seconds, 0.0);
  EXPECT_EQ(DistrictDigest(r), digest);
}

// --- Century: shard invariance and serial-counter parity ------------------

TEST(CenturyShardTest, DigestInvariantAcrossShardCounts) {
  CenturyConfig cfg = SmallCentury();
  cfg.shard.shards = 1;
  const CenturyReport base = RunCenturyScenario(cfg);
  const std::string digest = CenturyDigest(base);
  EXPECT_GT(base.total_failures, 0u);
  EXPECT_GT(base.proactive_replacements, 0u);

  for (const uint32_t shards : {2u, 4u}) {
    cfg.shard.shards = shards;
    const CenturyReport r = RunCenturyScenario(cfg);
    EXPECT_EQ(CenturyDigest(r), digest) << "shards=" << shards;
    // The survival curve sees the same observations (lane-concatenated
    // order, identical per-lane content).
    EXPECT_EQ(r.unit_survival.observations().size(),
              base.unit_survival.observations().size());
  }
}

TEST(CenturyShardTest, ShardedCountersMatchSerialEngine) {
  // The sharded century engine derives the SAME per-site lifetime streams
  // the serial engine draws (entity-keyed, not order-dependent), so the
  // integer population counters agree exactly; only the availability
  // integrals differ in representation (u128-exact vs double-summed).
  CenturyConfig cfg = SmallCentury();
  const CenturyReport serial = RunCenturyScenario(cfg);
  cfg.shard.shards = 3;
  const CenturyReport sharded = RunCenturyScenario(cfg);

  EXPECT_EQ(sharded.total_failures, serial.total_failures);
  EXPECT_EQ(sharded.total_replacements, serial.total_replacements);
  EXPECT_EQ(sharded.proactive_replacements, serial.proactive_replacements);
  EXPECT_EQ(sharded.units_deployed, serial.units_deployed);
  EXPECT_EQ(sharded.max_unit_generations, serial.max_unit_generations);
  EXPECT_NEAR(sharded.mean_availability, serial.mean_availability, 1e-9);
}

TEST(CenturyShardTest, DigestInvariantAcrossWorkersAndWindows) {
  CenturyConfig cfg = SmallCentury();
  cfg.shard.shards = 2;
  const std::string digest = CenturyDigest(RunCenturyScenario(cfg));

  cfg.shard.workers = 1;
  cfg.shard.window = SimTime::Days(30);
  EXPECT_EQ(CenturyDigest(RunCenturyScenario(cfg)), digest);

  cfg.shard.workers = 2;
  cfg.shard.window = SimTime::Years(2);
  EXPECT_EQ(CenturyDigest(RunCenturyScenario(cfg)), digest);
}

}  // namespace
}  // namespace centsim
