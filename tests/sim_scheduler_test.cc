#include "src/sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace centsim {
namespace {

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(SimTime::Seconds(3), [&] { order.push_back(3); });
  sched.ScheduleAt(SimTime::Seconds(1), [&] { order.push_back(1); });
  sched.ScheduleAt(SimTime::Seconds(2), [&] { order.push_back(2); });
  sched.RunUntil(SimTime::Seconds(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, TiesRunInScheduleOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.ScheduleAt(SimTime::Seconds(1), [&order, i] { order.push_back(i); });
  }
  sched.RunUntil(SimTime::Seconds(2));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, ClockAdvancesToEventTime) {
  Scheduler sched;
  SimTime seen;
  sched.ScheduleAt(SimTime::Hours(5), [&] { seen = sched.Now(); });
  sched.RunUntil(SimTime::Days(1));
  EXPECT_EQ(seen, SimTime::Hours(5));
  EXPECT_EQ(sched.Now(), SimTime::Days(1));  // Finishes at the horizon.
}

TEST(SchedulerTest, HorizonExcludesLaterEvents) {
  Scheduler sched;
  bool ran_late = false;
  sched.ScheduleAt(SimTime::Seconds(100), [&] { ran_late = true; });
  const uint64_t ran = sched.RunUntil(SimTime::Seconds(99));
  EXPECT_EQ(ran, 0u);
  EXPECT_FALSE(ran_late);
  EXPECT_EQ(sched.pending_count(), 1u);
  // A later RunUntil picks it up.
  sched.RunUntil(SimTime::Seconds(101));
  EXPECT_TRUE(ran_late);
}

TEST(SchedulerTest, ScheduleAfterUsesCurrentTime) {
  Scheduler sched;
  SimTime inner;
  sched.ScheduleAt(SimTime::Seconds(10), [&] {
    sched.ScheduleAfter(SimTime::Seconds(5), [&] { inner = sched.Now(); });
  });
  sched.RunUntil(SimTime::Seconds(20));
  EXPECT_EQ(inner, SimTime::Seconds(15));
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler sched;
  bool ran = false;
  const EventId id = sched.ScheduleAt(SimTime::Seconds(1), [&] { ran = true; });
  EXPECT_TRUE(sched.Cancel(id));
  sched.RunUntil(SimTime::Seconds(2));
  EXPECT_FALSE(ran);
}

TEST(SchedulerTest, CancelTwiceFails) {
  Scheduler sched;
  const EventId id = sched.ScheduleAt(SimTime::Seconds(1), [] {});
  EXPECT_TRUE(sched.Cancel(id));
  EXPECT_FALSE(sched.Cancel(id));
}

TEST(SchedulerTest, CancelAfterRunFails) {
  Scheduler sched;
  const EventId id = sched.ScheduleAt(SimTime::Seconds(1), [] {});
  sched.RunUntil(SimTime::Seconds(2));
  EXPECT_FALSE(sched.Cancel(id));
}

TEST(SchedulerTest, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) {
      sched.ScheduleAfter(SimTime::Seconds(1), chain);
    }
  };
  sched.ScheduleAfter(SimTime::Seconds(1), chain);
  sched.RunUntil(SimTime::Seconds(100));
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sched.executed_count(), 10u);
}

TEST(SchedulerTest, StepRunsExactlyOne) {
  Scheduler sched;
  int count = 0;
  sched.ScheduleAt(SimTime::Seconds(1), [&] { ++count; });
  sched.ScheduleAt(SimTime::Seconds(2), [&] { ++count; });
  EXPECT_TRUE(sched.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sched.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sched.Step());
}

TEST(SchedulerTest, PendingCountExcludesCancelled) {
  Scheduler sched;
  const EventId a = sched.ScheduleAt(SimTime::Seconds(1), [] {});
  sched.ScheduleAt(SimTime::Seconds(2), [] {});
  EXPECT_EQ(sched.pending_count(), 2u);
  sched.Cancel(a);
  EXPECT_EQ(sched.pending_count(), 1u);
}

TEST(PeriodicEventTest, FiresOnPeriod) {
  Scheduler sched;
  int fires = 0;
  PeriodicEvent tick(sched, SimTime::Hours(1), [&] { ++fires; });
  tick.Start(SimTime::Hours(1));
  sched.RunUntil(SimTime::Hours(10) + SimTime::Minutes(1));
  EXPECT_EQ(fires, 10);
}

TEST(PeriodicEventTest, StopHalts) {
  Scheduler sched;
  int fires = 0;
  PeriodicEvent tick(sched, SimTime::Hours(1), [&] { ++fires; });
  tick.Start(SimTime::Hours(1));
  sched.RunUntil(SimTime::Hours(3) + SimTime::Minutes(1));
  tick.Stop();
  sched.RunUntil(SimTime::Hours(10));
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(tick.running());
}

TEST(PeriodicEventTest, DestructorCancels) {
  Scheduler sched;
  int fires = 0;
  {
    PeriodicEvent tick(sched, SimTime::Hours(1), [&] { ++fires; });
    tick.Start(SimTime::Hours(1));
    sched.RunUntil(SimTime::Hours(1) + SimTime::Minutes(1));
  }
  sched.RunUntil(SimTime::Hours(10));
  EXPECT_EQ(fires, 1);
}

TEST(SchedulerTest, MillionEventsComplete) {
  Scheduler sched;
  uint64_t count = 0;
  for (int i = 0; i < 100000; ++i) {
    sched.ScheduleAt(SimTime::Seconds(i % 1000), [&] { ++count; });
  }
  sched.RunUntil(SimTime::Seconds(1000));
  EXPECT_EQ(count, 100000u);
}

}  // namespace
}  // namespace centsim
