#include "src/telemetry/run_status.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/sim/flight_recorder.h"
#include "src/sim/metrics.h"
#include "src/sim/run_progress.h"
#include "src/sim/scheduler.h"
#include "src/telemetry/chrome_trace.h"
#include "src/telemetry/json.h"
#include "src/telemetry/metrics_jsonl.h"
#include "src/telemetry/run_manifest.h"

namespace centsim {
namespace {

namespace fs = std::filesystem;

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return content;
}

RunStatus SampleStatus() {
  RunStatus s;
  s.run_name = "unit \"quoted\" run";  // Escaping must hold up.
  s.experiment = "district";
  s.wall_seconds = 12.5;
  s.horizon_us = 1000000;
  s.sim_us = 250000;
  s.pct_of_horizon = 25.0;
  s.events_executed = 123456;
  s.events_per_sec = 9876.5;
  s.device_years_per_sec = 3.25;
  s.eta_seconds = 37.5;
  s.queue_entries = 42;
  s.rss_bytes = 1 << 20;
  s.replicas_done = 1;
  s.replicas_stalled = 1;
  ReplicaStatusRow row;
  row.index = 0;
  row.seed = 99;
  row.sim_us = 250000;
  row.executed = 123456;
  row.pct_of_horizon = 25.0;
  row.stalled = true;
  s.replicas.push_back(row);
  return s;
}

TEST(RunStatusJsonTest, ReplicaRowsCarrySamplingMode) {
  // Sampled-engine telemetry (ROADMAP item 2): every replica row names its
  // current time-advance level and the span fast-forward has skipped.
  RunStatus s = SampleStatus();
  std::string json = s.ToJson();
  EXPECT_NE(json.find("\"mode\": \"detailed\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_skipped_us\": 0"), std::string::npos);

  s.replicas[0].mode = 1;
  s.replicas[0].sim_skipped_us = 123456789;
  json = s.ToJson();
  EXPECT_NE(json.find("\"mode\": \"fast_forward\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_skipped_us\": 123456789"), std::string::npos);
  std::string error;
  EXPECT_TRUE(JsonLint(json, &error)) << error;
}

TEST(RunStatusJsonTest, ToJsonIsWellFormedAndComplete) {
  const std::string json = SampleStatus().ToJson();
  std::string error;
  EXPECT_TRUE(JsonLint(json, &error)) << error;
  EXPECT_NE(json.find("\"experiment\": \"district\""), std::string::npos);
  EXPECT_NE(json.find("\"events_executed\": 123456"), std::string::npos);
  EXPECT_NE(json.find("\"replicas_stalled\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"build\": {"), std::string::npos);
  EXPECT_NE(json.find("\"stalled\": true"), std::string::npos);
}

TEST(RunStatusJsonTest, ToJsonLineIsOneWellFormedLine) {
  const std::string line = SampleStatus().ToJsonLine("heartbeat");
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1);  // Exactly one line.
  std::string error;
  EXPECT_TRUE(JsonLint(line, &error)) << error;
  EXPECT_NE(line.find("\"event\":\"heartbeat\""), std::string::npos);
  EXPECT_NE(SampleStatus().ToJsonLine(nullptr).find("\"event\":\"heartbeat\""),
            std::string::npos);
  EXPECT_NE(SampleStatus().ToJsonLine("final").find("\"event\":\"final\""), std::string::npos);
}

TEST(RunStatusJsonTest, EmptyStatusStillLints) {
  std::string error;
  EXPECT_TRUE(JsonLint(RunStatus{}.ToJson(), &error)) << error;
  EXPECT_TRUE(JsonLint(RunStatus{}.ToJsonLine("heartbeat"), &error)) << error;
}

TEST(RunStatusTest, ReadRssBytesOnLinux) {
#ifdef __linux__
  EXPECT_GT(ReadRssBytes(), 0);
#else
  GTEST_SKIP() << "/proc not available";
#endif
}

TEST(BuildInfoTest, FieldsPresentAndJsonWellFormed) {
  const BuildInfo& info = GetBuildInfo();
  EXPECT_NE(info.git_sha, nullptr);
  EXPECT_GT(std::strlen(info.git_sha), 0u);
  EXPECT_NE(info.sanitizers, nullptr);
  EXPECT_GT(std::strlen(info.sanitizers), 0u);
  std::string error;
  EXPECT_TRUE(JsonLint(BuildInfoJson(), &error)) << error;

  // Both manifest flavors carry the build object.
  RunManifest manifest;
  manifest.run_name = "build-info-test";
  EXPECT_NE(manifest.ToJson().find("\"build\": {\"git_sha\""), std::string::npos);
  EnsembleManifest ensemble;
  EXPECT_NE(ensemble.ToJson().find("\"build\": {\"git_sha\""), std::string::npos);
}

TEST(SchedulerSnapshotJsonTest, RendersWellFormed) {
  Scheduler sched;
  for (int i = 0; i < 20; ++i) {
    sched.ScheduleAt(SimTime::Micros(10 * i), [] {});
  }
  sched.ScheduleAt(SimTime::Years(5), [] {});
  const std::string json = SchedulerSnapshotToJson(sched.Snapshot());
  std::string error;
  EXPECT_TRUE(JsonLint(json, &error)) << error;
  EXPECT_NE(json.find("\"pending\": 21"), std::string::npos);
  EXPECT_NE(json.find("\"rungs\": ["), std::string::npos);
}

// --- Atomic file replacement -------------------------------------------------

TEST(AtomicWriteFileTest, ReplacesContentWithoutTmpResidue) {
  const std::string path = testing::TempDir() + "atomic_write_test.json";
  std::remove((path + ".tmp").c_str());
  ASSERT_TRUE(AtomicWriteFile("{\"v\": 1}\n", path));
  EXPECT_EQ(ReadAll(path), "{\"v\": 1}\n");
  ASSERT_TRUE(AtomicWriteFile("{\"v\": 2}\n", path));
  EXPECT_EQ(ReadAll(path), "{\"v\": 2}\n");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(AtomicWriteFileTest, FailureReportsError) {
  std::string error;
  EXPECT_FALSE(AtomicWriteFile("x", "/nonexistent-dir-zz/f.json", &error));
  EXPECT_FALSE(error.empty());
}

TEST(FlushTest, MetricsFlushIsAtomicAndRepeatable) {
  const std::string path = testing::TempDir() + "flush_metrics_test.jsonl";
  MetricsRegistry registry;
  MetricInc(registry.GetCounter("flush.test"), 3.0);
  ASSERT_TRUE(FlushMetricsJsonl(registry, path));
  const std::string first = ReadAll(path);
  EXPECT_NE(first.find("flush.test"), std::string::npos);

  MetricInc(registry.GetCounter("flush.test"), 4.0);
  ASSERT_TRUE(FlushMetricsJsonl(registry, path));
  EXPECT_NE(ReadAll(path).find("7"), std::string::npos);  // Whole fresh snapshot.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(FlushTest, ChromeTraceFlushFileWritesCompleteTrace) {
  const std::string path = testing::TempDir() + "flush_trace_test.json";
  FlightRecorder recorder(16);
  recorder.Record("flush.cat", SimTime::Micros(10), 5);
  recorder.Record("flush.cat", SimTime::Micros(20), 6);
  ChromeTraceWriter trace("flush-test");
  trace.AddFlightRecording(recorder);
  EXPECT_GT(trace.event_count(), 0u);
  ASSERT_TRUE(trace.FlushFile(path));
  std::string error;
  EXPECT_TRUE(JsonLint(ReadAll(path), &error)) << error;
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::remove(path.c_str());
}

// --- Monitor heartbeat / status files ----------------------------------------

TEST(RunStatusMonitorTest, HeartbeatWritesStatusFiles) {
  const std::string dir = testing::TempDir() + "monitor_heartbeat_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  ProgressCell cell;
  RunStatusMonitor::Options options;
  options.status_dir = dir;
  options.heartbeat_seconds = 0.02;
  options.run_name = "hb";
  options.experiment = "unit";
  options.horizon_us = 1000;
  RunStatusMonitor::ReplicaHooks hooks;
  hooks.cell = &cell;
  hooks.seed = 42;
  RunStatusMonitor monitor(options, {hooks});
  monitor.Start();
  for (int i = 1; i <= 20; ++i) {
    cell.Publish(i * 50, i * 50 + 1, static_cast<uint64_t>(i) * 10, 5, 7);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  cell.MarkDone(1000, 200);
  monitor.Stop();

  ASSERT_TRUE(fs::exists(dir + "/run_status.json"));
  EXPECT_FALSE(fs::exists(dir + "/run_status.json.tmp"));
  std::string error;
  const std::string status = ReadAll(dir + "/run_status.json");
  EXPECT_TRUE(JsonLint(status, &error)) << status << ": " << error;
  EXPECT_NE(status.find("\"replicas_done\": 1"), std::string::npos);
  EXPECT_NE(status.find("\"pct_of_horizon\": 100"), std::string::npos);

  // status.jsonl: every appended line parses, and the run ends "final".
  const std::string beats = ReadAll(dir + "/status.jsonl");
  std::istringstream in(beats);
  std::string line;
  std::string last;
  size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(JsonLint(line, &error)) << line << ": " << error;
    last = line;
    ++lines;
  }
  EXPECT_GT(lines, 1u);  // At least one heartbeat plus the final record.
  EXPECT_NE(last.find("\"event\":\"final\""), std::string::npos);

  fs::remove_all(dir);
}

TEST(RunStatusMonitorTest, RequestStatusNowAppendsStatusRequestBeat) {
  const std::string dir = testing::TempDir() + "monitor_request_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  ProgressCell cell;
  RunStatusMonitor::Options options;
  options.status_dir = dir;
  options.heartbeat_seconds = 60.0;  // No natural heartbeat during the test.
  options.horizon_us = 1000;
  RunStatusMonitor::ReplicaHooks hooks;
  hooks.cell = &cell;
  RunStatusMonitor monitor(options, {hooks});
  monitor.Start();
  monitor.RequestStatusNow();
  // The monitor wakes at a 0.2 s granularity even with a slow cadence.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!fs::exists(dir + "/run_status.json") &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  monitor.Stop();

  EXPECT_NE(ReadAll(dir + "/status.jsonl").find("\"event\":\"status_request\""),
            std::string::npos);
  fs::remove_all(dir);
}

TEST(RunStatusMonitorTest, BuildStatusWithoutStartIsUsable) {
  ProgressCell cell;
  cell.Publish(500, 600, 50, 4, 6);
  RunStatusMonitor::Options options;
  options.horizon_us = 1000;
  options.run_name = "one-shot";
  options.devices_per_replica = 10.0;
  RunStatusMonitor::ReplicaHooks hooks;
  hooks.cell = &cell;
  hooks.seed = 7;
  RunStatusMonitor monitor(options, {hooks});
  const RunStatus s = monitor.BuildStatus();
  ASSERT_EQ(s.replicas.size(), 1u);
  EXPECT_EQ(s.replicas[0].sim_us, 500);
  EXPECT_EQ(s.replicas[0].executed, 50u);
  EXPECT_EQ(s.sim_us, 500);
  EXPECT_EQ(s.events_executed, 50u);
  EXPECT_FALSE(s.replicas[0].done);
}

// --- Sharded replica rows and stall classification ---------------------------

TEST(RunStatusShardTest, ShardRowsRenderInStatusAndJson) {
  ProgressCell replica_cell;
  replica_cell.Publish(400, 500, 40, 2, 3);
  ProgressCell s0;
  ProgressCell s1;
  s0.Publish(400, 450, 25, 1, 1);
  s1.Publish(400, 470, 15, 1, 1);

  RunStatusMonitor::Options options;
  options.horizon_us = 1000;
  RunStatusMonitor::ReplicaHooks hooks;
  hooks.cell = &replica_cell;
  hooks.shards.push_back({&s0, nullptr});
  hooks.shards.push_back({&s1, nullptr});
  RunStatusMonitor monitor(options, {hooks});

  const RunStatus s = monitor.BuildStatus();
  ASSERT_EQ(s.replicas.size(), 1u);
  ASSERT_EQ(s.replicas[0].shards.size(), 2u);
  EXPECT_EQ(s.replicas[0].shards[0].index, 0u);
  EXPECT_EQ(s.replicas[0].shards[0].sim_us, 400);
  EXPECT_EQ(s.replicas[0].shards[0].executed, 25u);
  EXPECT_EQ(s.replicas[0].shards[1].executed, 15u);
  EXPECT_FALSE(s.replicas[0].shards[1].done);
  EXPECT_TRUE(s.replicas[0].stall_kind.empty());

  const std::string json = s.ToJson();
  std::string error;
  EXPECT_TRUE(JsonLint(json, &error)) << error;
  EXPECT_NE(json.find("\"shards\": ["), std::string::npos);
  EXPECT_EQ(json.find("\"stall_kind\""), std::string::npos);  // Healthy: omitted.
}

// One lane frozen mid-window while its siblings sit at a later frontier:
// the watchdog must diagnose "shard_wedged", dump ONLY the laggard lane's
// recorder, and carry the verdict into run_status.json.
TEST(RunStatusShardTest, WatchdogClassifiesShardWedgeAndDumpsLaggard) {
  const std::string dir = testing::TempDir() + "shard_wedge_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  ProgressCell replica_cell;
  replica_cell.Publish(100, 200, 10, 1, 1);
  ProgressCell s0;
  ProgressCell s1;
  s0.Publish(100, 150, 5, 1, 1);   // Laggard: pinned at the minimum frontier.
  s1.Publish(900, 950, 50, 1, 1);  // Reached the barrier, waiting on s0.
  FlightRecorder rec0(16);
  rec0.Record("shard.window", SimTime::Micros(100), 0);
  FlightRecorder rec1(16);
  rec1.Record("shard.window", SimTime::Micros(900), 1);

  RunStatusMonitor::Options options;
  options.status_dir = dir;
  options.heartbeat_seconds = 0.02;
  options.stall_deadline_seconds = 0.1;
  options.deep_stall_snapshot = false;
  options.horizon_us = 1000;
  RunStatusMonitor::ReplicaHooks hooks;
  hooks.cell = &replica_cell;
  hooks.shards.push_back({&s0, &rec0});
  hooks.shards.push_back({&s1, &rec1});
  RunStatusMonitor monitor(options, {hooks});
  monitor.Start();
  const std::string laggard_dump = dir + "/replica_0_shard_0_flight.jsonl";
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!fs::exists(laggard_dump) && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  monitor.Stop();

  EXPECT_TRUE(monitor.WasStalled(0));
  ASSERT_TRUE(fs::exists(laggard_dump));
  EXPECT_FALSE(fs::exists(dir + "/replica_0_shard_1_flight.jsonl"));
  EXPECT_NE(ReadAll(laggard_dump).find("\"category\":\"shard.window\""), std::string::npos);
  const std::string status = ReadAll(dir + "/run_status.json");
  EXPECT_NE(status.find("\"stall_kind\": \"shard_wedged\""), std::string::npos);

  fs::remove_all(dir);
}

// Every lane frozen at the same frontier: the whole replica stalled — no
// per-lane verdict, no shard dumps.
TEST(RunStatusShardTest, WatchdogClassifiesWholeReplicaStall) {
  const std::string dir = testing::TempDir() + "shard_replica_stall_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  ProgressCell replica_cell;
  replica_cell.Publish(100, 200, 10, 1, 1);
  ProgressCell s0;
  ProgressCell s1;
  s0.Publish(100, 150, 5, 1, 1);
  s1.Publish(100, 150, 5, 1, 1);
  FlightRecorder rec0(16);
  rec0.Record("shard.window", SimTime::Micros(100), 0);
  FlightRecorder replica_rec(16);
  replica_rec.Record("replica.window", SimTime::Micros(100), 0);

  RunStatusMonitor::Options options;
  options.status_dir = dir;
  options.heartbeat_seconds = 0.02;
  options.stall_deadline_seconds = 0.1;
  options.deep_stall_snapshot = false;
  options.horizon_us = 1000;
  RunStatusMonitor::ReplicaHooks hooks;
  hooks.cell = &replica_cell;
  hooks.recorder = &replica_rec;
  hooks.shards.push_back({&s0, &rec0});
  hooks.shards.push_back({&s1, nullptr});
  RunStatusMonitor monitor(options, {hooks});
  monitor.Start();
  const std::string replica_dump = dir + "/replica_0_flight.jsonl";
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!fs::exists(replica_dump) && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  monitor.Stop();

  EXPECT_TRUE(monitor.WasStalled(0));
  ASSERT_TRUE(fs::exists(replica_dump));
  EXPECT_FALSE(fs::exists(dir + "/replica_0_shard_0_flight.jsonl"));
  EXPECT_NE(ReadAll(dir + "/run_status.json").find("\"stall_kind\": \"replica_stalled\""),
            std::string::npos);

  fs::remove_all(dir);
}

// --- Crash-dump registry ------------------------------------------------------

TEST(CrashDumpTest, RegisteredRecordersDumpToTheirPaths) {
  const std::string dir = testing::TempDir() + "crash_dump_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  FlightRecorder a(16);
  FlightRecorder b(16);
  a.Record("crash.a", SimTime::Micros(1), 11);
  b.Record("crash.b", SimTime::Micros(2), 22);
  {
    CrashDumpScope scope;
    scope.Add(&a, dir + "/a_flight.jsonl");
    scope.Add(&b, dir + "/b_flight.jsonl");
    EXPECT_GE(DumpRegisteredCrashRecorders(), 2u);
  }
  const std::string dump_a = ReadAll(dir + "/a_flight.jsonl");
  std::string error;
  EXPECT_TRUE(JsonLint(dump_a.substr(0, dump_a.find('\n')), &error)) << error;
  EXPECT_NE(dump_a.find("\"category\":\"crash.a\""), std::string::npos);
  EXPECT_NE(ReadAll(dir + "/b_flight.jsonl").find("\"category\":\"crash.b\""),
            std::string::npos);

  // Scope destruction unregistered both: a fresh dump writes nothing new.
  fs::remove_all(dir);
  fs::create_directories(dir);
  (void)DumpRegisteredCrashRecorders();
  EXPECT_FALSE(fs::exists(dir + "/a_flight.jsonl"));
  EXPECT_FALSE(fs::exists(dir + "/b_flight.jsonl"));
  fs::remove_all(dir);
}

TEST(CrashDumpTest, FlushHookRunsOnDumpPass) {
  static int flushes = 0;
  flushes = 0;
  SetCrashFlushHook([](void* ctx) { ++*static_cast<int*>(ctx); }, &flushes);
  (void)DumpRegisteredCrashRecorders();
  SetCrashFlushHook(nullptr, nullptr);
  EXPECT_EQ(flushes, 1);
}

TEST(CrashDumpTest, RejectsInvalidRegistrations) {
  FlightRecorder recorder(8);
  EXPECT_EQ(RegisterCrashDump(nullptr, "/tmp/x"), -1);
  EXPECT_EQ(RegisterCrashDump(&recorder, ""), -1);
  EXPECT_EQ(RegisterCrashDump(&recorder, std::string(600, 'p')), -1);
  UnregisterCrashDump(-1);  // Out-of-range tokens are ignored.
  UnregisterCrashDump(1 << 20);
}

}  // namespace
}  // namespace centsim
