#include "src/city/waste.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

TEST(WasteTest, SmartPolicyReducesOverflow) {
  WasteScenarioParams params;
  const auto cmp = SimulateWasteScenario(params, RandomStream(1));
  EXPECT_LT(cmp.sensor_driven.overflow_bin_days, cmp.scheduled.overflow_bin_days);
  EXPECT_GT(cmp.OverflowReduction(), 0.0);
}

TEST(WasteTest, SmartPolicyReducesCost) {
  WasteScenarioParams params;
  const auto cmp = SimulateWasteScenario(params, RandomStream(1));
  EXPECT_LT(cmp.sensor_driven.cost_usd, cmp.scheduled.cost_usd);
  EXPECT_GT(cmp.CostReduction(), 0.0);
}

TEST(WasteTest, SeoulShapeReproduced) {
  // Paper §2: Seoul reduced overflow by 66% and collection cost by 83%.
  // The reproduction targets the shape: both reductions large, cost
  // reduction bigger than overflow reduction.
  WasteScenarioParams params;
  const auto cmp = SimulateWasteScenario(params, RandomStream(2024));
  EXPECT_GT(cmp.OverflowReduction(), 0.4);
  EXPECT_GT(cmp.CostReduction(), 0.6);
  EXPECT_GT(cmp.CostReduction(), cmp.OverflowReduction() * 0.8);
}

TEST(WasteTest, CostsAreVisitCounts) {
  WasteScenarioParams params;
  params.cost_per_visit_usd = 10.0;
  const auto cmp = SimulateWasteScenario(params, RandomStream(5));
  EXPECT_DOUBLE_EQ(cmp.scheduled.cost_usd, cmp.scheduled.truck_visits * 10.0);
  EXPECT_DOUBLE_EQ(cmp.sensor_driven.cost_usd, cmp.sensor_driven.truck_visits * 10.0);
}

TEST(WasteTest, DeterministicGivenSeed) {
  WasteScenarioParams params;
  const auto a = SimulateWasteScenario(params, RandomStream(9));
  const auto b = SimulateWasteScenario(params, RandomStream(9));
  EXPECT_EQ(a.scheduled.truck_visits, b.scheduled.truck_visits);
  EXPECT_EQ(a.sensor_driven.overflow_events, b.sensor_driven.overflow_events);
}

TEST(WasteTest, FasterDispatchLessSmartOverflow) {
  WasteScenarioParams slow;
  slow.dispatch_days = 1.0;
  WasteScenarioParams fast;
  fast.dispatch_days = 0.1;
  const auto s = SimulateWasteScenario(slow, RandomStream(3));
  const auto f = SimulateWasteScenario(fast, RandomStream(3));
  EXPECT_LT(f.sensor_driven.overflow_bin_days, s.sensor_driven.overflow_bin_days);
}

TEST(WasteTest, DenserRouteMoreScheduledVisits) {
  WasteScenarioParams sparse;
  sparse.route_period_days = 3.0;
  WasteScenarioParams dense;
  dense.route_period_days = 1.0;
  const auto s = SimulateWasteScenario(sparse, RandomStream(4));
  const auto d = SimulateWasteScenario(dense, RandomStream(4));
  EXPECT_GT(d.scheduled.truck_visits, s.scheduled.truck_visits * 2);
}

TEST(WasteTest, ZeroBinsYieldEmptyResults) {
  WasteScenarioParams params;
  params.bin_count = 0;
  const auto cmp = SimulateWasteScenario(params, RandomStream(1));
  EXPECT_EQ(cmp.scheduled.truck_visits, 0u);
  EXPECT_EQ(cmp.sensor_driven.truck_visits, 0u);
  EXPECT_DOUBLE_EQ(cmp.OverflowReduction(), 0.0);
  EXPECT_DOUBLE_EQ(cmp.CostReduction(), 0.0);
}

}  // namespace
}  // namespace centsim
