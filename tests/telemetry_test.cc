#include <gtest/gtest.h>

#include <sstream>

#include "src/telemetry/csv.h"
#include "src/telemetry/report.h"
#include "src/telemetry/timeseries.h"

namespace centsim {
namespace {

TEST(TimeSeriesTest, SummarizeAndMeanOver) {
  TimeSeries ts;
  for (int h = 0; h < 10; ++h) {
    ts.Add(SimTime::Hours(h), h);
  }
  EXPECT_EQ(ts.size(), 10u);
  EXPECT_DOUBLE_EQ(ts.Summarize().mean(), 4.5);
  EXPECT_DOUBLE_EQ(ts.MeanOver(SimTime::Hours(0), SimTime::Hours(5)), 2.0);
}

TEST(TimeSeriesTest, RebucketAveragesAndCarriesForward) {
  TimeSeries ts;
  ts.Add(SimTime::Hours(0), 10.0);
  ts.Add(SimTime::Hours(1), 20.0);
  // Hours 2-3 empty; value 5 at hour 4.
  ts.Add(SimTime::Hours(4), 5.0);
  const auto buckets = ts.Rebucket(SimTime::Hours(2), SimTime::Hours(5));
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets[0].value, 15.0);  // Mean of 10, 20.
  EXPECT_DOUBLE_EQ(buckets[1].value, 15.0);  // Carried forward.
  EXPECT_DOUBLE_EQ(buckets[2].value, 5.0);
}

TEST(BucketedSeriesTest, MemoryBoundedAggregation) {
  BucketedSeries bs(SimTime::Days(1));
  for (int h = 0; h < 48; ++h) {
    bs.Add(SimTime::Hours(h), h < 24 ? 1.0 : 3.0);
  }
  EXPECT_EQ(bs.BucketCount(), 2u);
  EXPECT_DOUBLE_EQ(bs.BucketMean(0), 1.0);
  EXPECT_DOUBLE_EQ(bs.BucketMean(1), 3.0);
  EXPECT_DOUBLE_EQ(bs.BucketMean(9, -1.0), -1.0);  // Fallback.
}

TEST(TableTest, RendersAlignedRows) {
  Table t({"metric", "value"});
  t.AddRow({"uptime", "99.2%"});
  t.AddRow({"longest gap", "3 weeks"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("metric"), std::string::npos);
  EXPECT_NE(s.find("99.2%"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"only-one"});
  EXPECT_NO_THROW(t.ToString());
}

TEST(FormatTest, Doubles) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(FormatTest, CountsHaveSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(438000), "438,000");
  EXPECT_EQ(FormatCount(591315), "591,315");
}

TEST(FormatTest, UsdScales) {
  EXPECT_EQ(FormatUsd(3.5), "$3.50");
  EXPECT_EQ(FormatUsd(12500.0), "$12.5k");
  EXPECT_EQ(FormatUsd(3200000.0), "$3.20M");
}

TEST(FormatTest, Percent) {
  EXPECT_EQ(FormatPercent(0.662), "66.2%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

TEST(CsvTest, WritesRows) {
  std::ostringstream oss;
  CsvWriter csv(oss);
  csv.WriteRow({"a", "b", "c"});
  csv.WriteRow({"1", "2", "3"});
  EXPECT_EQ(oss.str(), "a,b,c\n1,2,3\n");
}

TEST(CsvTest, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::Escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::Escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::Escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::Escape("line\nbreak"), "\"line\nbreak\"");
}

}  // namespace
}  // namespace centsim
