#include "src/sim/metrics.h"

#include <gtest/gtest.h>

#include "src/sim/simulation.h"

namespace centsim {
namespace {

TEST(MetricLabels, SortsKeysAndFormats) {
  MetricLabels labels{{"tech", "LoRa"}, {"outcome", "delivered"}};
  EXPECT_EQ(labels.ToString(), "outcome=delivered,tech=LoRa");

  MetricLabels other;
  other.Set("outcome", "delivered");
  other.Set("tech", "LoRa");
  EXPECT_EQ(labels, other);
}

TEST(MetricLabels, SetOverwritesExistingKey) {
  MetricLabels labels;
  labels.Set("tech", "LoRa");
  labels.Set("tech", "802.15.4");
  EXPECT_EQ(labels.ToString(), "tech=802.15.4");
}

TEST(MetricsRegistry, CounterFindOrCreateIdentity) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("uplink.sent", MetricLabels{{"tech", "LoRa"}});
  Counter* same = registry.GetCounter("uplink.sent", MetricLabels{{"tech", "LoRa"}});
  Counter* other_labels = registry.GetCounter("uplink.sent", MetricLabels{{"tech", "802.15.4"}});
  Counter* other_name = registry.GetCounter("uplink.lost", MetricLabels{{"tech", "LoRa"}});

  EXPECT_EQ(a, same);
  EXPECT_NE(a, other_labels);
  EXPECT_NE(a, other_name);

  a->Increment();
  a->Increment(2.5);
  EXPECT_DOUBLE_EQ(same->value(), 3.5);
  EXPECT_DOUBLE_EQ(other_labels->value(), 0.0);
}

TEST(MetricsRegistry, InstrumentPointersStableAcrossGrowth) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("c0");
  for (int i = 1; i < 200; ++i) {
    registry.GetCounter("c" + std::to_string(i));
  }
  first->Increment();
  EXPECT_DOUBLE_EQ(registry.GetCounter("c0")->value(), 1.0);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("queue.depth");
  g->Set(10.0);
  g->Add(-3.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("queue.depth")->value(), 7.0);
}

TEST(MetricsRegistry, HistogramUnboundedTracksSummaryOnly) {
  MetricsRegistry registry;
  HistogramMetric* h = registry.GetHistogram("outage.hours");
  h->Observe(1.0);
  h->Observe(3.0);
  EXPECT_EQ(h->stats().count(), 2u);
  EXPECT_DOUBLE_EQ(h->stats().mean(), 2.0);
  EXPECT_EQ(h->bins(), nullptr);
}

TEST(MetricsRegistry, HistogramBoundedSupportsQuantiles) {
  MetricsRegistry registry;
  HistogramMetric* h = registry.GetHistogram("latency.ms", {}, 0.0, 100.0, 100);
  for (int i = 1; i <= 100; ++i) {
    h->Observe(static_cast<double>(i) - 0.5);
  }
  ASSERT_NE(h->bins(), nullptr);
  EXPECT_NEAR(h->bins()->Quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h->bins()->Quantile(0.9), 90.0, 2.0);
}

TEST(MetricsRegistry, FindDoesNotCreate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.FindCounter("missing"), nullptr);
  EXPECT_EQ(registry.size(), 0u);
  registry.GetCounter("present");
  EXPECT_NE(registry.FindCounter("present"), nullptr);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistry, VisitInCreationOrder) {
  MetricsRegistry registry;
  registry.GetCounter("b");
  registry.GetCounter("a", MetricLabels{{"k", "v"}});
  registry.GetCounter("a");

  std::vector<std::string> seen;
  registry.VisitCounters([&](const std::string& name, const MetricLabels& labels,
                             const Counter&) { seen.push_back(name + "|" + labels.ToString()); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "b|");
  EXPECT_EQ(seen[1], "a|k=v");
  EXPECT_EQ(seen[2], "a|");
}

TEST(MetricsRegistry, MergeSumsCountersPoolsHistograms) {
  MetricsRegistry ensemble;
  MetricsRegistry run1;
  MetricsRegistry run2;
  run1.GetCounter("packets")->Increment(10.0);
  run2.GetCounter("packets")->Increment(5.0);
  run2.GetCounter("failures")->Increment(1.0);
  run1.GetGauge("soc")->Set(0.4);
  run2.GetGauge("soc")->Set(0.7);
  run1.GetHistogram("hours")->Observe(2.0);
  run2.GetHistogram("hours")->Observe(4.0);

  ensemble.Merge(run1);
  ensemble.Merge(run2);

  EXPECT_DOUBLE_EQ(ensemble.FindCounter("packets")->value(), 15.0);
  EXPECT_DOUBLE_EQ(ensemble.FindCounter("failures")->value(), 1.0);
  // Gauges are last-write-wins.
  EXPECT_DOUBLE_EQ(ensemble.FindGauge("soc")->value(), 0.7);
  const HistogramMetric* h = ensemble.FindHistogram("hours");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->stats().count(), 2u);
  EXPECT_DOUBLE_EQ(h->stats().mean(), 3.0);
}

TEST(MetricsRegistry, NullSafeHelpersNoOpWithoutRegistry) {
  // The disabled-observability contract: helpers take null pointers.
  MetricInc(static_cast<Counter*>(nullptr));
  MetricSet(static_cast<Gauge*>(nullptr), 1.0);
  MetricObserve(static_cast<HistogramMetric*>(nullptr), 1.0);

  Simulation sim(1);
  EXPECT_EQ(sim.metrics(), nullptr);
  EXPECT_EQ(sim.MetricCounter("x"), nullptr);
  EXPECT_EQ(sim.MetricGauge("x"), nullptr);
  EXPECT_EQ(sim.MetricHistogram("x"), nullptr);
}

TEST(MetricsRegistry, SimulationFactoriesUseAttachedRegistry) {
  MetricsRegistry registry;
  Simulation sim(1);
  sim.SetMetrics(&registry);
  Counter* c = sim.MetricCounter("events", MetricLabels{{"tech", "LoRa"}});
  ASSERT_NE(c, nullptr);
  MetricInc(c, 4.0);
  EXPECT_DOUBLE_EQ(
      registry.FindCounter("events", MetricLabels{{"tech", "LoRa"}})->value(), 4.0);
}

}  // namespace
}  // namespace centsim
