#include "src/city/deployment.h"

#include <gtest/gtest.h>

namespace centsim {
namespace {

DeploymentPlan MakePlan(uint32_t sites = 2000, double area = 25.0, uint32_t grid = 4) {
  DeploymentPlan::Params p;
  p.site_count = sites;
  p.area_km2 = area;
  p.zone_grid = grid;
  return DeploymentPlan(p, RandomStream(11));
}

TEST(DeploymentTest, SiteCountAndBounds) {
  const auto plan = MakePlan();
  EXPECT_EQ(plan.sites().size(), 2000u);
  EXPECT_NEAR(plan.side_m(), 5000.0, 1e-9);
  for (const auto& s : plan.sites()) {
    EXPECT_GE(s.x_m, 0.0);
    EXPECT_LE(s.x_m, plan.side_m());
    EXPECT_LT(s.zone, plan.zone_count());
  }
}

TEST(DeploymentTest, ZonesRoughlyBalanced) {
  const auto plan = MakePlan(16000, 25.0, 4);
  const auto per_zone = plan.SitesPerZone();
  ASSERT_EQ(per_zone.size(), 16u);
  for (uint32_t count : per_zone) {
    EXPECT_GT(count, 700u);   // 1000 expected.
    EXPECT_LT(count, 1300u);
  }
}

TEST(DeploymentTest, ZoneMatchesCoordinates) {
  const auto plan = MakePlan();
  for (const auto& s : plan.sites()) {
    const uint32_t zx = static_cast<uint32_t>(s.x_m / plan.side_m() * 4);
    const uint32_t zy = static_cast<uint32_t>(s.y_m / plan.side_m() * 4);
    EXPECT_EQ(s.zone, std::min(zy, 3u) * 4 + std::min(zx, 3u));
  }
}

TEST(DeploymentTest, DistanceMetric) {
  EXPECT_DOUBLE_EQ(DistanceM({0, 0, 0}, {3, 4, 0}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceM({1, 1, 0}, {1, 1, 0}), 0.0);
}

TEST(DeploymentTest, GatewayGridCoversAtPlannedRange) {
  const auto plan = MakePlan();
  const double range = 800.0;
  const auto gws = plan.PlanGatewayGrid(range);
  const auto report = plan.ScoreCoverage(gws, range);
  EXPECT_GT(report.CoveredFraction(), 0.95);
}

TEST(DeploymentTest, CoverageMonotoneInRange) {
  const auto plan = MakePlan();
  const auto gws = plan.PlanGatewayGrid(800.0);
  double prev = 0.0;
  for (double r : {100.0, 300.0, 600.0, 1200.0}) {
    const double f = plan.ScoreCoverage(gws, r).CoveredFraction();
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(DeploymentTest, FewerGatewaysNeededForLongerRange) {
  const auto plan = MakePlan();
  EXPECT_LT(plan.PlanGatewayGrid(2000.0).size(), plan.PlanGatewayGrid(500.0).size());
}

TEST(DeploymentTest, NoGatewaysNoCoverage) {
  const auto plan = MakePlan(100);
  const auto report = plan.ScoreCoverage({}, 1000.0);
  EXPECT_EQ(report.covered, 0u);
  EXPECT_EQ(report.uncovered, 100u);
  EXPECT_DOUBLE_EQ(report.CoveredFraction(), 0.0);
}

}  // namespace
}  // namespace centsim
