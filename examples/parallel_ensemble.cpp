// Parallel deterministic ensembles in three lines: pick an experiment,
// pick an ensemble size, and let EnsembleRunner fan the replicas out
// across a worker pool. Replica i always runs with the stream-split seed
// DeriveReplicaSeed(base.seed, i), so the merged statistics below are
// bit-identical no matter how many threads executed them.

#include <cstdio>
#include <iostream>

#include "src/core/montecarlo.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;

  FiftyYearConfig cfg;
  cfg.seed = 2021;
  cfg.devices_802154 = 4;
  cfg.devices_lora = 4;
  cfg.owned_gateways = 2;
  cfg.helium_hotspots = 4;
  cfg.report_interval = SimTime::Hours(12);
  cfg.horizon = SimTime::Years(10);

  // The README quickstart recipe: options, run, aggregate.
  EnsembleOptions opts;
  opts.replicas = 16;
  opts.threads = ThreadPool::DefaultThreadCount();
  const auto result = EnsembleRunner<FiftyYearExperiment>::Run(cfg, opts);
  const FiftyYearEnsemble ensemble = AggregateFiftyYear(result.replicas);

  std::printf("%u replicas on %u worker(s): %.2f s wall, %llu events total\n\n",
              opts.replicas, result.threads_used, result.wall_seconds,
              static_cast<unsigned long long>(result.manifest.TotalEventsExecuted()));

  Table t({"metric", "p10", "median", "p90"});
  auto quantiles = [&](const std::string& name, const SampleSet& s) {
    t.AddRow({name, FormatPercent(s.Quantile(0.1)), FormatPercent(s.Quantile(0.5)),
              FormatPercent(s.Quantile(0.9))});
  };
  quantiles("weekly end-to-end uptime", ensemble.weekly_uptime);
  quantiles("owned-path uptime", ensemble.owned_path_uptime);
  quantiles("Helium-path uptime", ensemble.helium_path_uptime);
  t.Print(std::cout);

  std::printf("\nP(meets 95%% weekly-uptime goal) = %s over %u runs\n",
              FormatPercent(ensemble.GoalProbability()).c_str(), ensemble.runs);

  std::cout << "\nPer-replica seeds (stream-split from base seed "
            << cfg.seed << ", not base+i):\n";
  for (size_t i = 0; i < 4; ++i) {
    std::printf("  replica %zu: seed=%llu  weekly uptime=%s\n", i,
                static_cast<unsigned long long>(result.replicas[i].seed),
                FormatPercent(result.replicas[i].report.weekly_uptime).c_str());
  }
  std::cout << "  ...\n";
  return 0;
}
