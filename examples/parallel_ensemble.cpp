// Parallel deterministic ensembles in three lines: pick an experiment,
// pick an ensemble size, and let EnsembleRunner fan the replicas out
// across a worker pool. Replica i always runs with the stream-split seed
// DeriveReplicaSeed(base.seed, i), so the merged statistics below are
// bit-identical no matter how many threads executed them.

#include <cstdio>
#include <iostream>

#include "src/core/montecarlo.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;

  FiftyYearConfig cfg;
  cfg.seed = 2021;
  cfg.devices_802154 = 4;
  cfg.devices_lora = 4;
  cfg.owned_gateways = 2;
  cfg.helium_hotspots = 4;
  cfg.report_interval = SimTime::Hours(12);
  cfg.horizon = SimTime::Years(10);

  // The README quickstart recipe: options, run, aggregate. The status_dir
  // turns on live run control: while this runs, `watch cat
  // ensemble_status/run_status.json` shows per-replica progress, ETA, and
  // events/sec; `kill -USR1 <pid>` forces an immediate status write; and a
  // replica whose clock stops advancing for stall_deadline_seconds gets
  // its flight recorder and scheduler snapshot dumped alongside.
  EnsembleOptions opts;
  opts.replicas = 16;
  opts.threads = ThreadPool::DefaultThreadCount();
  opts.status_dir = "ensemble_status";
  opts.heartbeat_seconds = 1.0;
  opts.stall_deadline_seconds = 60.0;
  const auto result = EnsembleRunner<FiftyYearExperiment>::Run(cfg, opts);
  const FiftyYearEnsemble ensemble = AggregateFiftyYear(result.replicas);

  std::printf("%u replicas on %u worker(s): %.2f s wall, %llu events total\n",
              opts.replicas, result.threads_used, result.wall_seconds,
              static_cast<unsigned long long>(result.manifest.TotalEventsExecuted()));
  std::printf("live status was in %s/run_status.json (%u stalled)\n\n",
              result.status_dir.c_str(), result.stalled_replicas);

  Table t({"metric", "p10", "median", "p90"});
  auto quantiles = [&](const std::string& name, const SampleSet& s) {
    t.AddRow({name, FormatPercent(s.Quantile(0.1)), FormatPercent(s.Quantile(0.5)),
              FormatPercent(s.Quantile(0.9))});
  };
  quantiles("weekly end-to-end uptime", ensemble.weekly_uptime);
  quantiles("owned-path uptime", ensemble.owned_path_uptime);
  quantiles("Helium-path uptime", ensemble.helium_path_uptime);
  t.Print(std::cout);

  std::printf("\nP(meets 95%% weekly-uptime goal) = %s over %u runs\n",
              FormatPercent(ensemble.GoalProbability()).c_str(), ensemble.runs);

  std::cout << "\nPer-replica seeds (stream-split from base seed "
            << cfg.seed << ", not base+i):\n";
  for (size_t i = 0; i < 4; ++i) {
    std::printf("  replica %zu: seed=%llu  weekly uptime=%s\n", i,
                static_cast<unsigned long long>(result.replicas[i].seed),
                FormatPercent(result.replicas[i].report.weekly_uptime).c_str());
  }
  std::cout << "  ...\n";
  return 0;
}
