// Bridge-health monitor (paper §1): a sensor physically embedded in the
// concrete of a bridge, powered "for literally as long as the structure
// lasts" by the corrosion of the embedded rebar, reporting over LoRa.
//
// The example sizes the reporting schedule against the harvester, runs 50
// simulated years, and shows the node outliving several gateway
// generations on the structure's own power.

#include <cstdio>
#include <memory>

#include "src/core/device.h"
#include "src/core/fleet.h"
#include "src/core/network_fabric.h"
#include "src/energy/harvester.h"
#include "src/net/backhaul.h"
#include "src/net/cloud_endpoint.h"
#include "src/net/gateway.h"
#include "src/sim/simulation.h"

int main() {
  using namespace centsim;
  Simulation sim(/*seed=*/7);

  CloudEndpoint endpoint;
  NetworkFabric fabric(sim);
  fabric.SetEndpoint(&endpoint);

  auto backhaul = MakeFiberBackhaul(sim.StreamFor(2));

  // A LoRa gateway on a pole near the bridge; the DOT replaces it within a
  // month whenever it dies — gateways are serviceable, the embedded sensor
  // is not.
  GatewayConfig gw_cfg;
  gw_cfg.id = 300;
  gw_cfg.tech = RadioTech::kLoRa;
  gw_cfg.rx_antenna_gain_db = 5.0;
  gw_cfg.name = "bridge-gw";
  Gateway gateway(sim, gw_cfg, SeriesSystem::RaspberryPiGateway());
  gateway.AttachBackhaul(backhaul.get());
  gateway.SetRepairPolicy([](SimTime fail_time) { return fail_time + SimTime::Days(30); });
  gateway.Deploy();
  fabric.AddGateway(&gateway);

  // The rebar-corrosion "ambient battery": ~300 uW, decaying with the
  // structure over its 50-year service life (median bridge life per the
  // FHWA national bridge inventory the paper cites).
  EdgeDeviceConfig dev_cfg;
  dev_cfg.id = 42;
  dev_cfg.x_m = 400.0;  // Mid-span to the pole.
  dev_cfg.tech = RadioTech::kLoRa;
  dev_cfg.tx_power_dbm = 14.0;
  dev_cfg.lora.sf = LoraSf::kSf10;  // Concrete attenuation headroom.
  dev_cfg.payload_bytes = 12;       // PZT impedance summary reading.
  dev_cfg.name = "rebar-node";

  CorrosionHarvester::Params rebar;
  rebar.initial_power_w = 300e-6;
  rebar.structure_life = SimTime::Years(50);
  EnergyManager energy(HarvesterModel::Corrosion(rebar), EnergyStorage::Supercap(30.0),
                       LoadProfileFor(dev_cfg));

  const auto sustainable = energy.SustainableInterval();
  std::printf("Harvest supports one report every %s; deploying at hourly cadence.\n",
              sustainable ? sustainable->ToString().c_str() : "(never)");
  dev_cfg.report_interval = SimTime::Hours(1);

  DeviceFleet fleet(sim);
  EdgeDevice node(sim, dev_cfg, fabric, fleet, std::move(energy),
                  SeriesSystem::EnergyHarvestingNode());
  node.Deploy();

  const SimTime horizon = SimTime::Years(50);
  sim.RunUntil(horizon);

  std::printf("\n--- 50-year bridge deployment ---\n");
  std::printf("node alive at year 50:   %s", node.alive() ? "yes\n" : "no");
  if (!node.alive()) {
    std::printf(" (hardware failed at %s)\n", node.failed_at().ToString().c_str());
  }
  std::printf("reports attempted:       %llu\n",
              static_cast<unsigned long long>(node.attempts()));
  std::printf("reports delivered:       %llu\n",
              static_cast<unsigned long long>(node.delivered()));
  std::printf("energy-denied attempts:  %llu\n",
              static_cast<unsigned long long>(node.OutcomeCount(DeliveryOutcome::kNoEnergy)));
  std::printf("weekly uptime:           %.2f%%\n", 100.0 * endpoint.WeeklyUptime(horizon));
  std::printf("gateway swaps survived:  %u\n", gateway.failure_count());
  std::printf("storage SoC at the end:  %.0f%%\n", 100.0 * node.energy().storage().soc());
  return 0;
}
