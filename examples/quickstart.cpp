// Quickstart: one solar-powered 802.15.4 sensor, one owned gateway, a
// campus backhaul, and a cloud endpoint — a single-device slice of the
// paper's experiment run for two simulated years.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "src/core/device.h"
#include "src/core/fleet.h"
#include "src/core/network_fabric.h"
#include "src/energy/harvester.h"
#include "src/net/backhaul.h"
#include "src/net/cloud_endpoint.h"
#include "src/net/gateway.h"
#include "src/sim/simulation.h"

int main() {
  using namespace centsim;

  // Every run is seeded: same seed, same 2 years, bit for bit.
  Simulation sim(/*seed=*/1);

  // Cloud endpoint scoring the paper's weekly-uptime metric.
  CloudEndpoint endpoint;
  NetworkFabric fabric(sim);
  fabric.SetEndpoint(&endpoint);

  // Campus backhaul + one Raspberry-Pi-class gateway, repaired in 2 days.
  auto backhaul = MakeCampusBackhaul(sim.StreamFor(1));
  GatewayConfig gw_cfg;
  gw_cfg.id = 100;
  gw_cfg.tech = RadioTech::k802154;
  gw_cfg.name = "rooftop-gw";
  Gateway gateway(sim, gw_cfg, SeriesSystem::RaspberryPiGateway());
  gateway.AttachBackhaul(backhaul.get());
  gateway.SetRepairPolicy([](SimTime fail_time) { return fail_time + SimTime::Days(2); });
  gateway.Deploy();
  fabric.AddGateway(&gateway);

  // An energy-harvesting, transmit-only device 150 m away.
  EdgeDeviceConfig dev_cfg;
  dev_cfg.id = 1;
  dev_cfg.x_m = 150.0;
  dev_cfg.tech = RadioTech::k802154;
  dev_cfg.tx_power_dbm = 4.0;
  dev_cfg.report_interval = SimTime::Hours(1);
  SolarHarvester::Params solar;
  solar.peak_power_w = 0.010;  // A cm-scale cell.
  EnergyManager energy(HarvesterModel::Solar(solar), EnergyStorage::Supercap(),
                       LoadProfileFor(dev_cfg));
  std::printf("Sustainable reports/day from harvest: %.0f (we use 24)\n",
              energy.SustainableTxPerDay());

  // Per-device hot state lives in fleet columns; the device is a facade.
  DeviceFleet fleet(sim);
  EdgeDevice device(sim, dev_cfg, fabric, fleet, std::move(energy),
                    SeriesSystem::EnergyHarvestingNode());
  device.Deploy();

  // Run two simulated years.
  const SimTime horizon = SimTime::Years(2);
  sim.RunUntil(horizon);

  std::printf("\n--- after %s of simulated time ---\n", horizon.ToString().c_str());
  std::printf("attempts:         %llu\n", static_cast<unsigned long long>(device.attempts()));
  std::printf("delivered:        %llu (%.1f%%)\n",
              static_cast<unsigned long long>(device.delivered()),
              100.0 * device.delivered() / device.attempts());
  std::printf("weekly uptime:    %.1f%% (metric of paper SS4)\n",
              100.0 * endpoint.WeeklyUptime(horizon));
  std::printf("longest dark gap: %llu weeks\n",
              static_cast<unsigned long long>(endpoint.LongestGapWeeks(horizon)));
  std::printf("gateway failures: %u (repaired by policy)\n", gateway.failure_count());
  std::printf("events executed:  %llu\n",
              static_cast<unsigned long long>(sim.scheduler().executed_count()));
  return 0;
}
