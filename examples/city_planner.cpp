// Municipal planning walkthrough: size a gateway build-out for a city
// district, estimate the recovery-labor exposure of the fleet (paper §1),
// and find the vertical-integration tipping point (paper §3.4).

#include <cstdio>
#include <iostream>

#include "src/city/city_model.h"
#include "src/city/deployment.h"
#include "src/core/hierarchy.h"
#include "src/econ/labor.h"
#include "src/econ/tariff.h"
#include "src/econ/tipping_point.h"
#include "src/radio/link_budget.h"
#include "src/radio/lora.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;

  // --- A 25 km^2 district with 4,000 sensor sites ---------------------
  DeploymentPlan::Params dp;
  dp.site_count = 4000;
  dp.area_km2 = 25.0;
  dp.zone_grid = 4;
  DeploymentPlan plan(dp, RandomStream(2));

  // LoRa SF10 link budget determines practical gateway range.
  const PathLossModel pl = PathLossModel::Urban915MHz();
  const double max_loss =
      14.0 /*tx dBm*/ + 5.0 /*rx gain*/ - LoraPhy::SensitivityDbm(LoraSf::kSf10);
  const double range_m = pl.RangeForLossDb(max_loss - 10.0 /*fade margin*/);
  const auto gateways = plan.PlanGatewayGrid(range_m);
  const auto coverage = plan.ScoreCoverage(gateways, range_m);

  Table build({"planning quantity", "value"});
  build.AddRow({"district sites", FormatCount(dp.site_count)});
  build.AddRow({"median LoRa range", FormatDouble(range_m, 0) + " m"});
  build.AddRow({"gateways planned", FormatCount(gateways.size())});
  build.AddRow({"coverage", FormatPercent(coverage.CoveredFraction())});
  build.AddRow({"sites per gateway",
                FormatDouble(static_cast<double>(dp.site_count) / gateways.size(), 0)});
  build.Print(std::cout);

  // --- Recovery-labor exposure at LA scale (paper SS1) -----------------
  const CityAssets la = LosAngelesAssets();
  TruckRollModel labor;
  Table exposure({"city", "sensor sites", "person-hours to re-visit all", "labor cost"});
  for (const CityAssets& city : {la, SanDiegoAssets(), ChanuteAssets()}) {
    exposure.AddRow({city.name, FormatCount(city.TotalSensorSites()),
                     FormatCount(static_cast<uint64_t>(labor.PersonHours(city.TotalSensorSites()))),
                     FormatUsd(labor.LaborCostUsd(city.TotalSensorSites()))});
  }
  std::cout << "\n";
  exposure.Print(std::cout);

  // --- Vertical-integration tipping point (paper SS3.4) ----------------
  ReplacementCostParams repl;
  OwnedInfraParams infra;
  const uint64_t tip = TippingPointFleetSize(repl, infra);
  std::cout << "\nVertical integration beats device replacement above "
            << FormatCount(tip) << " devices.\n";
  for (uint64_t fleet : {1000ULL, 10000ULL, 100000ULL, 591315ULL}) {
    const auto analysis = AnalyzeTippingPoint(fleet, repl, infra);
    std::printf("  fleet %8llu: replace-all %s vs own-infra %s -> %s\n",
                static_cast<unsigned long long>(fleet),
                FormatUsd(analysis.replace_all_cost_usd).c_str(),
                FormatUsd(analysis.owned_infra_cost_usd).c_str(),
                analysis.vertical_integration_wins ? "OWN" : "replace");
  }

  // --- Backhaul choice for the gateway fleet ---------------------------
  FiberBuild fiber;
  CellularTariff cell;
  const double crossover = FiberCellularCrossoverYears(
      fiber, /*route_m=*/20000, cell, static_cast<uint32_t>(gateways.size()), 50);
  if (crossover >= 0) {
    std::printf("\nShared-trench fiber overtakes cellular at year %.1f of 50.\n", crossover);
  } else {
    std::printf("\nCellular stays cheaper than fiber for this fleet within 50 years.\n");
  }
  return 0;
}
