// Smart waste collection (paper §2, the Seoul case): compare a fixed
// collection route against sensor-driven dispatch, then size the sensing
// deployment that enables it — devices, gateways, and the data-credit
// budget for bin-level fill reports.

#include <cstdio>
#include <iostream>

#include "src/city/waste.h"
#include "src/econ/data_credits.h"
#include "src/econ/deployment_cost.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;

  WasteScenarioParams params;
  params.bin_count = 2000;
  std::printf("Simulating %u bins for %.0f days under both policies...\n\n", params.bin_count,
              params.horizon_days);
  const auto cmp = SimulateWasteScenario(params, RandomStream(2015));  // Seoul case year.

  Table t({"policy", "truck visits", "overflow bin-days", "cost"});
  t.AddRow({"fixed route", FormatCount(cmp.scheduled.truck_visits),
            FormatDouble(cmp.scheduled.overflow_bin_days, 0), FormatUsd(cmp.scheduled.cost_usd)});
  t.AddRow({"sensor-driven", FormatCount(cmp.sensor_driven.truck_visits),
            FormatDouble(cmp.sensor_driven.overflow_bin_days, 0),
            FormatUsd(cmp.sensor_driven.cost_usd)});
  t.Print(std::cout);
  std::printf("\noverflow reduction: %s (Seoul reported 66%%)\n",
              FormatPercent(cmp.OverflowReduction()).c_str());
  std::printf("cost reduction:     %s (Seoul reported 83%%)\n",
              FormatPercent(cmp.CostReduction()).c_str());

  // What the sensing side costs: one fill-level report per bin per hour,
  // prepaid as Helium data credits for a decade.
  const uint64_t credits = CreditsForSchedule(1.0, 10.0, 24) * params.bin_count;
  std::printf("\nSensing cost: %u bins reporting hourly for 10 years = %s credits (%s).\n",
              params.bin_count, FormatCount(credits).c_str(),
              FormatUsd(CreditsToUsd(credits)).c_str());
  const double annual_savings = cmp.scheduled.cost_usd - cmp.sensor_driven.cost_usd;
  std::printf("Annual collection savings: %s — connectivity pays for itself in %.1f days.\n",
              FormatUsd(annual_savings).c_str(),
              CreditsToUsd(credits) / annual_savings * 365.0);
  return 0;
}
