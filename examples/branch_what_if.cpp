// Branching what-if runs: simulate a district once up to a decision point,
// checkpoint it, then fan out policy variants from that exact frozen state.
// Every branch resumes from the same snapshot, so the variants share their
// entire pre-branch history — failures, repairs, RNG draws and all — and
// differ only through the policy change itself (common random numbers).
// The shared 20 years are simulated once, not once per variant.

#include <cstdio>
#include <iostream>

#include "src/core/district.h"
#include "src/core/experiment_api.h"
#include "src/snapshot/branch.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;

  // The baseline district: 40 years, batch replacement sweeps every 6.
  DistrictConfig base;
  base.seed = 2021;
  base.device_count = 2000;
  base.area_km2 = 12.5;
  base.horizon = SimTime::Years(40);
  base.batch_cycle = SimTime::Years(6);

  // Run the first half with a checkpoint at the year-20 decision point.
  DistrictConfig parent_cfg = base;
  parent_cfg.snapshot.checkpoint_every = SimTime::Years(20);
  parent_cfg.snapshot.checkpoint_dir = "what_if_checkpoints";
  const DistrictReport parent = RunDistrictScenario(parent_cfg);
  std::printf("parent run: %u checkpoint(s), latest %s (%.1f MB)\n\n",
              parent.checkpoints_written, parent.last_checkpoint_path.c_str(),
              parent.last_checkpoint_bytes / (1024.0 * 1024.0));

  // What-if variants: only POLICY knobs may differ from the snapshot's
  // config — structural changes (fleet size, area, seed...) are refused at
  // restore time, because the frozen state would not describe them.
  using Runner = BranchRunner<DistrictExperiment>;
  std::vector<Runner::Branch> branches;
  branches.push_back({"baseline", base});
  DistrictConfig fast = base;
  fast.gateway_repair_delay = SimTime::Days(3);
  branches.push_back({"3-day gateway repairs", fast});
  DistrictConfig slow = base;
  slow.gateway_repair_delay = SimTime::Days(120);
  branches.push_back({"120-day gateway repairs", slow});

  BranchOptions opts;
  opts.threads = ThreadPool::DefaultThreadCount();
  const auto runs = Runner::Run(parent.last_checkpoint_path, branches, opts);

  Table t({"branch", "service availability", "worst year", "gw repairs", "wall s"});
  for (const auto& run : runs) {
    t.AddRow({run.name, FormatPercent(run.report.mean_service_availability),
              FormatPercent(run.report.min_yearly_service),
              std::to_string(run.report.gateway_repairs), FormatDouble(run.wall_seconds, 2)});
  }
  t.Print(std::cout);

  // The baseline branch IS the straight run: resuming with an unchanged
  // config reproduces exactly what running 40 years in one go produces.
  std::printf("\nbaseline branch matches straight run: %s\n",
              runs[0].report.mean_service_availability == parent.mean_service_availability
                  ? "yes (bit-identical)"
                  : "NO — determinism bug");
  return 0;
}
