// The paper's §4 experiment end-to-end, at a reduced 25-year horizon so it
// runs in seconds: owned-802.15.4 vs Helium-LoRa paths, a budgeted
// maintenance crew, prepaid data credits, domain renewals, and the living
// diary. See bench/bench_e1_fifty_year.cc for the full 50-year version.

#include <cstdio>
#include <iostream>

#include "src/core/experiment.h"
#include "src/core/scenario.h"
#include "src/telemetry/report.h"

int main(int argc, char** argv) {
  using namespace centsim;

  FiftyYearConfig cfg;
  if (argc > 1) {
    // Scenario file (see examples/scenario.ini for the key reference).
    std::string error;
    const auto parsed = Config::Load(argv[1], &error);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "cannot load scenario: %s\n", error.c_str());
      return 1;
    }
    cfg = FiftyYearConfigFrom(*parsed);
  } else {
    cfg.seed = 2021;  // HotOS '21.
    cfg.devices_802154 = 4;
    cfg.devices_lora = 4;
    cfg.owned_gateways = 2;
    cfg.helium_hotspots = 4;
    cfg.report_interval = SimTime::Hours(4);
    cfg.horizon = SimTime::Years(25);
  }
  // Observability: every run drops a manifest, a metrics snapshot, and a
  // Perfetto-loadable scheduler trace here (see README "Observability").
  if (cfg.artifacts_dir.empty()) {
    cfg.artifacts_dir = "fifty_year_artifacts";
  }

  std::printf("Running %u devices for %s of simulated time...\n",
              cfg.devices_802154 + cfg.devices_lora, cfg.horizon.ToString().c_str());
  const FiftyYearReport report = RunFiftyYearExperiment(cfg);

  Table headline({"metric", "value"});
  headline.AddRow({"weekly end-to-end uptime", FormatPercent(report.weekly_uptime)});
  headline.AddRow({"longest dark gap", std::to_string(report.longest_gap_weeks) + " weeks"});
  headline.AddRow({"packets at endpoint", FormatCount(report.total_packets)});
  headline.AddRow({"device failures / replacements",
                   std::to_string(report.device_failures) + " / " +
                       std::to_string(report.device_replacements)});
  headline.AddRow({"owned gateway failures", std::to_string(report.owned_gateway_failures)});
  headline.AddRow({"maintenance person-hours", FormatDouble(report.maintenance_hours, 1)});
  headline.AddRow({"data credits spent", FormatCount(report.credits_spent)});
  headline.AddRow({"domain renewals (lapses)", std::to_string(report.domain_renewals) + " (" +
                                                   std::to_string(report.domain_lapses) + ")"});
  headline.Print(std::cout);

  Table paths({"path", "devices", "delivery rate", "weekly uptime (any device)"});
  paths.AddRow({"owned 802.15.4", std::to_string(report.owned_path.device_count),
                FormatPercent(report.owned_path.DeliveryRate()),
                FormatPercent(report.owned_path.group_weekly_uptime)});
  paths.AddRow({"Helium LoRa", std::to_string(report.helium_path.device_count),
                FormatPercent(report.helium_path.DeliveryRate()),
                FormatPercent(report.helium_path.group_weekly_uptime)});
  std::cout << "\n";
  paths.Print(std::cout);

  std::cout << "\nLiving diary, by decade (failures / maintenance / warnings):\n";
  for (const auto& decade : report.diary_decades) {
    std::printf("  years %2u-%2u: %3u / %3u / %3u\n", decade.decade * 10, decade.decade * 10 + 9,
                decade.failures, decade.maintenance_actions, decade.warnings);
  }
  std::cout << "\nFirst diary entries:\n";
  for (size_t i = 0; i < report.diary_entries.size() && i < 8; ++i) {
    const auto& e = report.diary_entries[i];
    std::printf("  [%8s] %s: %s\n", e.at.ToString().c_str(), e.component.c_str(),
                e.text.c_str());
  }

  std::printf("\nSimulated %llu events in %.2f s (%.0f events/s).\n",
              static_cast<unsigned long long>(report.events_executed), report.wall_seconds,
              report.wall_seconds > 0 ? report.events_executed / report.wall_seconds : 0.0);
  std::cout << "Run artifacts:\n";
  std::cout << "  manifest: " << report.manifest_path << "\n";
  std::cout << "  metrics:  " << report.metrics_path << "\n";
  std::cout << "  trace:    " << report.trace_path
            << "  (load in https://ui.perfetto.dev or chrome://tracing)\n";
  return 0;
}
