// District rollout: plan and simulate a 50-year municipal sensing district
// end-to-end — geometry, gateway grid, batch-project maintenance, and the
// resulting service availability — then price it.

#include <cstdio>
#include <iostream>

#include "src/core/district.h"
#include "src/econ/deployment_cost.h"
#include "src/econ/labor.h"
#include "src/telemetry/report.h"

int main() {
  using namespace centsim;

  DistrictConfig cfg;
  cfg.seed = 7;
  cfg.device_count = 4000;
  cfg.area_km2 = 25.0;
  cfg.horizon = SimTime::Years(50);
  cfg.batch_cycle = SimTime::Years(8);

  std::printf("Simulating a %u-site district over %s...\n\n", cfg.device_count,
              cfg.horizon.ToString().c_str());
  const auto report = RunDistrictScenario(cfg);

  Table t({"quantity", "value"});
  t.AddRow({"gateways planned", FormatCount(report.gateway_count)});
  t.AddRow({"planned coverage", FormatPercent(report.initial_coverage)});
  t.AddRow({"mean service availability", FormatPercent(report.mean_service_availability)});
  t.AddRow({"worst year", FormatPercent(report.min_yearly_service)});
  t.AddRow({"device failures over 50 y", FormatCount(report.device_failures)});
  t.AddRow({"replacements (batch projects)", FormatCount(report.device_replacements)});
  t.AddRow({"gateway failures / repairs",
            FormatCount(report.gateway_failures) + " / " + FormatCount(report.gateway_repairs)});
  t.Print(std::cout);

  // What the replacement stream costs in labor over the 50 years.
  TruckRollModel labor;
  std::printf("\nReplacement labor over 50 years: %s person-hours (%s)\n",
              FormatCount(static_cast<uint64_t>(labor.PersonHours(report.device_replacements)))
                  .c_str(),
              FormatUsd(labor.LaborCostUsd(report.device_replacements)).c_str());

  const auto econ = ComputeDeploymentCost(CenturyScaleNode(cfg.device_count));
  std::printf("Steady-state cost of the century-scale design: %s per node-year.\n",
              FormatUsd(econ.per_node_per_year_usd).c_str());

  std::printf("\nService availability by decade:\n");
  for (size_t d = 0; d * 10 < report.yearly_service.size(); ++d) {
    double sum = 0.0;
    int n = 0;
    for (size_t y = d * 10; y < std::min(report.yearly_service.size(), (d + 1) * 10); ++y) {
      sum += report.yearly_service[y];
      ++n;
    }
    std::printf("  years %2zu0s: %s\n", d, FormatPercent(sum / n).c_str());
  }
  return 0;
}
